//! Offline vendored stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote`) generating impls of the
//! vendored `serde::Serialize`/`serde::Deserialize` traits. Supports
//! plain (non-generic) structs and enums without `#[serde(...)]`
//! attributes — the full shape of every derive in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum with the given variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip leading attributes (`#[...]`, including doc comments) and
/// visibility modifiers (`pub`, `pub(...)`).
fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
}

fn next_ident(iter: &mut TokenIter, context: &str) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected identifier ({}), found {:?}", context, other),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = next_ident(&mut iter, "struct/enum keyword");
    if keyword != "struct" && keyword != "enum" {
        panic!("serde_derive: only structs and enums are supported, found `{}`", keyword);
    }
    let name = next_ident(&mut iter, "type name");
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{}` is not supported by the vendored stub", name);
        }
    }
    let kind = if keyword == "enum" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {:?}", other),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("serde_derive: expected struct body, found {:?}", other),
        }
    };
    Item { name, kind }
}

/// Parse `name: Type, ...` field lists, returning the field names. Types
/// are skipped with angle-bracket depth tracking so commas inside
/// generics don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {:?}", other),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{}`, found {:?}", name, other),
        }
        let mut depth: i32 = 0;
        for token in iter.by_ref() {
            if let TokenTree::Punct(p) = &token {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(name);
    }
    fields
}

/// Count the fields of a tuple struct/variant body.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut arity = 0;
    let mut in_segment = false;
    for token in stream {
        match &token {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    in_segment = true;
                }
                '>' => {
                    depth -= 1;
                    in_segment = true;
                }
                ',' if depth == 0 => {
                    if in_segment {
                        arity += 1;
                    }
                    in_segment = false;
                }
                _ => in_segment = true,
            },
            _ => in_segment = true,
        }
    }
    if in_segment {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {:?}", other),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                iter.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Consume up to and including the variant separator; this also
        // skips explicit discriminants (`= expr`).
        for token in iter.by_ref() {
            if let TokenTree::Punct(p) = &token {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))",
                        f = f
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{})", i))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), ::serde::Serialize::serialize(__f0))]),"
                        ),
                        Shape::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("__f{}", i)).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({})", b))
                                .collect();
                            format!(
                                "{name}::{vname}({binders}) => ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), ::serde::Value::Seq(::std::vec![{items}]))]),",
                                binders = binders.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))",
                                        f = f
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(::std::vec![(\"{vname}\".to_string(), ::serde::Value::Map(::std::vec![{entries}]))]),",
                                binders = binders,
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}",
        name = name,
        body = body
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(__value.field(\"{f}\")?)?",
                        f = f
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {inits} }})",
                name = name,
                inits = inits.join(", ")
            )
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))",
            name = name
        ),
        Kind::Tuple(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&__items[{}])?", i))
                .collect();
            format!(
                "let __items = __value.seq()?;\n\
                 if __items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(format!(\n\
                         \"expected tuple of length {arity} for `{name}`, found {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))",
                arity = arity,
                name = name,
                inits = inits.join(", ")
            )
        }
        Kind::Unit => format!(
            "match __value {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\n\
                     \"expected null for unit struct `{name}`, found {{}}\", __other.kind()))),\n\
             }}",
            name = name
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        name = name,
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__inner)?)),"
                        )),
                        Shape::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{}])?", i)
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __items = __inner.seq()?;\n\
                                     if __items.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(::serde::Error::msg(\n\
                                             format!(\"expected {arity} fields for variant `{vname}`, found {{}}\", __items.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({inits}))\n\
                                 }}",
                                inits = inits.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(__inner.field(\"{f}\")?)?",
                                        f = f
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error::msg(format!(\n\
                             \"unknown variant `{{}}` of enum `{name}`\", __other))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(format!(\n\
                                 \"unknown variant `{{}}` of enum `{name}`\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::msg(format!(\n\
                         \"invalid representation of enum `{name}`: {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
                name = name
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}",
        name = name,
        body = body
    )
}
