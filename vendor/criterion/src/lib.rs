//! Offline vendored stand-in for `criterion`.
//!
//! Implements the bench-definition surface this workspace uses
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `Throughput`, `BatchSize`)
//! with a simple wall-clock harness. When invoked without `--bench` (as
//! `cargo test` does for `harness = false` bench targets) each benchmark
//! body runs once as a smoke test; with `--bench` it runs a short timed
//! loop and prints mean time per iteration.

use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration (decimal units on display).
    BytesDecimal(u64),
}

/// How batched setup output is sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Opaque hint preventing the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The top-level benchmark driver.
pub struct Criterion {
    timed: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Real bench runs (`cargo bench`) pass `--bench`; `cargo test`
        // does not, and then we only smoke-test each body once.
        let timed = std::env::args().any(|a| a == "--bench");
        Criterion { timed }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmark a function outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.timed, &id, None, &mut body);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the sample count (accepted for API compatibility; the stub's
    /// iteration count is fixed).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Annotate throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.timed, &id, self.throughput, &mut body);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(timed: bool, id: &str, throughput: Option<Throughput>, body: &mut F) {
    let mut bencher = Bencher { timed, iters_done: 0, elapsed: std::time::Duration::ZERO };
    body(&mut bencher);
    if timed && bencher.iters_done > 0 {
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters_done as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                format!("  ({:.0} B/s)", n as f64 / per_iter)
            }
            None => String::new(),
        };
        println!("{:<48} {:>12.3} µs/iter{}", id, per_iter * 1e6, rate);
    }
}

/// Passed to each benchmark body; runs the measured routine.
pub struct Bencher {
    timed: bool,
    iters_done: u64,
    elapsed: std::time::Duration,
}

impl Bencher {
    /// Run `routine` repeatedly (once in smoke-test mode) and record timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = if self.timed { self.pick_iters(&mut routine) } else { 1 };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters_done += iters;
    }

    /// Run `routine` over fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = if self.timed { 10 } else { 1 };
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
        }
    }

    /// Pick an iteration count targeting roughly 100ms of measurement.
    fn pick_iters<O, R: FnMut() -> O>(&mut self, routine: &mut R) -> u64 {
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        self.elapsed += once;
        self.iters_done += 1;
        let target = std::time::Duration::from_millis(100);
        if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u64
        }
    }
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
