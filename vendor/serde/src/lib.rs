//! Offline vendored stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this stub round-trips through a
//! small [`Value`] tree: `Serialize` renders a value into the tree and
//! `Deserialize` rebuilds it. The derive macros in `serde_derive` generate
//! impls against these simplified traits. `serde_json` then maps the tree
//! to and from JSON text. Only derived impls (no `#[serde(...)]`
//! attributes, no generics) are supported — which is all this workspace
//! uses.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model. `U64` is kept separate from `I64`/`F64` so
/// full-precision hardware-counter values survive a round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (full `u64` precision).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved for stable output.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of a map value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{}`", name))),
            other => Err(Error::msg(format!(
                "expected object with field `{}`, found {}",
                name,
                other.kind()
            ))),
        }
    }

    /// View the value as a sequence.
    pub fn seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::msg(format!("expected array, found {}", other.kind()))),
        }
    }

    /// View the value as a map.
    pub fn map(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::msg(format!("expected object, found {}", other.kind()))),
        }
    }

    /// Human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from a message.
    pub fn msg(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be rendered into the [`Value`] data model.
pub trait Serialize {
    /// Render `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::msg(format!("integer {} out of range for {}", raw, stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {} out of range", n)))?,
                    other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error::msg(format!("integer {} out of range for {}", raw, stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(x) => Ok(*x as $ty),
                    Value::U64(n) => Ok(*n as $ty),
                    Value::I64(n) => Ok(*n as $ty),
                    other => Err(Error::msg(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected boolean, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.seq()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.seq()?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of length {}, found {}",
                N,
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value.seq()?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of length {}, found {}",
                        expected,
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
