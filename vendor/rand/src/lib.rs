//! Offline vendored stand-in for `rand` 0.8.
//!
//! Implements the subset of the public API this workspace uses, with the
//! same algorithms as the upstream crate so streams are deterministic and
//! portable: `SmallRng` is xoshiro256++ seeded via the PCG-based
//! `seed_from_u64`, float conversion uses the 53-bit mantissa method, and
//! integer ranges use widening-multiply with rejection.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a new instance seeded from a single `u64`.
    ///
    /// Uses the same PCG-XSH-RR expansion as `rand_core` 0.6 so seeds
    /// produce identical states to the upstream crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-level interface: typed sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample a value uniformly from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={} is outside range [0.0, 1.0]", p);
        if p >= 1.0 {
            return true;
        }
        // Same fixed-point comparison as rand 0.8's Bernoulli.
        let p_int = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < p_int
    }

    /// Sample a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
