//! Sampling distributions.

pub mod uniform;

use crate::Rng;
use crate::RngCore;

/// Types that can produce values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<'a, T, D: Distribution<T>> Distribution<T> for &'a D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (*self).sample(rng)
    }
}

/// The "standard" distribution: full integer ranges, `[0, 1)` floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 mantissa bits, same as rand 0.8's Standard for f64.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Sign-bit test, same as rand 0.8.
        (rng.next_u32() as i32) < 0
    }
}
