//! Uniform range sampling (`gen_range` support).
//!
//! Algorithms match rand 0.8's `UniformInt`/`UniformFloat` samplers so
//! seeded streams are bit-identical to the upstream crate: widening
//! multiply with rejection zone at the type's "large" width (u32 for
//! types up to 32 bits, u64 above), and the `[1, 2)` mantissa method for
//! floats.

use super::Distribution;
use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with built-in uniform range sampling.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_exclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(low, high, rng)
    }
}

/// Widening-multiply rejection sampling over a 64-bit span.
/// `span == 0` means the full 2^64 range.
fn sample_span64<R: Rng + ?Sized>(span: u64, rng: &mut R) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let ints_to_reject = (u64::MAX - span + 1) % span;
    let zone = u64::MAX - ints_to_reject;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        let (hi, lo) = ((m >> 64) as u64, m as u64);
        if lo <= zone {
            return hi;
        }
    }
}

/// Widening-multiply rejection sampling over a 32-bit span, matching
/// rand 0.8's sampler for integer types up to 32 bits.
fn sample_span32<R: Rng + ?Sized>(span: u32, rng: &mut R) -> u32 {
    if span == 0 {
        return rng.next_u32();
    }
    let ints_to_reject = (u32::MAX - span + 1) % span;
    let zone = u32::MAX - ints_to_reject;
    loop {
        let v = rng.next_u32();
        let m = (v as u64) * (span as u64);
        let (hi, lo) = ((m >> 32) as u32, m as u32);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! uniform_int_32 {
    ($ty:ty, $unsigned:ty) => {
        impl SampleUniform for $ty {
            fn sample_exclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = high.wrapping_sub(low) as $unsigned as u32;
                low.wrapping_add(sample_span32(span, rng) as $ty)
            }
            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high.wrapping_sub(low) as $unsigned as u32).wrapping_add(1);
                low.wrapping_add(sample_span32(span, rng) as $ty)
            }
        }
    };
}

macro_rules! uniform_int_64 {
    ($ty:ty, $unsigned:ty) => {
        impl SampleUniform for $ty {
            fn sample_exclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = high.wrapping_sub(low) as $unsigned as u64;
                low.wrapping_add(sample_span64(span, rng) as $ty)
            }
            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high.wrapping_sub(low) as $unsigned as u64).wrapping_add(1);
                low.wrapping_add(sample_span64(span, rng) as $ty)
            }
        }
    };
}

uniform_int_32!(u8, u8);
uniform_int_32!(u16, u16);
uniform_int_32!(u32, u32);
uniform_int_32!(i8, u8);
uniform_int_32!(i16, u16);
uniform_int_32!(i32, u32);
uniform_int_64!(u64, u64);
uniform_int_64!(usize, usize);
uniform_int_64!(i64, u64);
uniform_int_64!(isize, usize);

/// `[0, 1)` from the high mantissa bits via the `[1, 2) - 1` trick,
/// exactly as rand 0.8's `UniformFloat` does (52-bit resolution for f64).
fn unit_f64_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
    value1_2 - 1.0
}

fn unit_f32_open<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
    value1_2 - 1.0
}

macro_rules! uniform_float_impl {
    ($ty:ty, $unit:ident) => {
        impl SampleUniform for $ty {
            fn sample_exclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let scale = high - low;
                loop {
                    let value0_1 = $unit(rng);
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }
            fn sample_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let scale = high - low;
                let value0_1 = $unit(rng);
                value0_1 * scale + low
            }
        }
    };
}

uniform_float_impl!(f32, unit_f32_open);
uniform_float_impl!(f64, unit_f64_open);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&x));
            let y = rng.gen_range(0u32..7);
            assert!(y < 7);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..2000 {
            let v = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    // Keep the Distribution import exercised (Standard lives in the
    // parent module and is part of this module's public sampling story).
    #[test]
    fn standard_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(14);
        let x: f64 = crate::Standard.sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
