//! Sequence-related helpers (`shuffle`, `choose`).

use crate::Rng;

/// Extension trait on slices for random operations.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates, matching rand 0.8's
    /// iteration order so seeded shuffles are reproducible).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Return a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

/// Uniform index sampling, matching rand 0.8's `gen_index`: bounds that
/// fit in `u32` use the 32-bit sampler so streams match upstream.
fn gen_index<R: Rng>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= (u32::MAX as usize) {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(6);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut rng).is_none());
        assert!([7u32].choose(&mut rng) == Some(&7));
    }
}
