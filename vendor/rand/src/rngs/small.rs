//! `SmallRng`: xoshiro256++, matching rand 0.8 on 64-bit platforms.

use crate::{RngCore, SeedableRng};

/// A small-state, fast, non-cryptographic PRNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> SmallRng {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        if s == [0, 0, 0, 0] {
            // The all-zero state is a fixed point; nudge it like rand_xoshiro.
            s = [
                0x9e3779b97f4a7c15,
                0xf39cc0605cedc834,
                0x1082276bf3a27251,
                0xf86c6a11d0c18e95,
            ];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
