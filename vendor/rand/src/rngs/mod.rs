//! Random number generator implementations.

mod small;

pub use small::SmallRng;
