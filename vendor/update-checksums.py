#!/usr/bin/env python3
"""Regenerate .cargo-checksum.json for every vendored crate.

Run after editing any file under vendor/ so cargo's directory-source
checksum validation passes.
"""
import hashlib, json, os, sys

root = os.path.dirname(os.path.abspath(__file__))
for entry in sorted(os.listdir(root)):
    crate = os.path.join(root, entry)
    if not os.path.isdir(crate):
        continue
    files = {}
    for dirpath, _, filenames in os.walk(crate):
        for fn in filenames:
            if fn == '.cargo-checksum.json':
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, crate)
            with open(path, 'rb') as f:
                files[rel] = hashlib.sha256(f.read()).hexdigest()
    with open(os.path.join(crate, '.cargo-checksum.json'), 'w') as f:
        json.dump({'files': files, 'package': ''}, f)
print('checksums refreshed for', len([e for e in os.listdir(root) if os.path.isdir(os.path.join(root, e))]), 'crates')
