//! Offline vendored stand-in for `serde_json`.
//!
//! Maps JSON text to and from the vendored `serde::Value` data model.
//! Covers the entry points this workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`].

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Result alias matching the upstream crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serialize a value to human-readable, 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    emit(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

fn emit(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: floats always carry a fractional part
                // or exponent so they re-parse as floats.
                let text = format!("{}", x);
                out.push_str(&text);
                if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("invalid number `{}`", text)))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("invalid number `{}`", text)))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("invalid number `{}`", text)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"a\"b\\c\n".to_string()).unwrap(),
            r#""a\"b\\c\n""#
        );
        assert_eq!(from_str::<String>(r#""a\"b\\c\n""#).unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn preserves_u64_precision() {
        let big = u64::MAX - 1;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<bool>("maybe").is_err());
    }
}
