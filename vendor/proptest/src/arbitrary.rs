//! `any::<T>()` — sampling from the type's full "standard" distribution.

use crate::strategy::Strategy;
use rand::distributions::{Distribution, Standard};
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Strategy over the full range of `T` (via rand's `Standard`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Build a strategy covering all of `T`.
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
    T: Debug,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
    T: Debug,
{
    type Value = T;

    fn sample_value(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}
