//! The `Strategy` trait and combinators.

use rand::distributions::uniform::SampleUniform;
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply samples a value from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Sample one value.
    fn sample_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut SmallRng) -> O {
        (self.map)(self.source.sample_value(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Copy + Debug,
{
    type Value = T;

    fn sample_value(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy + Debug,
{
    type Value = T;

    fn sample_value(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample_value(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
