//! The case runner behind the `proptest!` macro.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on rejected cases (failed `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases with default reject limits.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases, ..Config::default() }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256, max_global_rejects: 4096 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A precondition (`prop_assume!`) did not hold; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// Build a rejection.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {}", m),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {}", m),
        }
    }
}

/// FNV-1a, used to give each test its own deterministic RNG stream.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Run `config.cases` sampled cases of `test` against `strategy`.
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// with the generated input included in the message.
pub fn run_cases<S, F>(name: &str, config: Config, strategy: S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = SmallRng::seed_from_u64(fnv1a(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let value = strategy.sample_value(&mut rng);
        let rendered = format!("{:?}", value);
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{}`: too many rejected cases ({}) before reaching {} passes",
                        name, rejected, config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest `{}` failed after {} passing case(s): {}\n  input: {}",
                    name, passed, message, rendered
                );
            }
        }
    }
}
