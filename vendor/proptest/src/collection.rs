//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> SizeRange {
        SizeRange { min: len, max_inclusive: len }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Build a `Vec` strategy with the given element strategy and size range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}
