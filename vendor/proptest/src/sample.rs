//! Sampling from explicit value lists (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;

/// Strategy that picks uniformly from a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

/// Build a strategy choosing uniformly among `items`.
pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "cannot select from an empty list");
    Select { items }
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.items.len());
        self.items[idx].clone()
    }
}
