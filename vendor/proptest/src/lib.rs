//! Offline vendored stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace uses:
//! `proptest!`, `prop_assert*!`, `prop_assume!`, `any`, range strategies,
//! tuple strategies, `prop::collection::vec`, and `prop::sample::select`.
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated input printed, which is enough to reproduce because streams
//! are seeded deterministically per test name.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a property test module typically imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property-test functions. Each `fn name(arg in strategy, ...)`
/// runs the body over sampled inputs. As in upstream proptest, callers
/// write `#[test]` on each fn themselves; the macro passes attributes
/// through verbatim (emitting a second `#[test]` here would register — and
/// run — every property twice).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                stringify!($name),
                $config,
                ($($strategy,)+),
                |($($arg,)+)| { $body ::core::result::Result::Ok(()) },
            );
        }
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr;) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (with the
/// generated input reported) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left == *__right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left != *__right, $($fmt)*);
    }};
}

/// Rejects the current case (does not count toward the case budget) when
/// the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
