//! # RHMD — Evasion-Resilient Hardware Malware Detectors
//!
//! A comprehensive Rust reproduction of *Khasawneh, Abu-Ghazaleh, Ponomarev,
//! Yu — "RHMD: Evasion-Resilient Hardware Malware Detectors", MICRO-50
//! (2017)*, including every substrate the paper's evaluation depends on:
//!
//! | Crate | Role |
//! |---|---|
//! | [`trace`] | Synthetic program substrate: opcode-class ISA, dynamic control-flow graphs, deterministic execution, instruction-injection rewriting (the paper's Pin-based framework) |
//! | [`uarch`] | Microarchitecture simulation: caches, branch prediction, BTB, event counters (the paper's performance-monitoring hardware) |
//! | [`features`] | The three windowed feature vectors: Instructions, Memory, Architectural |
//! | [`ml`] | From-scratch LR / NN / DT / SVM, ROC/AUC metrics, stratified splits |
//! | [`data`] | Corpus builder (6 malware families, 8 benign classes) and the 60/20/20 victim/attacker split |
//! | [`core`] | The paper's contribution: baseline HMDs, reverse-engineering, evasion, retraining games, resilient randomized detectors (RHMD), PAC bounds, FPGA cost model |
//!
//! # Quickstart
//!
//! ```no_run
//! use rhmd::prelude::*;
//!
//! // Build and trace a corpus.
//! let config = CorpusConfig::small();
//! let corpus = Corpus::build(&config);
//! let splits = Splits::new(&corpus, config.seed);
//! let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
//!
//! // Train a baseline detector and take a verdict.
//! let spec = FeatureSpec::new(FeatureKind::Architectural, 10_000, vec![]);
//! let hmd = Hmd::train(Algorithm::Lr, spec, &TrainerConfig::default(),
//!                      &traced, &splits.victim_train);
//! let verdict = hmd.verdict(traced.subwindows(0));
//! println!("windows flagged: {:.0}%", 100.0 * verdict.flag_rate());
//! ```
//!
//! See `examples/` for full attacker/defender campaigns and `DESIGN.md` for
//! the experiment-by-experiment reproduction index.

pub use rhmd_core as core;
pub use rhmd_data as data;
pub use rhmd_obs as obs;
pub use rhmd_features as features;
pub use rhmd_ml as ml;
pub use rhmd_trace as trace;
pub use rhmd_uarch as uarch;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use rhmd_core::evasion::{evade_corpus, plan_evasion, EvasionConfig, Strategy};
    pub use rhmd_core::detector::{Detector, StreamRng};
    pub use rhmd_core::hmd::{BlackBox, Hmd, ProgramVerdict};
    pub use rhmd_core::retrain::{evade_retrain_game, GameConfig};
    pub use rhmd_core::reveng;
    pub use rhmd_core::rhmd::{build_pool, pool_specs, ResilientHmd};
    pub use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    pub use rhmd_features::{select_top_delta_opcodes, FeatureKind, FeatureSpec};
    pub use rhmd_ml::{Algorithm, TrainerConfig};
    pub use rhmd_trace::inject::Placement;
    pub use rhmd_trace::{ExecLimits, Opcode, Program, ProgramClass};
    pub use rhmd_uarch::{CoreConfig, CoreModel};
}

/// Selects the top-delta opcodes on the victim training split — the shared
/// first step of nearly every experiment (paper §3).
pub fn select_victim_opcodes(
    traced: &rhmd_data::TracedCorpus,
    victim_train: &[usize],
    k: usize,
) -> Vec<rhmd_trace::Opcode> {
    let labels = traced.corpus().labels();
    let malware: Vec<_> = victim_train
        .iter()
        .filter(|&&i| labels[i])
        .flat_map(|&i| traced.subwindows(i).to_vec())
        .collect();
    let benign: Vec<_> = victim_train
        .iter()
        .filter(|&&i| !labels[i])
        .flat_map(|&i| traced.subwindows(i).to_vec())
        .collect();
    rhmd_features::select_top_delta_opcodes(&malware, &benign, k)
}
