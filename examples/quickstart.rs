//! Quickstart: build a corpus, train a baseline HMD on the victim split,
//! and score the held-out programs — the paper's Fig 2 setup in miniature.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rhmd::prelude::*;
use rhmd::select_victim_opcodes;
use rhmd_ml::{auc, score_all};

fn main() {
    // 1. Corpus: 6 synthetic malware families + 8 benign application
    //    classes, standing in for the paper's MalwareDB + Windows programs.
    let config = CorpusConfig::small();
    println!("building corpus of {} programs ...", config.total_programs());
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);

    // 2. Trace every program once through the simulated core (Pin's role).
    let start = std::time::Instant::now();
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    println!("traced in {:?}", start.elapsed());

    // 3. Feature selection on the victim training set (paper §3).
    let opcodes = select_victim_opcodes(&traced, &splits.victim_train, 16);
    println!(
        "top-delta opcodes: {}",
        opcodes
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // 4. Train one detector per feature and evaluate on held-out programs.
    for kind in FeatureKind::ALL {
        let spec = FeatureSpec::new(kind, 10_000, opcodes.clone());
        let hmd = Hmd::train(
            Algorithm::Lr,
            spec.clone(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );

        // Window-level AUC, as in Fig 2.
        let test = traced.window_dataset(&splits.attacker_test, &spec);
        let scores = score_all(hmd.model(), &test);
        let window_auc = auc(&scores, test.labels());

        // Program-level accuracy by majority vote over windows.
        let labels = traced.corpus().labels();
        let correct = splits
            .attacker_test
            .iter()
            .filter(|&&i| hmd.verdict(traced.subwindows(i)).is_malware() == labels[i])
            .count();
        println!(
            "{:>14}: window AUC {:.3}, program accuracy {:.1}% ({}/{})",
            kind.to_string(),
            window_auc,
            100.0 * correct as f64 / splits.attacker_test.len() as f64,
            correct,
            splits.attacker_test.len()
        );
    }
}
