//! An end-to-end attacker campaign against a deployed HMD (paper §4–§5):
//!
//! 1. train the victim detector (defender side);
//! 2. reverse-engineer it by black-box queries (Fig 1);
//! 3. build a least-weight injection plan from the surrogate's weights;
//! 4. rewrite the malware and measure how much detection survives, and at
//!    what runtime overhead (Figs 8–9).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example evasion_campaign
//! ```

use rhmd::prelude::*;
use rhmd::select_victim_opcodes;

fn main() {
    let config = CorpusConfig::small();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let opcodes = select_victim_opcodes(&traced, &splits.victim_train, 16);

    // Defender: an LR detector over the Instructions feature at 10K.
    let spec = FeatureSpec::new(FeatureKind::Instructions, 10_000, opcodes);
    let mut victim = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
    );
    println!("victim deployed: {}", victim.describe());

    // Attacker: reverse-engineer with its own 20% split.
    let surrogate = reveng::reverse_engineer(
        &mut victim,
        &traced,
        &splits.attacker_train,
        spec,
        Algorithm::Lr,
        &TrainerConfig::with_seed(0xa77ac4),
    );
    let fidelity = reveng::agreement(&mut victim, &surrogate, &traced, &splits.attacker_test);
    println!("surrogate agreement with victim: {:.1}%", 100.0 * fidelity);

    // Evasion sweep: least-weight injection at the basic-block level.
    let labels = traced.corpus().labels();
    let malware: Vec<usize> = splits
        .attacker_test
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();
    println!("\n{:>10} {:>12} {:>12} {:>12}", "payload", "detected", "static ovh", "dynamic ovh");
    for count in [0usize, 1, 2, 3, 5] {
        if count == 0 {
            let trial = evade_corpus(
                &mut victim,
                &traced,
                &malware,
                &rhmd_trace::inject::InjectionPlan::new(vec![], Placement::EveryBlock),
            );
            println!(
                "{:>10} {:>11.1}% {:>12} {:>12}",
                count,
                100.0 * trial.detection_rate(),
                "-",
                "-"
            );
            continue;
        }
        let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(count));
        let trial = evade_corpus(&mut victim, &traced, &malware, &plan);
        println!(
            "{:>10} {:>11.1}% {:>11.1}% {:>11.1}%",
            count,
            100.0 * trial.detection_rate(),
            100.0 * trial.mean_static_overhead,
            100.0 * trial.mean_dynamic_overhead
        );
    }
    println!("\npayload opcode: {}", {
        let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(1));
        plan.payload()[0].to_string()
    });
}
