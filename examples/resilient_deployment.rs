//! Deploying a resilient RHMD and attacking it (paper §7):
//!
//! * assemble pools of 2, 3, and 6 diverse base detectors;
//! * measure the baseline detection cost of randomization;
//! * let the attacker reverse-engineer and evade each pool;
//! * print the PAC Theorem-1 error band the attack is trapped inside (§8);
//! * estimate the hardware cost of the deployed pool.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example resilient_deployment
//! ```

use rhmd::prelude::*;
use rhmd::select_victim_opcodes;
use rhmd_core::hw;
use rhmd_core::pac;
use rhmd_core::retrain::detection_quality;

fn main() {
    let config = CorpusConfig::small();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let opcodes = select_victim_opcodes(&traced, &splits.victim_train, 16);
    let trainer = TrainerConfig::default();

    let pools: Vec<(&str, Vec<FeatureSpec>)> = vec![
        (
            "2 features",
            pool_specs(
                &[FeatureKind::Memory, FeatureKind::Instructions],
                &[10_000],
                &opcodes,
            ),
        ),
        (
            "3 features",
            pool_specs(&FeatureKind::ALL, &[10_000], &opcodes),
        ),
        (
            "3 features x 2 periods",
            pool_specs(&FeatureKind::ALL, &[10_000, 5_000], &opcodes),
        ),
    ];

    let labels = traced.corpus().labels();
    let malware: Vec<usize> = splits
        .attacker_test
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();

    for (name, specs) in pools {
        let mut rhmd = build_pool(
            Algorithm::Lr,
            specs.clone(),
            &trainer,
            &traced,
            &splits.victim_train,
            0x5eed,
        );

        // Baseline quality under randomization.
        let quality = detection_quality(&mut rhmd, &traced, &splits.attacker_test);

        // Attacker: best-effort surrogate over the union of features.
        let combined = FeatureSpec::combined(FeatureKind::ALL.to_vec(), 10_000, opcodes.clone());
        let surrogate = reveng::reverse_engineer(
            &mut rhmd,
            &traced,
            &splits.attacker_train,
            combined,
            Algorithm::Nn,
            &TrainerConfig::with_seed(0xbad),
        );
        let fidelity = reveng::agreement(&mut rhmd, &surrogate, &traced, &splits.attacker_test);

        // ...and evasion tuned to that surrogate.
        let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(2));
        let trial = evade_corpus(&mut rhmd, &traced, &malware, &plan);

        // Theory: the Theorem 1 band the surrogate error must fall in.
        let detectors = rhmd.detectors();
        let delta = pac::disagreement_matrix(detectors, &traced, &splits.attacker_test);
        let errors = pac::base_errors(detectors, &traced, &splits.attacker_test);
        let band = pac::theorem1_band(&delta, rhmd.probabilities(), &errors);

        // Hardware bill for this pool.
        let cost = hw::overhead(&specs, &hw::UnitCosts::default());

        println!("pool: {name}");
        println!(
            "  detection  sens {:.1}% / spec {:.1}%",
            100.0 * quality.sensitivity_unmodified,
            100.0 * quality.specificity
        );
        println!(
            "  attacker   agreement {:.1}%  (Theorem-1 error band [{:.1}%, {:.1}%])",
            100.0 * fidelity,
            100.0 * band.lower,
            100.0 * band.upper
        );
        println!(
            "  evasion    detection after injection {:.1}% (of {} initially detected)",
            100.0 * trial.detection_rate(),
            trial.initially_detected
        );
        println!(
            "  hardware   +{:.2}% area, +{:.2}% power vs AO486\n",
            cost.area_pct, cost.power_pct
        );
    }
}
