//! The paper's §8.3 future-work design, running: a non-stationary RHMD
//! whose active detector subset is re-drawn from a larger candidate pool,
//! compared against a plain RHMD and a deterministic ensemble under the
//! same reverse-engineer → inject attack.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example nonstationary_defense
//! ```

use rhmd::prelude::*;
use rhmd::select_victim_opcodes;
use rhmd_core::ensemble::{Combiner, EnsembleHmd};
use rhmd_core::retrain::detection_quality;
use rhmd_core::rhmd::NonStationaryRhmd;

fn main() {
    let config = CorpusConfig::small();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let opcodes = select_victim_opcodes(&traced, &splits.victim_train, 16);
    let trainer = TrainerConfig::default();

    // One shared pool of base detectors: 3 features x 2 periods.
    let train = |spec: FeatureSpec| {
        Hmd::train(Algorithm::Lr, spec, &trainer, &traced, &splits.victim_train)
    };
    let candidates: Vec<Hmd> = pool_specs(&FeatureKind::ALL, &[10_000, 5_000], &opcodes)
        .into_iter()
        .map(train)
        .collect();
    let same_period: Vec<Hmd> = candidates
        .iter()
        .filter(|d| d.spec().period == 10_000)
        .cloned()
        .collect();

    let mut defenders: Vec<(&str, Box<dyn BlackBox>)> = vec![
        (
            "deterministic ensemble",
            Box::new(EnsembleHmd::new(same_period.clone(), Combiner::Majority)),
        ),
        ("stationary RHMD", Box::new(ResilientHmd::new(same_period, 1))),
        (
            "non-stationary RHMD",
            Box::new(NonStationaryRhmd::new(candidates, 3, 8, 2)),
        ),
    ];

    let labels = traced.corpus().labels();
    let malware: Vec<usize> = splits
        .attacker_test
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();

    println!(
        "{:>24} {:>7} {:>7} {:>10} {:>12}",
        "defender", "sens", "spec", "agreement", "detected @3"
    );
    for (name, defender) in &mut defenders {
        let quality = detection_quality(defender.as_mut(), &traced, &splits.attacker_test);
        let surrogate = reveng::reverse_engineer(
            defender.as_mut(),
            &traced,
            &splits.attacker_train,
            FeatureSpec::new(FeatureKind::Instructions, 10_000, opcodes.clone()),
            Algorithm::Nn,
            &TrainerConfig::with_seed(9),
        );
        let fidelity =
            reveng::agreement(defender.as_mut(), &surrogate, &traced, &splits.attacker_test);
        let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(3));
        let trial = evade_corpus(defender.as_mut(), &traced, &malware, &plan);
        println!(
            "{:>24} {:>6.1}% {:>6.1}% {:>9.1}% {:>11.1}%",
            name,
            100.0 * quality.sensitivity_unmodified,
            100.0 * quality.specificity,
            100.0 * fidelity,
            100.0 * trial.detection_rate()
        );
    }
    println!(
        "\nthe non-stationary pool moves its decision boundary over time, so even a \
         faithful snapshot surrogate goes stale — the paper's §8.3 conjecture."
    );
}
