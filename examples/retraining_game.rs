//! The evade–retrain arms race (paper §6, Fig 13): every generation the
//! attacker reverse-engineers the current NN detector and rewrites its
//! malware; the defender then retrains with the captured evasive samples.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example retraining_game
//! ```

use rhmd::prelude::*;
use rhmd::select_victim_opcodes;

fn main() {
    let config = CorpusConfig::small();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let opcodes = select_victim_opcodes(&traced, &splits.victim_train, 16);

    let game = GameConfig {
        algorithm: Algorithm::Nn,
        spec: FeatureSpec::new(FeatureKind::Instructions, 10_000, opcodes),
        surrogate: Algorithm::Nn,
        payload: 2,
        generations: 5,
        trainer: TrainerConfig::default(),
        seed: 0x9a3e,
    };
    println!("playing {} generations of evade-retrain ...\n", game.generations);
    let records = evade_retrain_game(
        &game,
        &traced,
        &splits.victim_train,
        &splits.attacker_train,
        &splits.attacker_test,
    );

    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>14}",
        "gen", "specificity", "unmodified", "current-evasive", "previous-evasive"
    );
    for r in &records {
        println!(
            "{:>4} {:>11.1}% {:>11.1}% {:>13.1}% {:>13.1}%",
            r.generation,
            100.0 * r.specificity,
            100.0 * r.sensitivity_unmodified,
            100.0 * r.sensitivity_current_evasive,
            100.0 * r.sensitivity_previous_evasive,
        );
    }
    println!(
        "\nreading: each generation's detector misses the malware tuned against it \
         (current-evasive low) but catches last generation's (previous-evasive high) — \
         until the classes stop being separable."
    );
}
