//! Integration tests of the corpus's class-level signal structure — the
//! properties that make the substitution for real malware defensible
//! (DESIGN.md §2): malware families and benign classes must differ in
//! exactly the channels the paper's features read, without being trivially
//! separable.

use rhmd::prelude::*;
use rhmd::select_victim_opcodes;
use rhmd_ml::{auc, score_all};
use rhmd_trace::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                           ProgramGenerator};
use rhmd_uarch::CoreModel;

fn mean_counters(
    programs: &[rhmd_trace::Program],
    budget: u64,
) -> rhmd_uarch::CounterSet {
    let mut total = rhmd_uarch::CounterSet::default();
    for p in programs {
        let mut core = CoreModel::new(CoreConfig::default());
        p.execute(ExecLimits::instructions(budget), &mut core);
        total += core.drain_counters();
    }
    total
}

fn sample(family: MalwareFamily, n: u64) -> Vec<rhmd_trace::Program> {
    let generator = ProgramGenerator::new(malware_profile(family));
    (0..n).map(|i| generator.generate(i)).collect()
}

fn sample_benign(class: BenignClass, n: u64) -> Vec<rhmd_trace::Program> {
    let generator = ProgramGenerator::new(benign_profile(class));
    (0..n).map(|i| generator.generate(i)).collect()
}

#[test]
fn malware_is_more_syscall_intensive_than_benign_on_average() {
    let malware: Vec<_> = MalwareFamily::ALL
        .iter()
        .flat_map(|&f| sample(f, 3))
        .collect();
    let benign: Vec<_> = BenignClass::ALL
        .iter()
        .flat_map(|&c| sample_benign(c, 3))
        .collect();
    let m = mean_counters(&malware, 30_000);
    let b = mean_counters(&benign, 30_000);
    let m_rate = m.syscalls as f64 / m.instructions as f64;
    let b_rate = b.syscalls as f64 / b.instructions as f64;
    assert!(
        m_rate > 1.5 * b_rate,
        "malware syscall rate {m_rate} vs benign {b_rate}"
    );
}

#[test]
fn ransomware_is_xor_heavy_compute_is_fpu_heavy() {
    use rhmd_trace::isa::Opcode;
    let count_opcode = |programs: &[rhmd_trace::Program], op: Opcode| -> f64 {
        let mut hits = 0u64;
        let mut total = 0u64;
        for p in programs {
            p.execute(
                ExecLimits::instructions(20_000),
                &mut |ev: &rhmd_trace::ExecEvent| {
                    total += 1;
                    if ev.opcode == op {
                        hits += 1;
                    }
                },
            );
        }
        hits as f64 / total as f64
    };
    let ransomware = sample(MalwareFamily::Ransomware, 4);
    let compute = sample_benign(BenignClass::SpecCompute, 4);
    assert!(
        count_opcode(&ransomware, rhmd_trace::Opcode::Xor)
            > 2.0 * count_opcode(&compute, rhmd_trace::Opcode::Xor),
        "crypto loops should be xor-heavy"
    );
    assert!(
        count_opcode(&compute, rhmd_trace::Opcode::Fpu)
            > 2.0 * count_opcode(&ransomware, rhmd_trace::Opcode::Fpu),
        "numeric kernels should be fpu-heavy"
    );
}

#[test]
fn no_single_family_is_the_whole_signal() {
    // Dropping any one malware family from training must not collapse the
    // detector: the malware/benign signal is distributed across families.
    let config = CorpusConfig::tiny();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let opcodes = select_victim_opcodes(&traced, &splits.victim_train, 16);
    let spec = FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes);
    let strata = traced.corpus().strata();

    let dropped_family = 100; // Spambot
    let reduced: Vec<usize> = splits
        .victim_train
        .iter()
        .copied()
        .filter(|&i| strata[i] != dropped_family)
        .collect();
    let hmd = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &TrainerConfig::default(),
        &traced,
        &reduced,
    );
    let test = traced.window_dataset(&splits.attacker_test, &spec);
    let a = auc(&score_all(hmd.model(), &test), test.labels());
    assert!(a > 0.65, "AUC without spambots {a}");
}

#[test]
fn classes_overlap_enough_to_be_nontrivial() {
    // A detector must NOT reach near-perfect window accuracy — the paper's
    // regime is imperfect separability (Fig 2).
    let config = CorpusConfig::tiny();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let opcodes = select_victim_opcodes(&traced, &splits.victim_train, 16);
    for kind in FeatureKind::ALL {
        let spec = FeatureSpec::new(kind, 5_000, opcodes.clone());
        let hmd = Hmd::train(
            Algorithm::Lr,
            spec.clone(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let test = traced.window_dataset(&splits.attacker_test, &spec);
        let a = auc(&score_all(hmd.model(), &test), test.labels());
        assert!(
            (0.6..0.995).contains(&a),
            "{kind}: AUC {a} outside the paper's imperfect-separability regime"
        );
    }
}

#[test]
fn families_differ_from_each_other_not_just_from_benign() {
    // Within-malware diversity: two families should be distinguishable from
    // each other in instruction-mix space (otherwise "families" are labels
    // without substance).
    use rhmd_features::{select_top_delta_opcodes, trace_subwindows};
    let a = sample(MalwareFamily::Ransomware, 6);
    let b = sample(MalwareFamily::Keylogger, 6);
    let limits = ExecLimits::instructions(30_000);
    let wa: Vec<_> = a
        .iter()
        .flat_map(|p| trace_subwindows(p, limits, CoreConfig::default()))
        .collect();
    let wb: Vec<_> = b
        .iter()
        .flat_map(|p| trace_subwindows(p, limits, CoreConfig::default()))
        .collect();
    // The top-delta opcodes between the two families must carry real mass
    // difference.
    let top = select_top_delta_opcodes(&wa, &wb, 4);
    let mean_freq = |ws: &[rhmd_features::RawWindow], op: rhmd_trace::Opcode| -> f64 {
        ws.iter()
            .map(|w| w.opcode_counts[op.index()] as f64 / w.instructions as f64)
            .sum::<f64>()
            / ws.len() as f64
    };
    let gap: f64 = top
        .iter()
        .map(|&op| (mean_freq(&wa, op) - mean_freq(&wb, op)).abs())
        .sum();
    assert!(gap > 0.02, "inter-family instruction-mix gap {gap}");
}
