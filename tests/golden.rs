//! Golden regression tests: the headline numbers of the reproduction,
//! checked in at tiny scale and compared to 1e-9.
//!
//! Everything in this pipeline is deterministic — synthetic corpus, seeded
//! simulation, seeded training, seeded switching — so these values are
//! exact, not statistical. A drift beyond 1e-9 means a semantic change to
//! the pipeline (intended or not), never noise; if the change is intended,
//! regenerate with:
//!
//! ```text
//! RHMD_GOLDEN_WRITE=1 cargo test --release --test golden
//! ```
//!
//! and review the diff of `tests/golden_expected.json` like any other code
//! change.

use rhmd_bench::par::{Evaluator, Pool};
use rhmd_bench::Experiment;
use rhmd_core::detector::{Detector, StreamRng};
use rhmd_core::hmd::Hmd;
use rhmd_core::rhmd::{build_pool, pool_specs};
use rhmd_core::verdict::VerdictPolicy;
use rhmd_data::CorpusConfig;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::metrics::auc;
use rhmd_ml::model::score_all;
use rhmd_ml::trainer::Algorithm;
use rhmd_uarch::faults::FaultConfig;
use serde::{Deserialize, Serialize};

const TOLERANCE: f64 = 1e-9;
const GOLDEN_PATH: &str = "tests/golden_expected.json";

/// Matches the robustness sweep's constants.
const MIN_FILL: f64 = 0.5;
const MIN_COVERAGE: f64 = 0.25;
const FAULT_SEED: u64 = 0xfa17;

#[derive(Debug, Serialize, Deserialize)]
struct Golden {
    /// Window-level AUC per detector, keyed `"algo/feature@period"`.
    detector_aucs: Vec<(String, f64)>,
    /// 6-detector RHMD pool: program-level sensitivity on clean streams.
    rhmd_clean_sensitivity: f64,
    /// Worst program-level sensitivity across the fault grid.
    rhmd_worst_fault_sensitivity: f64,
    /// Clean minus worst — the headline robustness number.
    rhmd_sensitivity_drop: f64,
}

fn fault_grid() -> Vec<FaultConfig> {
    vec![
        FaultConfig::noise(0.05),
        FaultConfig::noise(0.2),
        FaultConfig::dropping(0.1),
        FaultConfig::dropping(0.3),
        FaultConfig::multiplexed(0.25),
        FaultConfig::bursty(0.05, 4),
        FaultConfig::saturating(12),
        FaultConfig::wrapping(12),
    ]
}

fn compute() -> Golden {
    let exp = Experiment::with_config(CorpusConfig::tiny());
    let engine = Evaluator::builder(&exp.traced, exp.config.seed)
        .pool(Pool::available())
        .build();

    // Detector AUC grid: every base algorithm on every feature kind.
    let mut detector_aucs = Vec::new();
    for kind in FeatureKind::ALL {
        let spec = exp.spec(kind, 10_000);
        let test = engine.window_dataset(&exp.splits.attacker_test, &spec);
        for algorithm in [Algorithm::Lr, Algorithm::Dt, Algorithm::Svm, Algorithm::Nn, Algorithm::Rf]
        {
            let train = engine.window_dataset(&exp.splits.victim_train, &spec);
            let hmd = Hmd::train_on_dataset(algorithm, spec.clone(), &exp.trainer, &train);
            let roc_auc = auc(&score_all(hmd.model(), &test), test.labels());
            detector_aucs.push((format!("{algorithm}/{}", spec.label()), roc_auc));
        }
    }

    // The 6-detector RHMD pool under the robustness fault grid.
    let rhmd = build_pool(
        Algorithm::Lr,
        pool_specs(&FeatureKind::ALL, &[10_000, 5_000], &exp.opcodes),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
        0x5eed,
    );
    let policy = VerdictPolicy::majority();
    let measure = |config: FaultConfig| {
        engine
            .degraded_quality(
                &exp.splits.attacker_test,
                config,
                &policy,
                MIN_COVERAGE,
                |i| FAULT_SEED ^ i as u64,
                |_, subs| {
                    Detector::quorum(&rhmd, subs, MIN_FILL, &mut StreamRng::from_seed(rhmd.seed()))
                },
            )
            .sensitivity
    };
    let clean = measure(FaultConfig::none());
    let worst = fault_grid()
        .into_iter()
        .map(measure)
        .fold(f64::INFINITY, f64::min);

    Golden {
        detector_aucs,
        rhmd_clean_sensitivity: clean,
        rhmd_worst_fault_sensitivity: worst,
        rhmd_sensitivity_drop: clean - worst,
    }
}

#[test]
fn golden_numbers_match_checked_in_values() {
    let actual = compute();
    if std::env::var_os("RHMD_GOLDEN_WRITE").is_some() {
        let json = serde_json::to_string_pretty(&actual).expect("serialize golden");
        std::fs::write(GOLDEN_PATH, json + "\n").expect("write golden file");
        eprintln!("[golden] regenerated {GOLDEN_PATH}");
        return;
    }
    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing {GOLDEN_PATH} ({e}); regenerate with RHMD_GOLDEN_WRITE=1")
    });
    let expected: Golden = serde_json::from_str(&text).expect("parse golden file");

    assert_eq!(
        actual.detector_aucs.len(),
        expected.detector_aucs.len(),
        "detector grid changed shape; regenerate the golden file if intended"
    );
    for ((name_a, auc_a), (name_e, auc_e)) in
        actual.detector_aucs.iter().zip(&expected.detector_aucs)
    {
        assert_eq!(name_a, name_e, "detector grid order changed");
        assert!(
            (auc_a - auc_e).abs() <= TOLERANCE,
            "{name_a}: AUC {auc_a} drifted from golden {auc_e} by {:e}",
            (auc_a - auc_e).abs()
        );
    }
    for (what, a, e) in [
        ("clean sensitivity", actual.rhmd_clean_sensitivity, expected.rhmd_clean_sensitivity),
        (
            "worst fault sensitivity",
            actual.rhmd_worst_fault_sensitivity,
            expected.rhmd_worst_fault_sensitivity,
        ),
        ("sensitivity drop", actual.rhmd_sensitivity_drop, expected.rhmd_sensitivity_drop),
    ] {
        assert!(
            (a - e).abs() <= TOLERANCE,
            "RHMD {what}: {a} drifted from golden {e} by {:e}",
            (a - e).abs()
        );
    }
}
