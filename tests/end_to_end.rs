//! Cross-crate integration tests: the complete attacker/defender loops of
//! the paper, exercised through the public facade API on the tiny corpus.

use rhmd::prelude::*;
use rhmd::select_victim_opcodes;

fn fixture() -> (TracedCorpus, Splits, Vec<Opcode>) {
    let config = CorpusConfig::tiny();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    let opcodes = select_victim_opcodes(&traced, &splits.victim_train, 16);
    (traced, splits, opcodes)
}

fn malware_of(traced: &TracedCorpus, indices: &[usize]) -> Vec<usize> {
    let labels = traced.corpus().labels();
    indices.iter().copied().filter(|&i| labels[i]).collect()
}

#[test]
fn full_evasion_loop_defeats_deterministic_detector() {
    let (traced, splits, opcodes) = fixture();
    let spec = FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes);
    let mut victim = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
    );

    // Reverse-engineer through the black-box interface only.
    let surrogate = reveng::reverse_engineer(
        &mut victim,
        &traced,
        &splits.attacker_train,
        spec,
        Algorithm::Lr,
        &TrainerConfig::with_seed(1),
    );
    let fidelity = reveng::agreement(&mut victim, &surrogate, &traced, &splits.attacker_test);
    assert!(fidelity > 0.75, "surrogate fidelity {fidelity}");

    // Surrogate-guided injection must beat the victim.
    let malware = malware_of(&traced, &splits.attacker_test);
    let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(3));
    let trial = evade_corpus(&mut victim, &traced, &malware, &plan);
    assert!(trial.initially_detected > 0);
    assert!(
        trial.detection_rate() < 0.5,
        "evasion failed: {:?}",
        trial
    );
    // ...at bounded overhead (the paper's threat model demands this).
    assert!(trial.mean_dynamic_overhead < 1.0);
}

#[test]
fn same_attack_fails_against_rhmd() {
    let (traced, splits, opcodes) = fixture();
    let specs = pool_specs(&FeatureKind::ALL, &[5_000], &opcodes);
    let mut rhmd = build_pool(
        Algorithm::Lr,
        specs,
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
        7,
    );

    // Attacker targets the Instructions feature, as in the paper.
    let surrogate = reveng::reverse_engineer(
        &mut rhmd,
        &traced,
        &splits.attacker_train,
        FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes.clone()),
        Algorithm::Nn,
        &TrainerConfig::with_seed(2),
    );
    // Use every malware program in the corpus: the tiny attacker-test split
    // alone is too small for a stable rate.
    let malware = traced.corpus().malware_indices();
    let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(2));
    rhmd.reset();
    let trial = evade_corpus(&mut rhmd, &traced, &malware, &plan);
    assert!(trial.initially_detected > 10);

    // Reference point: the identical attack against the deterministic
    // Instructions detector alone.
    let mut deterministic = Hmd::train(
        Algorithm::Lr,
        FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes),
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
    );
    let solo = evade_corpus(&mut deterministic, &traced, &malware, &plan);

    assert!(
        trial.detection_rate() > solo.detection_rate() + 0.25,
        "RHMD must resist the single-feature attack far better than the \
         deterministic detector: rhmd {:?} vs solo {:?}",
        trial,
        solo
    );
}

#[test]
fn rhmd_reverse_engineering_is_lossier_than_deterministic() {
    let (traced, splits, opcodes) = fixture();
    let spec = FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes.clone());

    let mut deterministic = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
    );
    let det_surrogate = reveng::reverse_engineer(
        &mut deterministic,
        &traced,
        &splits.attacker_train,
        spec.clone(),
        Algorithm::Lr,
        &TrainerConfig::with_seed(3),
    );
    let det_agreement = reveng::agreement(
        &mut deterministic,
        &det_surrogate,
        &traced,
        &splits.attacker_test,
    );

    let mut rhmd = build_pool(
        Algorithm::Lr,
        pool_specs(&FeatureKind::ALL, &[5_000], &opcodes),
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
        9,
    );
    let rhmd_surrogate = reveng::reverse_engineer(
        &mut rhmd,
        &traced,
        &splits.attacker_train,
        spec,
        Algorithm::Lr,
        &TrainerConfig::with_seed(3),
    );
    rhmd.reset();
    let rhmd_agreement =
        reveng::agreement(&mut rhmd, &rhmd_surrogate, &traced, &splits.attacker_test);

    assert!(
        det_agreement > rhmd_agreement + 0.05,
        "deterministic {det_agreement} vs rhmd {rhmd_agreement}"
    );
}

#[test]
fn injection_preserves_malware_semantics_end_to_end() {
    let (traced, _, opcodes) = fixture();
    let malware_idx = traced.corpus().malware_indices()[0];
    let program = traced.corpus().program(malware_idx);

    let plan = rhmd_trace::inject::InjectionPlan::new(
        vec![opcodes[0]].into_iter().filter(|o| o.is_injectable()).collect(),
        Placement::EveryBlock,
    );
    let (modified, _) = rhmd_trace::inject::apply(program, &plan);

    let limits = ExecLimits::original_instructions(40_000);
    let mut sink_a = rhmd_trace::exec::CountingSink::default();
    let mut sink_b = rhmd_trace::exec::CountingSink::default();
    let original = program.execute(limits, &mut sink_a);
    let rewritten = modified.execute(limits, &mut sink_b);
    // Same original-work budget => identical fingerprint.
    assert_eq!(original.original_fingerprint, rewritten.original_fingerprint);
    assert!(rewritten.instructions > original.instructions || plan.payload_len() == 0);
}

#[test]
fn retraining_game_improves_previous_generation_detection() {
    let (traced, splits, opcodes) = fixture();
    let config = GameConfig {
        algorithm: Algorithm::Nn,
        spec: FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes),
        surrogate: Algorithm::Lr,
        payload: 2,
        generations: 3,
        trainer: TrainerConfig::default(),
        seed: 5,
    };
    let records = evade_retrain_game(
        &config,
        &traced,
        &splits.victim_train,
        &splits.attacker_train,
        &splits.attacker_test,
    );
    assert_eq!(records.len(), 3);
    // After the first retrain, the detector must handle the previous
    // generation's evasive malware markedly better than that malware evaded
    // it at creation time.
    let evaded_then = records[0].sensitivity_current_evasive;
    let caught_now = records[1].sensitivity_previous_evasive;
    assert!(
        caught_now > evaded_then,
        "retraining did not catch previous evasive ({evaded_then} -> {caught_now})"
    );
}

#[test]
fn program_verdicts_aggregate_windows() {
    let (traced, splits, opcodes) = fixture();
    let spec = FeatureSpec::new(FeatureKind::Architectural, 5_000, opcodes);
    let hmd = Hmd::train(
        Algorithm::Lr,
        spec,
        &TrainerConfig::default(),
        &traced,
        &splits.victim_train,
    );
    for &i in splits.attacker_test.iter().take(5) {
        let verdict = hmd.verdict(traced.subwindows(i));
        assert!(verdict.total > 0);
        assert!(verdict.flagged <= verdict.total);
        assert_eq!(verdict.is_malware(), verdict.flag_rate() >= 0.5);
    }
}
