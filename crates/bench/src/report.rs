//! Plain-text tables for experiment output — every figure/table binary
//! prints one or more of these, and `repro_all` concatenates them into the
//! experiment record.

use std::fmt;

/// A labelled table of rows, mirroring one figure or table of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Identifier, e.g. `"Fig 8a"`.
    pub id: String,
    /// What the paper's version of this table shows.
    pub caption: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (first column is typically the x-axis value).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        caption: impl Into<String>,
        columns: &[&str],
    ) -> Table {
        Table {
            id: id.into(),
            caption: caption.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count mismatches the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Formats a percentage cell.
    pub fn pct(v: f64) -> String {
        format!("{:.1}%", 100.0 * v)
    }

    /// Formats a ratio cell with three decimals.
    pub fn num(v: f64) -> String {
        format!("{v:.3}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.caption)?;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Fig X", "demo", &["x", "value"]);
        t.push_row(vec!["1".into(), Table::pct(0.5)]);
        t.push_row(vec!["100".into(), Table::pct(1.0)]);
        let s = t.to_string();
        assert!(s.contains("Fig X"));
        assert!(s.contains("50.0%"));
        assert!(s.contains("100.0%"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", "demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(Table::pct(0.123), "12.3%");
        assert_eq!(Table::num(0.12345), "0.123");
    }
}
