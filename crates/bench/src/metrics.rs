//! Glue between the dependency-free metrics crate ([`rhmd_obs`]) and the
//! experiment layer: the standard key set every pipeline stage emits, the
//! `--metrics` / `--metrics-summary` options shared by the CLI and the
//! experiment binaries, and a [`JsonRecorder`] wired to
//! [`crate::durable`]'s atomic writer.
//!
//! Metrics are **observe-only**: every instrumentation site records counts
//! and latencies of work that happens identically with metrics on or off,
//! so enabling `--metrics` can never change a result — the CLI metrics
//! test suite asserts byte-identical sweep cells either way, at any thread
//! count.

use crate::durable::Durable;
use rhmd_core::RhmdError;
use rhmd_obs::{self as obs, JsonRecorder, NoopRecorder, Recorder};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Counter names every run preregisters, so exported snapshots always
/// carry the full schema (a clean tiny run legitimately has zero steals,
/// retries, or fault events — consumers still find the keys).
pub const STANDARD_COUNTERS: &[&str] = &[
    "cache.hits",
    "cache.misses",
    "ckpt.journal_appends",
    "ckpt.units_resumed",
    "core.verdict.abstained",
    "core.verdict.decided",
    "core.windows.abstained",
    "core.windows.voted",
    "data.programs_traced",
    "durable.atomic_writes",
    "durable.retries",
    "ml.models_trained",
    "pool.maps",
    "pool.steals",
    "trace.instructions",
    "trace.programs_executed",
    "trace.windows",
    "uarch.windows_corrupted",
    "uarch.windows_dropped",
];

/// Gauge names every run preregisters.
pub const STANDARD_GAUGES: &[&str] = &["pool.threads"];

/// Histogram names every run preregisters.
pub const STANDARD_HISTOGRAMS: &[&str] =
    &["features.project", "features.trace", "ml.score", "ml.train", "trace.exec"];

/// Preregisters the standard key set in the global registry.
pub fn preregister_standard() {
    obs::preregister(STANDARD_COUNTERS, STANDARD_GAUGES, STANDARD_HISTOGRAMS);
}

/// Parsed `--metrics <path>` / `--metrics-summary` options.
///
/// The lifecycle is: [`MetricsOptions::install`] before any instrumented
/// work (flips the global enable switch and preregisters the standard
/// keys), then [`MetricsOptions::finish`] after the run (exports the JSON
/// snapshot and/or prints the stderr summary table). When neither flag is
/// given, both are no-ops and every instrumentation site stays on its
/// near-zero disabled path.
#[derive(Debug, Clone, Default)]
pub struct MetricsOptions {
    path: Option<PathBuf>,
    summary: bool,
}

impl MetricsOptions {
    /// Options from parsed flag values.
    #[must_use]
    pub fn new(path: Option<PathBuf>, summary: bool) -> MetricsOptions {
        MetricsOptions { path, summary }
    }

    /// Metrics fully off (the default).
    #[must_use]
    pub fn off() -> MetricsOptions {
        MetricsOptions::default()
    }

    /// Whether any metrics output was requested.
    #[must_use]
    pub fn any(&self) -> bool {
        self.path.is_some() || self.summary
    }

    /// The `--metrics` output path, if given.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Enables the global registry and preregisters the standard key set
    /// when any metrics output was requested; a no-op otherwise.
    pub fn install(&self) {
        if self.any() {
            obs::set_enabled(true);
            preregister_standard();
        }
    }

    /// The recorder to wire into an evaluation engine: a durably-writing
    /// [`JsonRecorder`] when `--metrics <path>` was given, a
    /// [`NoopRecorder`] otherwise. (`--metrics-summary` alone still
    /// enables collection via [`MetricsOptions::install`]; the summary is
    /// printed by [`MetricsOptions::finish`], not exported.)
    ///
    /// # Errors
    ///
    /// [`RhmdError::Parse`] when `RHMD_IO_FAULTS` is malformed (the writer
    /// goes through [`Durable::from_env`]).
    pub fn recorder(&self) -> Result<Arc<dyn Recorder>, RhmdError> {
        match &self.path {
            None => Ok(Arc::new(NoopRecorder)),
            Some(path) => Ok(Arc::new(json_recorder(path)?)),
        }
    }

    /// Prints the snapshot summary table to stderr when `--metrics-summary`
    /// was given.
    pub fn print_summary(&self) {
        if self.summary {
            eprint!("{}", obs::snapshot().summary_table());
        }
    }

    /// Exports the JSON snapshot (when `--metrics` was given) and prints
    /// the stderr summary (when `--metrics-summary` was given).
    ///
    /// # Errors
    ///
    /// [`RhmdError::Io`] when the snapshot cannot be written.
    pub fn finish(&self) -> Result<(), RhmdError> {
        if let Some(path) = &self.path {
            let recorder = json_recorder(path)?;
            recorder.export(&obs::snapshot()).map_err(|e| {
                RhmdError::io(path.display().to_string(), format!("write metrics: {e}"))
            })?;
            eprintln!("[metrics] snapshot written to {}", path.display());
        }
        self.print_summary();
        Ok(())
    }
}

/// A [`JsonRecorder`] whose writes go through [`Durable`]'s atomic,
/// fault-retried `write_atomic` (dependency inversion — `rhmd_obs` stays
/// free of I/O policy).
///
/// # Errors
///
/// [`RhmdError::Parse`] when `RHMD_IO_FAULTS` is malformed.
pub fn json_recorder(path: &Path) -> Result<JsonRecorder, RhmdError> {
    let durable = Durable::from_env()?;
    Ok(JsonRecorder::with_writer(path, move |path, bytes| {
        durable
            .write_atomic(path, bytes)
            .map_err(|e| std::io::Error::other(e.to_string()))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_options_are_inert() {
        let off = MetricsOptions::off();
        assert!(!off.any());
        assert!(off.path().is_none());
        // install/finish on the off state must not enable the registry.
        off.install();
        off.finish().unwrap();
        assert!(!obs::enabled());
    }

    #[test]
    fn recorder_matches_requested_output() {
        let off = MetricsOptions::off();
        assert!(!off.recorder().unwrap().is_enabled());
        let on = MetricsOptions::new(Some(PathBuf::from("/tmp/m.json")), false);
        assert!(on.any() && on.recorder().unwrap().is_enabled());
        assert_eq!(on.path(), Some(Path::new("/tmp/m.json")));
    }

    #[test]
    fn standard_keys_are_sorted_and_unique() {
        for set in [STANDARD_COUNTERS, STANDARD_GAUGES, STANDARD_HISTOGRAMS] {
            let mut sorted = set.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, set, "standard key lists stay sorted and unique");
        }
    }
}
