//! Shared experiment setup: corpus, traces, splits, feature selection.

use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
use rhmd_features::select::select_top_delta_opcodes;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::trainer::TrainerConfig;
use rhmd_trace::isa::Opcode;
use rhmd_uarch::CoreConfig;

/// Everything every experiment starts from. Built once per process; scale
/// selected by `RHMD_SCALE` (`tiny`/`small`/`standard`/`paper`).
#[derive(Debug)]
pub struct Experiment {
    /// The corpus scale in effect.
    pub config: CorpusConfig,
    /// Traced corpus (every program executed once).
    pub traced: TracedCorpus,
    /// Victim / attacker-train / attacker-test split.
    pub splits: Splits,
    /// Top-delta opcodes selected on the victim training set.
    pub opcodes: Vec<Opcode>,
    /// Shared training hyperparameters.
    pub trainer: TrainerConfig,
}

impl Experiment {
    /// Builds the experiment context at the environment-selected scale.
    pub fn load() -> Experiment {
        Experiment::with_config(CorpusConfig::from_env())
    }

    /// Builds the experiment context at an explicit scale.
    pub fn with_config(config: CorpusConfig) -> Experiment {
        eprintln!(
            "[setup] corpus: {} programs, {} instr/trace (RHMD_SCALE to change)",
            config.total_programs(),
            config.max_instructions
        );
        let start = std::time::Instant::now();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let labels = traced.corpus().labels();
        let collect = |want: bool| -> Vec<_> {
            splits
                .victim_train
                .iter()
                .filter(|&&i| labels[i] == want)
                .flat_map(|&i| traced.subwindows(i).to_vec())
                .collect()
        };
        let opcodes = select_top_delta_opcodes(&collect(true), &collect(false), 16);
        eprintln!("[setup] traced + selected features in {:?}", start.elapsed());
        Experiment {
            config,
            traced,
            splits,
            opcodes,
            trainer: TrainerConfig::with_seed(config.seed ^ 0x7a61),
        }
    }

    /// A single-kind feature spec with the victim's opcode table.
    pub fn spec(&self, kind: FeatureKind, period: u32) -> FeatureSpec {
        FeatureSpec::new(kind, period, self.opcodes.clone())
    }

    /// A combined (multi-kind) spec with the victim's opcode table.
    pub fn combined_spec(&self, kinds: &[FeatureKind], period: u32) -> FeatureSpec {
        FeatureSpec::combined(kinds.to_vec(), period, self.opcodes.clone())
    }

    /// Malware program indices within the attacker-test split.
    pub fn test_malware(&self) -> Vec<usize> {
        let labels = self.traced.corpus().labels();
        self.splits
            .attacker_test
            .iter()
            .copied()
            .filter(|&i| labels[i])
            .collect()
    }

    /// Malware program indices within the victim-train split.
    pub fn train_malware(&self) -> Vec<usize> {
        let labels = self.traced.corpus().labels();
        self.splits
            .victim_train
            .iter()
            .copied()
            .filter(|&i| labels[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_context_is_consistent() {
        let exp = Experiment::with_config(CorpusConfig::tiny());
        assert_eq!(exp.opcodes.len(), 16);
        assert!(!exp.test_malware().is_empty());
        assert!(!exp.train_malware().is_empty());
        let spec = exp.spec(FeatureKind::Instructions, 5_000);
        assert_eq!(spec.dims(), 16);
        let combined = exp.combined_spec(&FeatureKind::ALL, 5_000);
        assert!(combined.dims() > spec.dims());
    }
}
