//! Parallel corpus-evaluation engine: a dependency-free work-stealing
//! thread pool, a feature-vector cache, and the per-program evaluation
//! loops every experiment shares.
//!
//! Three design rules make parallel runs **bit-exact** with serial ones at
//! any thread count:
//!
//! 1. **Per-program work is pure.** A program's verdict depends only on its
//!    own subwindows and a seed derived from `(run seed, program id)` via
//!    [`rhmd_trace::seed::derive_seed`] — never on shared RNG state or on
//!    which other programs were evaluated before it.
//! 2. **Results are keyed by index.** Workers race over *which item to
//!    compute next*, not over where results land; output order is always
//!    corpus order, so reductions (datasets, tallies) fold identically.
//! 3. **The cache stores finished values.** A [`FeatureCache`] hit returns
//!    the same immutable vectors a miss would compute, so interleaving of
//!    hits and misses cannot change any result, only the wall-clock.
//!
//! The pool itself is a scoped-thread work-stealing scheduler: items are
//! pre-split into one contiguous block per worker, a worker drains its own
//! block from the front, and an idle worker steals the back half of the
//! fullest remaining block. No allocation or locking happens per item
//! beyond one short mutex acquisition, and the whole scheduler is ~100
//! lines of std — the approved dependency set has no rayon.

use crate::ckpt::Journal;
use rhmd_core::detector::{Detector, StreamRng};
use rhmd_core::hmd::{Hmd, QuorumVerdict};
use rhmd_core::retrain::DetectionQuality;
use rhmd_core::rhmd::ResilientHmd;
use rhmd_core::verdict::{DegradedVerdict, VerdictPolicy};
use rhmd_core::RhmdError;
use rhmd_data::store::CorpusStore;
use rhmd_data::{CorpusSource, TracedCorpus};
use rhmd_features::pipeline::project_windows_into;
use rhmd_features::vector::FeatureSpec;
use rhmd_features::window::{apply_faults, RawWindow};
use rhmd_ml::matrix::FeatureMatrix;
use rhmd_ml::model::Dataset;
use rhmd_obs::{self as obs, NoopRecorder, Recorder};
use rhmd_trace::seed::derive_seed;
use rhmd_uarch::faults::{FaultConfig, FaultModel};
use std::collections::HashMap;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Work-stealing pool
// ---------------------------------------------------------------------------

/// One worker's claim on a contiguous index range `[next, end)`.
///
/// The owner pops from the front; thieves halve from the back. A mutex per
/// block keeps the claim/steal race trivially correct — critical sections
/// are a handful of integer ops, invisible next to per-item costs of
/// microseconds to milliseconds (simulation, training, classification).
struct Block {
    range: Mutex<(usize, usize)>,
}

impl Block {
    fn new(start: usize, end: usize) -> Block {
        Block {
            range: Mutex::new((start, end)),
        }
    }

    /// Claims the next index of this block, if any.
    fn pop_front(&self) -> Option<usize> {
        let mut r = self.range.lock().expect("pool mutex poisoned");
        if r.0 < r.1 {
            let i = r.0;
            r.0 += 1;
            Some(i)
        } else {
            None
        }
    }

    /// Steals the back half of this block (at least one item, only if two
    /// or more remain so the owner keeps making progress).
    fn steal_back(&self) -> Option<(usize, usize)> {
        let mut r = self.range.lock().expect("pool mutex poisoned");
        let remaining = r.1.saturating_sub(r.0);
        if remaining < 2 {
            return None;
        }
        let take = remaining / 2;
        let stolen = (r.1 - take, r.1);
        r.1 -= take;
        Some(stolen)
    }

    fn remaining(&self) -> usize {
        let r = self.range.lock().expect("pool mutex poisoned");
        r.1.saturating_sub(r.0)
    }
}

/// A fixed-width scoped-thread work-stealing pool.
///
/// # Examples
///
/// ```
/// use rhmd_bench::par::Pool;
///
/// let items: Vec<u64> = (0..100).collect();
/// let doubled = Pool::new(4).map(&items, |_, &x| x * 2);
/// assert_eq!(doubled, Pool::new(1).map(&items, |_, &x| x * 2));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn available() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool, preserving input order exactly.
    ///
    /// `f` receives `(index, &item)` so callers can derive per-item seeds.
    /// The result is bit-identical to `items.iter().enumerate().map(...)`
    /// at any thread count, provided `f` is a pure function of its
    /// arguments — which every evaluation closure in this crate is.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        obs::incr("pool.maps");
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n < 2 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // Static split: worker w starts on [w*chunk, ...); stealing
        // rebalances whatever the split got wrong.
        let chunk = n.div_ceil(workers);
        let blocks: Vec<Block> = (0..workers)
            .map(|w| Block::new((w * chunk).min(n), ((w + 1) * chunk).min(n)))
            .collect();

        let mut harvested: Vec<Vec<(usize, R)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let blocks = &blocks;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::with_capacity(chunk);
                    loop {
                        // Drain the block we own.
                        while let Some(i) = blocks[w].pop_front() {
                            out.push((i, f(i, &items[i])));
                        }
                        // Steal the back half of the fullest victim.
                        let victim = (0..blocks.len())
                            .filter(|&v| v != w)
                            .max_by_key(|&v| blocks[v].remaining());
                        let stolen = victim.and_then(|v| blocks[v].steal_back());
                        match stolen {
                            Some((lo, hi)) => {
                                // Install the loot as our own block so it can
                                // itself be re-stolen if we stall.
                                obs::incr("pool.steals");
                                *blocks[w].range.lock().expect("pool mutex poisoned") = (lo, hi);
                            }
                            None => break, // nothing left anywhere
                        }
                    }
                    out
                }));
            }
            for h in handles {
                harvested.push(h.join().expect("pool worker panicked"));
            }
        });

        // Reassemble in input order: every index was claimed exactly once.
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for (i, r) in harvested.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("index never claimed"))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Per-task deadline watchdog
// ---------------------------------------------------------------------------

/// Deadline configuration for watchdog-supervised pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How long one work unit may run before it is flagged as overdue.
    pub deadline: Duration,
}

impl WatchdogConfig {
    /// A watchdog with the given per-unit deadline.
    #[must_use]
    pub fn new(deadline: Duration) -> WatchdogConfig {
        WatchdogConfig { deadline }
    }

    /// A watchdog with a deadline in whole seconds (the CLI flag unit).
    #[must_use]
    pub fn from_secs(seconds: u64) -> WatchdogConfig {
        WatchdogConfig::new(Duration::from_secs(seconds))
    }
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig::from_secs(30)
    }
}

/// What a watchdog-supervised run observed: how many units ran, which were
/// flagged past their deadline, and which had to be requeued after their
/// first attempt was lost. `overdue`/`requeued` indices are per-map; when
/// reports from several maps are [`RunReport::merge`]d the lists become an
/// aggregate diagnostic, not unit identifiers.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// Total work units supervised.
    pub items: u64,
    /// Units observed running past the deadline (they may still have
    /// completed — overdue means slow or stuck, not necessarily lost).
    pub overdue: Vec<u64>,
    /// Units whose first attempt produced no result (worker panic or lost
    /// unit) and were recomputed serially in ascending index order.
    pub requeued: Vec<u64>,
    /// The deadline in force, in milliseconds.
    pub deadline_ms: u64,
}

impl RunReport {
    /// Whether anything went wrong: an overdue or requeued unit.
    #[must_use]
    pub fn degraded(&self) -> bool {
        !self.overdue.is_empty() || !self.requeued.is_empty()
    }

    /// Folds another map's report into this aggregate.
    pub fn merge(&mut self, other: &RunReport) {
        self.items += other.items;
        self.overdue.extend_from_slice(&other.overdue);
        self.requeued.extend_from_slice(&other.requeued);
        self.deadline_ms = self.deadline_ms.max(other.deadline_ms);
    }
}

/// Renders a panic payload for error messages.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl Pool {
    /// [`Pool::map`] under a watchdog: a monitor thread flags units that run
    /// past `watchdog.deadline`, per-unit panics are caught instead of
    /// tearing the run down, and any unit whose first attempt produced no
    /// result is **requeued deterministically** — recomputed serially in
    /// ascending index order, which (since `f` is pure) yields exactly the
    /// value the first attempt would have. Alongside the results comes a
    /// [`RunReport`] so callers surface a degraded run instead of silently
    /// absorbing it.
    ///
    /// Scoped threads cannot be cancelled, so a unit that truly never
    /// returns still blocks the join — the watchdog's job is to *say which
    /// unit is stuck* (on stderr and in the report) so an operator can act,
    /// and to recover the recoverable cases (panics, lost results).
    ///
    /// # Errors
    ///
    /// [`RhmdError::Model`] when a requeued unit fails again — `f` is pure,
    /// so a second identical failure means the unit can never complete.
    pub fn map_watchdog<T, R, F>(
        &self,
        items: &[T],
        watchdog: &WatchdogConfig,
        f: F,
    ) -> Result<(Vec<R>, RunReport), RhmdError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        obs::incr("pool.maps");
        let deadline_ms = watchdog.deadline.as_millis().min(u128::from(u64::MAX)) as u64;
        let mut report = RunReport {
            items: n as u64,
            deadline_ms,
            ..RunReport::default()
        };
        let workers = self.threads.min(n.max(1));
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        if workers > 1 && n >= 2 {
            let chunk = n.div_ceil(workers);
            let blocks: Vec<Block> = (0..workers)
                .map(|w| Block::new((w * chunk).min(n), ((w + 1) * chunk).min(n)))
                .collect();
            // In-flight tracking: per worker, the unit it is computing
            // (index + 1; 0 = idle) and when it started, in milliseconds
            // since `epoch`. `busy_since` is written before `busy_index` so
            // the monitor never pairs a fresh index with a stale start.
            let busy_index: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            let busy_since: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
            let stop = AtomicBool::new(false);
            let overdue = Mutex::new(std::collections::BTreeSet::new());
            let epoch = Instant::now();

            let mut harvested: Vec<Vec<(usize, R)>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let blocks = &blocks;
                    let f = &f;
                    let busy_index = &busy_index;
                    let busy_since = &busy_since;
                    handles.push(scope.spawn(move || {
                        let mut out: Vec<(usize, R)> = Vec::with_capacity(chunk);
                        loop {
                            while let Some(i) = blocks[w].pop_front() {
                                busy_since[w]
                                    .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
                                busy_index[w].store(i + 1, Ordering::Release);
                                // `f` is pure per the pool contract, so
                                // unwinding out of it cannot leave broken
                                // shared state behind.
                                let result =
                                    std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                                busy_index[w].store(0, Ordering::Release);
                                if let Ok(r) = result {
                                    out.push((i, r));
                                }
                            }
                            let victim = (0..blocks.len())
                                .filter(|&v| v != w)
                                .max_by_key(|&v| blocks[v].remaining());
                            match victim.and_then(|v| blocks[v].steal_back()) {
                                Some((lo, hi)) => {
                                    obs::incr("pool.steals");
                                    *blocks[w].range.lock().expect("pool mutex poisoned") =
                                        (lo, hi);
                                }
                                None => break,
                            }
                        }
                        out
                    }));
                }
                let monitor = scope.spawn(|| {
                    let tick = (watchdog.deadline / 4)
                        .max(Duration::from_millis(1))
                        .min(Duration::from_millis(50));
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        let now = epoch.elapsed().as_millis() as u64;
                        for w in 0..workers {
                            let slot = busy_index[w].load(Ordering::Acquire);
                            if slot == 0 {
                                continue;
                            }
                            let started = busy_since[w].load(Ordering::Relaxed);
                            if now.saturating_sub(started) >= deadline_ms
                                && overdue
                                    .lock()
                                    .expect("watchdog mutex poisoned")
                                    .insert(slot - 1)
                            {
                                eprintln!(
                                    "[pool] work unit {} exceeded its {:?} deadline on \
                                     worker {w}; it will be requeued if its result is lost",
                                    slot - 1,
                                    watchdog.deadline
                                );
                            }
                        }
                    }
                });
                for h in handles {
                    harvested.push(h.join().expect("pool worker panicked"));
                }
                stop.store(true, Ordering::Relaxed);
                monitor.join().expect("watchdog monitor panicked");
            });
            for (i, r) in harvested.into_iter().flatten() {
                debug_assert!(slots[i].is_none(), "index {i} computed twice");
                slots[i] = Some(r);
            }
            report.overdue = overdue
                .into_inner()
                .expect("watchdog mutex poisoned")
                .into_iter()
                .map(|i| i as u64)
                .collect();
        } else {
            for (i, t) in items.iter().enumerate() {
                if let Ok(r) = std::panic::catch_unwind(AssertUnwindSafe(|| f(i, t))) {
                    slots[i] = Some(r);
                }
            }
        }

        // Deterministic requeue: every unit without a result is recomputed
        // serially in ascending index order. `f(i, item)` depends only on
        // its arguments, so the requeued value is bit-identical to what the
        // lost first attempt would have produced.
        for i in 0..n {
            if slots[i].is_some() {
                continue;
            }
            report.requeued.push(i as u64);
            match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                Ok(r) => slots[i] = Some(r),
                Err(payload) => {
                    return Err(RhmdError::model(format!(
                        "work unit {i} failed twice ({}); a pure unit failing \
                         deterministically cannot complete — aborting the run",
                        panic_message(&*payload)
                    )));
                }
            }
        }
        let results = slots
            .into_iter()
            .map(|r| r.expect("requeue filled every slot"))
            .collect();
        Ok((results, report))
    }
}

// ---------------------------------------------------------------------------
// Feature-vector cache
// ---------------------------------------------------------------------------

/// Cache key: one projected window set is identified by the backing corpus
/// source, the program, the fault seed, the collection period, the feature
/// definition, and the fault configuration (hashed stably, so keys survive
/// process boundaries).
///
/// `source` is the [`CorpusSource::identity`] of the backing data — `0` for
/// live generation, the store's path/config hash otherwise — so mixing a
/// corpus store and a generated corpus in one process can never alias
/// entries even when program indices and specs coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    source: u64,
    program: usize,
    seed: u64,
    period: u32,
    spec_hash: u64,
    fault_hash: u64,
}

const SHARDS: usize = 16;

/// Where an [`Evaluator`] reads feature rows from: a live traced corpus or
/// an opened on-disk [`CorpusStore`].
///
/// Both sides satisfy the same contract ([`CorpusSource`]): for the same
/// underlying corpus, feature rows are bit-identical — which is what makes
/// `rhmd sweep --corpus-store` byte-identical to live generation.
#[derive(Debug, Clone, Copy)]
pub enum EvalSource<'a> {
    /// Programs traced in RAM this run.
    Traced(&'a TracedCorpus),
    /// Feature rows mmap'd from a prebuilt corpus store.
    Store(&'a CorpusStore),
}

impl EvalSource<'_> {
    /// Number of programs.
    pub fn len(&self) -> usize {
        match self {
            EvalSource::Traced(t) => CorpusSource::len(*t),
            EvalSource::Store(s) => CorpusSource::len(*s),
        }
    }

    /// Whether the source holds no programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ground-truth labels, one per program.
    pub fn labels(&self) -> Vec<bool> {
        match self {
            EvalSource::Traced(t) => CorpusSource::labels(*t),
            EvalSource::Store(s) => CorpusSource::labels(*s),
        }
    }

    /// Stratum ids, one per program.
    pub fn strata(&self) -> Vec<u32> {
        match self {
            EvalSource::Traced(t) => CorpusSource::strata(*t),
            EvalSource::Store(s) => CorpusSource::strata(*s),
        }
    }

    /// The cache-key identity of the backing data (0 = live generation).
    pub fn identity(&self) -> u64 {
        match self {
            EvalSource::Traced(t) => CorpusSource::identity(*t),
            EvalSource::Store(s) => CorpusSource::identity(*s),
        }
    }

    /// Feature rows of one program. Panics on a source mismatch (spec not
    /// stored, index out of range) — evaluation loops are pure and such a
    /// mismatch is a caller bug, validated at CLI level before any loop
    /// runs.
    fn features_of(&self, program: usize, spec: &FeatureSpec) -> FeatureMatrix {
        let result = match self {
            EvalSource::Traced(t) => CorpusSource::features_of(*t, program, spec),
            EvalSource::Store(s) => CorpusSource::features_of(*s, program, spec),
        };
        result.unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Statistics of a [`FeatureCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe cache of projected feature matrices.
///
/// Multi-detector ensembles, RHMD pools, and sweep grids repeatedly project
/// the same `(program, spec, fault)` combination — every detector sharing a
/// spec, every algorithm trained at the same sweep point, every metric pass
/// over the same split. The cache computes each combination once — one flat
/// row-major [`FeatureMatrix`] per program, a single allocation — and hands
/// out `Arc`s to the immutable result.
///
/// Correctness: a hit returns exactly the matrix a miss would compute (both
/// call [`project_windows_into`] on the same inputs), so caching can never
/// change a result — only skip recomputation. The equivalence suite
/// asserts this against the uncached path.
#[derive(Debug)]
pub struct FeatureCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// One lock-striped slice of the cache (a flat matrix per key).
type Shard = Mutex<HashMap<CacheKey, Arc<FeatureMatrix>>>;

impl Default for FeatureCache {
    fn default() -> FeatureCache {
        FeatureCache::new()
    }
}

impl FeatureCache {
    /// An empty cache with the default shard count.
    pub fn new() -> FeatureCache {
        FeatureCache::with_shards(SHARDS)
    }

    /// An empty cache lock-striped into `shards` slices (clamped to at
    /// least 1). More shards reduce contention under wide pools; sharding
    /// never changes results, only which mutex a key lands on.
    pub fn with_shards(shards: usize) -> FeatureCache {
        FeatureCache {
            shards: (0..shards.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        // Program index spreads entries across however many shards exist.
        &self.shards[(key.program ^ key.spec_hash as usize) % self.shards.len()]
    }

    /// Projected feature matrix of program `program` under `spec` (one row
    /// per window), optionally through a fault model `(config, seed)` —
    /// computed on first use, served from the cache afterwards.
    pub fn vectors(
        &self,
        traced: &TracedCorpus,
        program: usize,
        spec: &FeatureSpec,
        fault: Option<(&FaultConfig, u64)>,
    ) -> Arc<FeatureMatrix> {
        self.vectors_source(&EvalSource::Traced(traced), program, spec, fault)
    }

    /// [`FeatureCache::vectors`] over any [`EvalSource`]. Store-backed hits
    /// and misses both return zero-copy views over the mapped shard; the
    /// source identity is part of the key, so a store and a generated
    /// corpus sharing one process never alias entries.
    ///
    /// # Panics
    ///
    /// When `fault` is given for a store source: fault injection corrupts
    /// raw subwindows, which a store does not retain. Degraded evaluations
    /// require a traced source.
    pub fn vectors_source(
        &self,
        source: &EvalSource<'_>,
        program: usize,
        spec: &FeatureSpec,
        fault: Option<(&FaultConfig, u64)>,
    ) -> Arc<FeatureMatrix> {
        let key = CacheKey {
            source: source.identity(),
            program,
            seed: fault.map_or(0, |(_, s)| s),
            period: spec.period,
            spec_hash: spec.stable_hash(),
            fault_hash: fault.map_or(0, |(c, _)| c.stable_hash()),
        };
        if let Some(found) = self.shard(&key).lock().expect("cache mutex poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::incr("cache.hits");
            return Arc::clone(found);
        }
        // Compute outside the lock: projections are pure, so two racing
        // computations of the same key produce identical matrices and either
        // may win the insert.
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::incr("cache.misses");
        let projected = match (source, fault) {
            (EvalSource::Traced(traced), Some((config, seed))) => {
                let subs = traced.subwindows(program);
                let mut flat = Vec::new();
                let model = FaultModel::new(*config, seed);
                let windows = project_windows_into(&apply_faults(subs, &model), spec, &mut flat);
                if spec.dims() == 0 {
                    // Flat storage cannot infer a row count at zero dims;
                    // keep the window count by pushing empty rows.
                    let mut m = FeatureMatrix::new(0);
                    for _ in 0..windows {
                        m.push_row(&[]);
                    }
                    m
                } else {
                    FeatureMatrix::from_flat(spec.dims(), flat)
                }
            }
            (EvalSource::Store(_), Some(_)) => panic!(
                "fault injection needs raw subwindows, which a corpus store does not \
                 retain; evaluate degraded runs from a traced corpus"
            ),
            // Clean stream: both sources produce bit-identical rows (a
            // store-backed matrix is a zero-copy view into the shard).
            (_, None) => source.features_of(program, spec),
        };
        let value = Arc::new(projected);
        let mut shard = self.shard(&key).lock().expect("cache mutex poisoned");
        Arc::clone(shard.entry(key).or_insert(value))
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache mutex poisoned").len())
                .sum(),
        }
    }

    /// Drops every entry (statistics keep accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache mutex poisoned").clear();
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus evaluator
// ---------------------------------------------------------------------------

/// Sensitivity / specificity / abstention over a degraded (fault-injected)
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DegradedQuality {
    /// Fraction of decided malware programs flagged.
    pub sensitivity: f64,
    /// Fraction of decided benign programs passed.
    pub specificity: f64,
    /// Fraction of programs abstained on.
    pub abstain_rate: f64,
}

/// Configures and builds an [`Evaluator`].
///
/// Obtained from [`Evaluator::builder`]; every knob has a sensible default
/// (single-threaded pool, 16 cache shards, no fault model, no watchdog, no
/// checkpoint, metrics off), so callers name only what they deviate on:
///
/// ```
/// use rhmd_bench::par::Evaluator;
/// # fn doc(traced: &rhmd_data::TracedCorpus) {
/// let engine = Evaluator::builder(traced, 0xabc).threads(4).build();
/// # }
/// ```
pub struct EvaluatorBuilder<'a> {
    source: EvalSource<'a>,
    run_seed: u64,
    pool: Pool,
    cache_shards: usize,
    fault: Option<FaultConfig>,
    watchdog: Option<WatchdogConfig>,
    recorder: Arc<dyn Recorder>,
    checkpoint: Option<Journal>,
}

impl<'a> EvaluatorBuilder<'a> {
    /// Sets the worker count (equivalent to `.pool(Pool::new(threads))`).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.pool = Pool::new(threads);
        self
    }

    /// Uses an explicit [`Pool`] (e.g. [`Pool::available`]).
    #[must_use]
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Lock-stripes the feature cache into `shards` slices (default 16).
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Attaches a counter fault model; [`Evaluator::fault_config`] hands it
    /// back to evaluation loops that inject degradation.
    #[must_use]
    pub fn fault(mut self, config: FaultConfig) -> Self {
        self.fault = Some(config);
        self
    }

    /// Supervises every evaluation loop with a per-unit deadline watchdog;
    /// stuck/lost units are flagged, requeued deterministically, and
    /// accumulated into [`Evaluator::run_report`]. Results stay
    /// bit-identical to an unsupervised run — the watchdog only recovers
    /// lost work, it never alters values.
    #[must_use]
    pub fn watchdog(mut self, config: WatchdogConfig) -> Self {
        self.watchdog = Some(config);
        self
    }

    /// Attaches a metrics [`Recorder`]. An enabled recorder switches the
    /// global metrics registry on at [`EvaluatorBuilder::build`] time;
    /// [`Evaluator::export_metrics`] then snapshots and exports through it.
    /// The default [`NoopRecorder`] leaves metrics off (and every
    /// instrumentation site on its near-zero disabled path).
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a checkpoint [`Journal`]; [`Evaluator::unit`] then skips
    /// work units the journal already holds and records fresh ones.
    #[must_use]
    pub fn checkpoint(mut self, journal: Journal) -> Self {
        self.checkpoint = Some(journal);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Evaluator<'a> {
        if self.recorder.is_enabled() {
            obs::set_enabled(true);
        }
        obs::set_gauge("pool.threads", self.pool.threads() as f64);
        Evaluator {
            source: self.source,
            pool: self.pool,
            cache: FeatureCache::with_shards(self.cache_shards),
            run_seed: self.run_seed,
            fault: self.fault,
            watchdog: self.watchdog,
            recorder: self.recorder,
            checkpoint: self.checkpoint.map(Mutex::new),
            report: Mutex::new(RunReport::default()),
        }
    }
}

/// The parallel corpus-evaluation engine: a [`Pool`], a [`FeatureCache`],
/// and a run seed from which every per-program seed is derived — plus the
/// optional run services every experiment shares (fault model, watchdog,
/// metrics recorder, checkpoint journal), all configured through
/// [`Evaluator::builder`].
///
/// Every loop is bit-exact with its serial counterpart at any thread count;
/// the equivalence suite (`tests/equivalence.rs`) enforces this for thread
/// counts {1, 2, 8} across seeds and fault configs.
pub struct Evaluator<'a> {
    source: EvalSource<'a>,
    pool: Pool,
    cache: FeatureCache,
    run_seed: u64,
    fault: Option<FaultConfig>,
    watchdog: Option<WatchdogConfig>,
    recorder: Arc<dyn Recorder>,
    checkpoint: Option<Mutex<Journal>>,
    report: Mutex<RunReport>,
}

impl fmt::Debug for Evaluator<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Evaluator")
            .field("pool", &self.pool)
            .field("run_seed", &self.run_seed)
            .field("fault", &self.fault)
            .field("watchdog", &self.watchdog)
            .field("checkpointed", &self.checkpoint.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a> Evaluator<'a> {
    /// Starts configuring an engine over `traced` with the given run seed.
    pub fn builder(traced: &'a TracedCorpus, run_seed: u64) -> EvaluatorBuilder<'a> {
        Evaluator::builder_from_source(EvalSource::Traced(traced), run_seed)
    }

    /// Starts configuring an engine over an opened corpus store: feature
    /// rows come back as zero-copy views over the mapped shards, and every
    /// clean-stream loop ([`Evaluator::vectors`],
    /// [`Evaluator::window_dataset`], [`Evaluator::quality_hmd`]) produces
    /// bit-identical results to a traced-corpus engine over the same
    /// underlying corpus. Subwindow-dependent loops
    /// ([`Evaluator::quality_rhmd`], [`Evaluator::degraded_quality`],
    /// [`Evaluator::vectors_faulted`]) need raw traces and panic in store
    /// mode.
    pub fn builder_from_store(store: &'a CorpusStore, run_seed: u64) -> EvaluatorBuilder<'a> {
        Evaluator::builder_from_source(EvalSource::Store(store), run_seed)
    }

    /// Starts configuring an engine over any [`EvalSource`].
    pub fn builder_from_source(
        source: EvalSource<'a>,
        run_seed: u64,
    ) -> EvaluatorBuilder<'a> {
        EvaluatorBuilder {
            source,
            run_seed,
            pool: Pool::new(1),
            cache_shards: SHARDS,
            fault: None,
            watchdog: None,
            recorder: Arc::new(NoopRecorder),
            checkpoint: None,
        }
    }

    /// The accumulated degraded-run report across every supervised loop run
    /// so far (empty and non-degraded when no watchdog is configured).
    pub fn run_report(&self) -> RunReport {
        self.report.lock().expect("report mutex poisoned").clone()
    }

    /// The fault model attached at build time, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.fault.as_ref()
    }

    /// The attached metrics recorder ([`NoopRecorder`] by default).
    pub fn recorder(&self) -> &dyn Recorder {
        &*self.recorder
    }

    /// Snapshots the global metrics registry and exports it through the
    /// attached recorder. A no-op (returning `Ok`) under [`NoopRecorder`].
    ///
    /// # Errors
    ///
    /// [`RhmdError::Io`] when the recorder cannot write its output.
    pub fn export_metrics(&self) -> Result<(), RhmdError> {
        if !self.recorder.is_enabled() {
            return Ok(());
        }
        self.recorder.export(&obs::snapshot()).map_err(|e| {
            RhmdError::io("metrics export".to_owned(), e.to_string())
        })
    }

    /// Runs (or skips) one checkpointed work unit: with a journal attached,
    /// already-recorded keys return their journaled value (`cached = true`)
    /// and fresh ones are computed and recorded; without one, `compute`
    /// simply runs (`cached = false`).
    ///
    /// # Errors
    ///
    /// See [`Journal::unit`].
    pub fn unit<T: serde::Serialize + serde::Deserialize>(
        &self,
        key: &str,
        compute: impl FnOnce() -> T,
    ) -> Result<(T, bool), RhmdError> {
        match &self.checkpoint {
            None => Ok((compute(), false)),
            Some(journal) => journal
                .lock()
                .expect("journal mutex poisoned")
                .unit(key, compute),
        }
    }

    /// The attached checkpoint directory, if any.
    pub fn checkpoint_dir(&self) -> Option<std::path::PathBuf> {
        self.checkpoint.as_ref().map(|journal| {
            journal.lock().expect("journal mutex poisoned").dir().to_path_buf()
        })
    }

    /// Forces pending checkpoint records to disk (no-op without a journal).
    ///
    /// # Errors
    ///
    /// See [`Journal::sync`].
    pub fn sync_checkpoint(&self) -> Result<(), RhmdError> {
        match &self.checkpoint {
            None => Ok(()),
            Some(journal) => journal.lock().expect("journal mutex poisoned").sync(),
        }
    }

    /// Completed units replayed from the checkpoint at open time (0 without
    /// a journal).
    pub fn resumed_units(&self) -> usize {
        self.checkpoint.as_ref().map_or(0, |journal| {
            journal.lock().expect("journal mutex poisoned").resumed_units()
        })
    }

    /// Dispatches a map through the watchdog when one is configured.
    ///
    /// A unit failing twice is deterministic (pool closures are pure), so
    /// it aborts the run via panic with the typed error's message — the
    /// same observable behavior `Pool::map` has for any worker panic, minus
    /// the recoverable cases the watchdog absorbs.
    fn run_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self.watchdog {
            None => self.pool.map(items, f),
            Some(config) => {
                let (out, report) = self
                    .pool
                    .map_watchdog(items, &config, f)
                    .unwrap_or_else(|e| panic!("{e}"));
                self.report
                    .lock()
                    .expect("report mutex poisoned")
                    .merge(&report);
                out
            }
        }
    }

    /// The corpus source under evaluation.
    pub fn source(&self) -> EvalSource<'a> {
        self.source
    }

    /// The traced corpus under evaluation.
    ///
    /// # Panics
    ///
    /// In store-backed mode (see [`Evaluator::builder_from_store`]): raw
    /// traces are not retained on disk. Callers that need subwindows must
    /// run from a traced corpus.
    pub fn traced(&self) -> &TracedCorpus {
        match self.source {
            EvalSource::Traced(t) => t,
            EvalSource::Store(s) => panic!(
                "this evaluation needs raw subwindows, which the corpus store at {} \
                 does not retain; rerun from live generation",
                s.dir().display()
            ),
        }
    }

    /// The worker pool.
    pub fn pool(&self) -> Pool {
        self.pool
    }

    /// The feature-vector cache.
    pub fn cache(&self) -> &FeatureCache {
        &self.cache
    }

    /// The run seed.
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// The derived seed of program `index` — stable across runs, thread
    /// counts, and evaluation order.
    pub fn program_seed(&self, index: usize) -> u64 {
        derive_seed(self.run_seed, index as u64)
    }

    /// Runs `f` over the given program indices on the pool; results come
    /// back in `indices` order. `f` receives `(program index, derived
    /// program seed)`.
    pub fn map_programs<R, F>(&self, indices: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, u64) -> R + Sync,
    {
        self.run_map(indices, |_, &i| f(i, self.program_seed(i)))
    }

    /// Cached projected feature matrix of one program (clean stream) —
    /// from the traced corpus or, in store mode, a zero-copy shard view.
    pub fn vectors(&self, program: usize, spec: &FeatureSpec) -> Arc<FeatureMatrix> {
        self.cache.vectors_source(&self.source, program, spec, None)
    }

    /// Cached projected feature matrix of one program through a fault model
    /// seeded with the program's derived seed.
    ///
    /// # Panics
    ///
    /// In store-backed mode — see [`Evaluator::traced`].
    pub fn vectors_faulted(
        &self,
        program: usize,
        spec: &FeatureSpec,
        config: &FaultConfig,
    ) -> Arc<FeatureMatrix> {
        self.cache
            .vectors(self.traced(), program, spec, Some((config, self.program_seed(program))))
    }

    /// Window-level dataset over `indices` — the parallel, cached
    /// equivalent of [`TracedCorpus::window_dataset`]: projections fan out
    /// over the pool (or come from the cache), assembly is sequential in
    /// `indices` order, so rows are bit-identical to the serial path.
    pub fn window_dataset(&self, indices: &[usize], spec: &FeatureSpec) -> Dataset {
        let labels = self.source.labels();
        let per_program = self.run_map(indices, |_, &i| self.vectors(i, spec));
        let mut data = Dataset::new(spec.dims());
        data.reserve_rows(per_program.iter().map(|m| m.len()).sum());
        for (&i, matrix) in indices.iter().zip(&per_program) {
            data.extend_from_flat(matrix.as_slice(), labels[i]);
        }
        data
    }

    /// Program-level detection quality of a deterministic [`Hmd`] over
    /// `indices`, evaluated on the pool. Matches
    /// [`rhmd_core::retrain::detection_quality`] exactly — an `Hmd` holds no
    /// evaluation state, so order cannot matter. Window projections come
    /// from the cache ([`Hmd::decide_windows`] is precisely "predict each
    /// row of the projected matrix"), so detectors sharing a spec classify
    /// without re-projecting, and each program's windows score through one
    /// [`rhmd_ml::model::Classifier::score_batch`] sweep.
    pub fn quality_hmd(&self, hmd: &Hmd, indices: &[usize]) -> DetectionQuality {
        let threshold = hmd.model().threshold();
        let verdicts = self.run_map(indices, |_, &i| {
            let matrix = self.vectors(i, hmd.spec());
            let mut scores = vec![0.0; matrix.len()];
            hmd.model().score_batch(&matrix, &mut scores);
            let decisions: Vec<bool> = scores.into_iter().map(|s| s >= threshold).collect();
            rhmd_core::hmd::ProgramVerdict::from_decisions(&decisions).is_malware()
        });
        self.tally(indices, &verdicts)
    }

    /// Program-level detection quality of an RHMD pool over `indices`,
    /// using per-program switching streams seeded from the *detector's*
    /// construction seed mixed with each program id — order-independent by
    /// construction, unlike the shared-RNG serial walk.
    pub fn quality_rhmd(&self, rhmd: &ResilientHmd, indices: &[usize]) -> DetectionQuality {
        let traced = self.traced();
        let verdicts = self.run_map(indices, |_, &i| {
            let mut rng = StreamRng::from_seed(derive_seed(rhmd.seed(), i as u64));
            let stream = Detector::label_stream(rhmd, traced.subwindows(i), &mut rng);
            rhmd_core::hmd::ProgramVerdict::from_decisions(&stream).is_malware()
        });
        self.tally(indices, &verdicts)
    }

    fn tally(&self, indices: &[usize], verdicts: &[bool]) -> DetectionQuality {
        let labels = self.source.labels();
        let (mut tp, mut mal, mut tn, mut ben) = (0usize, 0usize, 0usize, 0usize);
        for (&i, &flagged) in indices.iter().zip(verdicts) {
            if labels[i] {
                mal += 1;
                if flagged {
                    tp += 1;
                }
            } else {
                ben += 1;
                if !flagged {
                    tn += 1;
                }
            }
        }
        DetectionQuality {
            sensitivity_unmodified: if mal == 0 { 0.0 } else { tp as f64 / mal as f64 },
            specificity: if ben == 0 { 0.0 } else { tn as f64 / ben as f64 },
        }
    }

    /// Degraded (fault-injected) program-level quality: `quorum_of`
    /// receives each program's index and its fault-corrupted subwindows and
    /// returns a quorum verdict; `policy` then decides or abstains at
    /// `min_coverage`. `seed_of` derives each program's fault seed —
    /// callers preserving historical sweeps pass their legacy derivation,
    /// new callers pass [`Evaluator::program_seed`].
    pub fn degraded_quality<Q, S>(
        &self,
        indices: &[usize],
        config: FaultConfig,
        policy: &VerdictPolicy,
        min_coverage: f64,
        seed_of: S,
        quorum_of: Q,
    ) -> DegradedQuality
    where
        Q: Fn(usize, &[RawWindow]) -> QuorumVerdict + Sync,
        S: Fn(usize) -> u64 + Sync,
    {
        let traced = self.traced();
        let labels = self.source.labels();
        let judged: Vec<DegradedVerdict> = self.run_map(indices, |_, &i| {
            let model = FaultModel::new(config, seed_of(i));
            let subs = apply_faults(traced.subwindows(i), &model);
            policy.judge_quorum(&quorum_of(i, &subs), min_coverage)
        });
        let (mut tp, mut malware, mut tn, mut benign, mut abstained) =
            (0u32, 0u32, 0u32, 0u32, 0u32);
        for (&i, verdict) in indices.iter().zip(&judged) {
            match verdict {
                DegradedVerdict::Abstained => abstained += 1,
                DegradedVerdict::Decided(flag) => {
                    if labels[i] {
                        malware += 1;
                        tp += u32::from(*flag);
                    } else {
                        benign += 1;
                        tn += u32::from(!*flag);
                    }
                }
            }
        }
        DegradedQuality {
            sensitivity: f64::from(tp) / f64::from(malware.max(1)),
            specificity: f64::from(tn) / f64::from(benign.max(1)),
            abstain_rate: f64::from(abstained) / indices.len().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig};
    use rhmd_features::vector::FeatureKind;
    use rhmd_uarch::CoreConfig;

    fn traced() -> TracedCorpus {
        let cfg = CorpusConfig::tiny();
        TracedCorpus::trace(Corpus::build(&cfg), cfg.limits(), CoreConfig::default())
    }

    #[test]
    fn pool_map_matches_serial_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 17).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = Pool::new(threads).map(&items, |_, &x| x.wrapping_mul(x) ^ 17);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn pool_map_passes_true_indices() {
        let items = vec!["a"; 100];
        let indices = Pool::new(4).map(&items, |i, _| i);
        assert_eq!(indices, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pool_handles_tiny_inputs() {
        assert_eq!(Pool::new(8).map::<u8, u8, _>(&[], |_, &x| x), Vec::<u8>::new());
        assert_eq!(Pool::new(8).map(&[3u8], |_, &x| x + 1), vec![4]);
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn steal_rebalances_skewed_work() {
        // Front-loaded cost: worker 0's static block is ~100x the others'.
        // The test only asserts correctness — order preserved despite
        // stealing — since wall-clock is not observable deterministically.
        let items: Vec<u64> = (0..64).collect();
        let out = Pool::new(4).map(&items, |i, &x| {
            if i < 16 {
                // Busy work standing in for an expensive item.
                (0..20_000u64).fold(x, |a, b| a ^ b.wrapping_mul(31))
            } else {
                x
            }
        });
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                if i < 16 {
                    (0..20_000u64).fold(x, |a, b| a ^ b.wrapping_mul(31))
                } else {
                    x
                }
            })
            .collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn watchdog_matches_plain_map_when_clean() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 17).collect();
        for threads in [1, 4] {
            let (out, report) = Pool::new(threads)
                .map_watchdog(&items, &WatchdogConfig::default(), |_, &x| {
                    x.wrapping_mul(x) ^ 17
                })
                .unwrap();
            assert_eq!(out, serial, "threads={threads}");
            assert!(!report.degraded(), "{report:?}");
            assert_eq!(report.items, 257);
        }
    }

    #[test]
    fn watchdog_requeues_panicked_units_deterministically() {
        use std::sync::atomic::AtomicBool;
        let items: Vec<u64> = (0..40).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        // Panic on the *first* attempt of units 5 and 17 only, standing in
        // for a transiently lost worker; the requeue recomputes them.
        let first: Vec<AtomicBool> = (0..40).map(|_| AtomicBool::new(true)).collect();
        let (out, report) = Pool::new(4)
            .map_watchdog(&items, &WatchdogConfig::default(), |i, &x| {
                if (i == 5 || i == 17) && first[i].swap(false, Ordering::SeqCst) {
                    panic!("simulated lost unit {i}");
                }
                x * 3
            })
            .unwrap();
        assert_eq!(out, serial);
        assert_eq!(report.requeued, vec![5, 17], "requeue order must be ascending");
        assert!(report.degraded());
    }

    #[test]
    fn watchdog_reports_deterministic_double_failure() {
        let items: Vec<u64> = (0..8).collect();
        let err = Pool::new(2)
            .map_watchdog(&items, &WatchdogConfig::default(), |i, &x| {
                assert!(i != 3, "unit 3 always fails");
                x
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("work unit 3") && msg.contains("twice"), "{msg}");
    }

    #[test]
    fn watchdog_flags_overdue_units() {
        let items = vec![0u8, 1];
        let (out, report) = Pool::new(2)
            .map_watchdog(
                &items,
                &WatchdogConfig::new(std::time::Duration::from_millis(5)),
                |i, &x| {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(120));
                    }
                    x + 1
                },
            )
            .unwrap();
        assert_eq!(out, vec![1, 2], "slow units still complete correctly");
        assert!(report.overdue.contains(&0), "{report:?}");
        assert!(report.requeued.is_empty(), "completed units are not requeued");
    }

    #[test]
    fn evaluator_watchdog_keeps_results_and_accumulates_report() {
        let t = traced();
        let spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let indices: Vec<usize> = (0..t.corpus().len()).collect();
        let plain = Evaluator::builder(&t, 0xabc).threads(4).build();
        let supervised = Evaluator::builder(&t, 0xabc)
            .threads(4)
            .watchdog(WatchdogConfig::default())
            .build();
        let a = plain.window_dataset(&indices, &spec);
        let b = supervised.window_dataset(&indices, &spec);
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.labels(), b.labels());
        let report = supervised.run_report();
        assert_eq!(report.items, indices.len() as u64);
        assert!(!report.degraded());
        assert!(!plain.run_report().degraded());
    }

    #[test]
    fn cache_hits_return_identical_vectors() {
        let t = traced();
        let cache = FeatureCache::new();
        let spec = FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]);
        let first = cache.vectors(&t, 0, &spec, None);
        let again = cache.vectors(&t, 0, &spec, None);
        assert!(Arc::ptr_eq(&first, &again), "second lookup must hit");
        let direct = rhmd_features::pipeline::project_windows(t.subwindows(0), &spec);
        assert_eq!(first.len(), direct.len());
        assert!(first.iter().eq(direct.iter().map(|v| v.as_slice())));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_keys_separate_fault_configs_and_seeds() {
        let t = traced();
        let cache = FeatureCache::new();
        let spec = FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]);
        let clean = cache.vectors(&t, 0, &spec, None);
        let noisy = cache.vectors(&t, 0, &spec, Some((&FaultConfig::noise(0.2), 7)));
        let noisy_other_seed = cache.vectors(&t, 0, &spec, Some((&FaultConfig::noise(0.2), 8)));
        assert_ne!(*clean, *noisy);
        assert_ne!(*noisy, *noisy_other_seed);
        assert_eq!(cache.stats().entries, 3);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn evaluator_dataset_matches_traced_corpus() {
        let t = traced();
        let spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let indices: Vec<usize> = (0..t.corpus().len()).step_by(3).collect();
        let serial = t.window_dataset(&indices, &spec);
        for threads in [1, 4] {
            let eval = Evaluator::builder(&t, 0xabc).threads(threads).build();
            let par = eval.window_dataset(&indices, &spec);
            assert_eq!(par.len(), serial.len());
            assert_eq!(par.rows(), serial.rows(), "threads={threads}");
            assert_eq!(par.labels(), serial.labels());
        }
    }

    #[test]
    fn program_seeds_are_order_free_and_distinct() {
        let t = traced();
        let eval = Evaluator::builder(&t, 99).threads(2).build();
        let a: Vec<u64> = (0..10).map(|i| eval.program_seed(i)).collect();
        let b: Vec<u64> = (0..10).rev().map(|i| eval.program_seed(i)).collect();
        assert_eq!(a, b.into_iter().rev().collect::<Vec<_>>());
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }
}
