//! Figs 11, 13 — retraining on evasive malware.

use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::evasion::{plan_evasion, EvasionConfig, Strategy};
use rhmd_core::hmd::Hmd;
use rhmd_core::retrain::{
    evade_retrain_game, retrain_sweep, trace_evasive_variants, GameConfig,
};
use rhmd_core::reveng::reverse_engineer;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::inject::Placement;

/// Figs 11a/11b: retraining LR and NN with a growing share of evasive
/// malware in the training set.
pub fn fig11(exp: &Experiment) -> Vec<Table> {
    let spec = exp.spec(FeatureKind::Instructions, 10_000);

    // The evasive malware is built against the *original* LR detector via
    // its reverse-engineered surrogate, with the weighted strategy (paper
    // §5-§6).
    let mut original = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    );
    let surrogate = reverse_engineer(
        &mut original,
        &exp.traced,
        &exp.splits.attacker_train,
        spec.clone(),
        Algorithm::Lr,
        &TrainerConfig::with_seed(0x11a),
    );
    let plan = plan_evasion(
        &surrogate,
        &EvasionConfig {
            strategy: Strategy::Weighted,
            count: 2,
            placement: Placement::EveryBlock,
            seed: 0x11b,
        },
    );
    let evasive_train = trace_evasive_variants(&exp.traced, &exp.train_malware(), &plan);
    let evasive_test = trace_evasive_variants(&exp.traced, &exp.test_malware(), &plan);

    let fractions = [0.0, 0.05, 0.07, 0.10, 0.14, 0.17, 0.20, 0.22, 0.25];
    [(Algorithm::Lr, "Fig 11a"), (Algorithm::Nn, "Fig 11b")]
        .into_iter()
        .map(|(algo, id)| {
            let mut table = Table::new(
                id,
                format!(
                    "retraining {} with evasive malware (paper: LR trades unmodified \
                     sensitivity for evasive sensitivity; NN gains both)",
                    algo
                ),
                &[
                    "evasive fraction",
                    "sens (evasive)",
                    "sens (unmodified)",
                    "specificity",
                ],
            );
            let points = retrain_sweep(
                algo,
                &spec,
                &exp.trainer,
                &exp.traced,
                &exp.splits.victim_train,
                &exp.splits.attacker_test,
                &evasive_train,
                &evasive_test,
                &fractions,
            );
            for p in points {
                table.push_row(vec![
                    Table::pct(p.fraction),
                    Table::pct(p.sensitivity_evasive),
                    Table::pct(p.sensitivity_unmodified),
                    Table::pct(p.specificity),
                ]);
            }
            table
        })
        .collect()
}

/// Fig 13: the NN evade–retrain game over seven generations.
pub fn fig13(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Fig 13",
        "NN detector across evade-retrain generations (paper: previous-gen evasive caught, \
         current-gen evades, breakdown by gen ~7)",
        &[
            "generation",
            "specificity",
            "sens (unmodified)",
            "sens (current evasive)",
            "sens (previous evasive)",
        ],
    );
    let config = GameConfig {
        algorithm: Algorithm::Nn,
        spec: exp.spec(FeatureKind::Instructions, 10_000),
        surrogate: Algorithm::Nn,
        payload: 2,
        generations: 7,
        trainer: exp.trainer,
        seed: 0x13,
    };
    let records = evade_retrain_game(
        &config,
        &exp.traced,
        &exp.splits.victim_train,
        &exp.splits.attacker_train,
        &exp.splits.attacker_test,
    );
    for r in records {
        table.push_row(vec![
            r.generation.to_string(),
            Table::pct(r.specificity),
            Table::pct(r.sensitivity_unmodified),
            Table::pct(r.sensitivity_current_evasive),
            Table::pct(r.sensitivity_previous_evasive),
        ]);
    }
    table
}
