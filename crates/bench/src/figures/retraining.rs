//! Figs 11, 13 — retraining on evasive malware.
//!
//! Both figures are long multi-stage campaigns, so both are checkpointable:
//! set `RHMD_CKPT=<dir>` and each completed sweep point (Fig 11) or played
//! generation (Fig 13) is journaled durably; a rerun after a crash skips
//! finished work and produces bit-identical tables.

use crate::ckpt::{journal_with, unit_or_compute, CkptOptions};
use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::evasion::{plan_evasion, EvasionConfig, Strategy};
use rhmd_core::hmd::Hmd;
use rhmd_core::retrain::{
    evade_retrain_game_resumable, retrain_point, trace_evasive_variants, GameConfig, GameState,
};
use rhmd_core::reveng::reverse_engineer;
use rhmd_core::RhmdError;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::inject::Placement;

/// The corpus fingerprint experiments put in their checkpoint manifests.
fn corpus_summary(exp: &Experiment) -> String {
    format!(
        "programs={};seed={}",
        exp.config.total_programs(),
        exp.config.seed
    )
}

/// Figs 11a/11b: retraining LR and NN with a growing share of evasive
/// malware in the training set.
///
/// Checkpointing comes from `ckpt` (the binary's `--checkpoint`/`--resume`
/// flags) when given, else from the `RHMD_CKPT` env-var fallback.
///
/// # Errors
///
/// Checkpoint I/O failures when checkpointing is on (see [`journal_with`]).
pub fn fig11(exp: &Experiment, ckpt: Option<&CkptOptions>) -> Result<Vec<Table>, RhmdError> {
    let spec = exp.spec(FeatureKind::Instructions, 10_000);
    let mut journal = journal_with(ckpt, "fig11", &corpus_summary(exp))?;

    // The evasive malware is built against the *original* LR detector via
    // its reverse-engineered surrogate, with the weighted strategy (paper
    // §5-§6).
    let mut original = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    );
    let surrogate = reverse_engineer(
        &mut original,
        &exp.traced,
        &exp.splits.attacker_train,
        spec.clone(),
        Algorithm::Lr,
        &TrainerConfig::with_seed(0x11a),
    );
    let plan = plan_evasion(
        &surrogate,
        &EvasionConfig {
            strategy: Strategy::Weighted,
            count: 2,
            placement: Placement::EveryBlock,
            seed: 0x11b,
        },
    );
    let evasive_train = trace_evasive_variants(&exp.traced, &exp.train_malware(), &plan);
    let evasive_test = trace_evasive_variants(&exp.traced, &exp.test_malware(), &plan);

    let fractions = [0.0, 0.05, 0.07, 0.10, 0.14, 0.17, 0.20, 0.22, 0.25];
    let mut tables = Vec::new();
    for (algo, id) in [(Algorithm::Lr, "Fig 11a"), (Algorithm::Nn, "Fig 11b")] {
        let mut table = Table::new(
            id,
            format!(
                "retraining {} with evasive malware (paper: LR trades unmodified \
                 sensitivity for evasive sensitivity; NN gains both)",
                algo
            ),
            &[
                "evasive fraction",
                "sens (evasive)",
                "sens (unmodified)",
                "specificity",
            ],
        );
        for &fraction in &fractions {
            // Each sweep point is one independent, journaled work unit.
            let p = unit_or_compute(&mut journal, &format!("{algo}/{fraction}"), || {
                retrain_point(
                    algo,
                    &spec,
                    &exp.trainer,
                    &exp.traced,
                    &exp.splits.victim_train,
                    &exp.splits.attacker_test,
                    &evasive_train,
                    &evasive_test,
                    fraction,
                )
            })?;
            table.push_row(vec![
                Table::pct(p.fraction),
                Table::pct(p.sensitivity_evasive),
                Table::pct(p.sensitivity_unmodified),
                Table::pct(p.specificity),
            ]);
        }
        tables.push(table);
    }
    if let Some(journal) = journal.as_mut() {
        journal.sync()?;
    }
    Ok(tables)
}

/// Fig 13: the NN evade–retrain game over seven generations.
///
/// Checkpointing comes from `ckpt` (the binary's `--checkpoint`/`--resume`
/// flags) when given, else from the `RHMD_CKPT` env-var fallback.
///
/// # Errors
///
/// Checkpoint I/O failures when checkpointing is on, and
/// [`RhmdError::Config`] when the saved game state belongs to a different
/// configuration.
pub fn fig13(exp: &Experiment, ckpt: Option<&CkptOptions>) -> Result<Table, RhmdError> {
    let mut table = Table::new(
        "Fig 13",
        "NN detector across evade-retrain generations (paper: previous-gen evasive caught, \
         current-gen evades, breakdown by gen ~7)",
        &[
            "generation",
            "specificity",
            "sens (unmodified)",
            "sens (current evasive)",
            "sens (previous evasive)",
        ],
    );
    let config = GameConfig {
        algorithm: Algorithm::Nn,
        spec: exp.spec(FeatureKind::Instructions, 10_000),
        surrogate: Algorithm::Nn,
        payload: 2,
        generations: 7,
        trainer: exp.trainer,
        seed: 0x13,
    };
    let summary = format!(
        "{};game={:016x}",
        corpus_summary(exp),
        config.stable_hash()
    );
    let journal = journal_with(ckpt, "fig13", &summary)?;
    let resume = match &journal {
        Some(journal) => {
            let state = journal.load_state::<GameState>()?;
            if let Some(state) = &state {
                eprintln!(
                    "[fig13] resuming after generation {}",
                    state.completed_generations
                );
            }
            state
        }
        None => None,
    };
    let records = evade_retrain_game_resumable(
        &config,
        &exp.traced,
        &exp.splits.victim_train,
        &exp.splits.attacker_train,
        &exp.splits.attacker_test,
        resume,
        &mut |state| match &journal {
            Some(journal) => journal.save_state(state),
            None => Ok(()),
        },
    )?;
    for r in records {
        table.push_row(vec![
            r.generation.to_string(),
            Table::pct(r.specificity),
            Table::pct(r.sensitivity_unmodified),
            Table::pct(r.sensitivity_current_evasive),
            Table::pct(r.sensitivity_previous_evasive),
        ]);
    }
    Ok(table)
}
