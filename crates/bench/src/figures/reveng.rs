//! Figs 3–4 — reverse-engineering the victim's configuration and model.

use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::hmd::Hmd;
use rhmd_core::reveng::attack;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};

fn victim(exp: &Experiment, algorithm: Algorithm) -> Hmd {
    Hmd::train(
        algorithm,
        exp.spec(FeatureKind::Instructions, 10_000),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    )
}

/// Fig 3a: agreement of LR/DT/SVM surrogates as the attacker sweeps its
/// collection period; the victim's true period (10K) should maximize it.
pub fn fig03_period(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Fig 3a",
        "reverse-engineering accuracy vs attacker collection period (victim: LR Instructions@10k)",
        &["period", "LR", "DT", "SVM"],
    );
    let mut victim_hmd = victim(exp, Algorithm::Lr);
    for period in [5_000u32, 8_000, 9_000, 10_000, 11_000, 12_000, 15_000, 19_000] {
        let mut cells = vec![format!("{}k", period / 1000)];
        for algorithm in Algorithm::SURROGATES {
            let spec = exp.spec(FeatureKind::Instructions, period);
            let (_, report) = attack(
                &mut victim_hmd,
                &exp.traced,
                &exp.splits.attacker_train,
                &exp.splits.attacker_test,
                spec,
                algorithm,
                &TrainerConfig::with_seed(0x3a ^ u64::from(period)),
            );
            cells.push(Table::pct(report.agreement));
        }
        table.push_row(cells);
    }
    table
}

/// Fig 3b: agreement of LR/DT/SVM surrogates as the attacker sweeps its
/// feature hypothesis; the victim's true feature (Instructions) should
/// maximize it.
pub fn fig03_feature(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Fig 3b",
        "reverse-engineering accuracy vs attacker feature hypothesis (victim: LR Instructions@10k)",
        &["feature", "LR", "DT", "SVM"],
    );
    let mut victim_hmd = victim(exp, Algorithm::Lr);
    for kind in [
        FeatureKind::Memory,
        FeatureKind::Instructions,
        FeatureKind::Architectural,
    ] {
        let mut cells = vec![kind.to_string()];
        for algorithm in Algorithm::SURROGATES {
            let (_, report) = attack(
                &mut victim_hmd,
                &exp.traced,
                &exp.splits.attacker_train,
                &exp.splits.attacker_test,
                exp.spec(kind, 10_000),
                algorithm,
                &TrainerConfig::with_seed(0x3b),
            );
            cells.push(Table::pct(report.agreement));
        }
        table.push_row(cells);
    }
    table
}

/// Figs 4a/4b: agreement of LR/DT/NN surrogates against LR and NN victims
/// across all three features (correct feature + period assumed known).
pub fn fig04(exp: &Experiment) -> Vec<Table> {
    [(Algorithm::Lr, "Fig 4a"), (Algorithm::Nn, "Fig 4b")]
        .into_iter()
        .map(|(victim_algo, id)| {
            let mut table = Table::new(
                id,
                format!(
                    "reverse-engineering a {} victim (paper: near-perfect for LR victims; \
                     LR surrogates struggle on NN victims)",
                    victim_algo
                ),
                &["feature", "LR", "DT", "NN"],
            );
            for kind in FeatureKind::ALL {
                let spec = exp.spec(kind, 10_000);
                let mut victim_hmd = Hmd::train(
                    victim_algo,
                    spec.clone(),
                    &exp.trainer,
                    &exp.traced,
                    &exp.splits.victim_train,
                );
                let mut cells = vec![kind.to_string()];
                for surrogate in [Algorithm::Lr, Algorithm::Dt, Algorithm::Nn] {
                    let (_, report) = attack(
                        &mut victim_hmd,
                        &exp.traced,
                        &exp.splits.attacker_train,
                        &exp.splits.attacker_test,
                        spec.clone(),
                        surrogate,
                        &TrainerConfig::with_seed(0x4a),
                    );
                    cells.push(Table::pct(report.agreement));
                }
                table.push_row(cells);
            }
            table
        })
        .collect()
}
