//! Fig 2 — performance of the individual baseline detectors.

use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::hmd::Hmd;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::metrics::{auc, best_accuracy_threshold};
use rhmd_ml::model::score_all;
use rhmd_ml::trainer::Algorithm;

/// Fig 2: AUC and best accuracy of LR and NN detectors over the three
/// feature vectors at a 10K-instruction period.
pub fn fig02(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Fig 2",
        "baseline detector AUC / accuracy (paper: ~0.85-0.95, NN comparable to LR)",
        &["feature", "AUC (LR)", "acc (LR)", "AUC (NN)", "acc (NN)"],
    );
    for kind in FeatureKind::ALL {
        let spec = exp.spec(kind, 10_000);
        let test = exp.traced.window_dataset(&exp.splits.attacker_test, &spec);
        let mut cells = vec![kind.to_string()];
        for algo in [Algorithm::Lr, Algorithm::Nn] {
            let hmd = Hmd::train(
                algo,
                spec.clone(),
                &exp.trainer,
                &exp.traced,
                &exp.splits.victim_train,
            );
            let scores = score_all(hmd.model(), &test);
            let roc_auc = auc(&scores, test.labels());
            let (_, acc) = best_accuracy_threshold(&scores, test.labels());
            cells.push(Table::num(roc_auc));
            cells.push(Table::pct(acc));
        }
        // Reorder to match header: AUC(LR) acc(LR) AUC(NN) acc(NN).
        table.push_row(cells);
    }
    table
}
