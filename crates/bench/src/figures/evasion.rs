//! Figs 6, 8, 9, 10 — instruction-injection evasion and its overhead.

use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::evasion::{
    evade_corpus, measure_overhead, plan_evasion, plan_evasion_at, EvasionConfig, Strategy,
};
use rhmd_core::hmd::Hmd;

use rhmd_features::vector::FeatureKind;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::inject::Placement;

fn train_victim(exp: &Experiment, algorithm: Algorithm) -> Hmd {
    Hmd::train(
        algorithm,
        exp.spec(FeatureKind::Instructions, 10_000),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    )
}

fn surrogate_of(exp: &Experiment, victim: &mut Hmd, algorithm: Algorithm) -> Hmd {
    let spec = victim.spec().clone();
    rhmd_core::reveng::reverse_engineer_validated(
        victim,
        &exp.traced,
        &exp.splits.attacker_train,
        spec,
        algorithm,
        &TrainerConfig::with_seed(0x5e),
        3,
    )
}

/// Mean malware feature vector over the attacker's own training programs —
/// the linearization point for gradient-based payload selection against
/// non-linear surrogates.
fn malware_centroid(exp: &Experiment, spec: &rhmd_features::vector::FeatureSpec) -> Vec<f64> {
    let labels = exp.traced.corpus().labels();
    let mut sum = vec![0.0; spec.dims()];
    let mut n = 0usize;
    for &i in exp.splits.attacker_train.iter().filter(|&&i| labels[i]) {
        for v in exp.traced.program_vectors(i, spec) {
            for (s, x) in sum.iter_mut().zip(&v) {
                *s += x;
            }
            n += 1;
        }
    }
    for s in &mut sum {
        *s /= n.max(1) as f64;
    }
    sum
}

/// Detection rate of initially-detected malware after injecting a plan
/// derived from `model` with the given strategy/count/placement.
fn detection_after(
    exp: &Experiment,
    victim: &mut Hmd,
    model: &Hmd,
    strategy: Strategy,
    count: usize,
    placement: Placement,
    reference: Option<&[f64]>,
) -> f64 {
    if count == 0 {
        return 1.0;
    }
    let plan = plan_evasion_at(
        model,
        &EvasionConfig {
            strategy,
            count,
            placement,
            seed: 0xf16 ^ count as u64,
        },
        reference,
    );
    let malware = exp.test_malware();
    evade_corpus(victim, &exp.traced, &malware, &plan).detection_rate()
}

/// Fig 6: random instruction injection does not evade.
pub fn fig06(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Fig 6",
        "detection with random instruction injection (paper: stays ~100%)",
        &["injected", "basic block", "function"],
    );
    let mut victim = train_victim(exp, Algorithm::Lr);
    let model = victim.clone();
    for count in [0usize, 1, 2, 3] {
        table.push_row(vec![
            count.to_string(),
            Table::pct(detection_after(
                exp,
                &mut victim,
                &model,
                Strategy::Random,
                count,
                Placement::EveryBlock,
                None,
            )),
            Table::pct(detection_after(
                exp,
                &mut victim,
                &model,
                Strategy::Random,
                count,
                Placement::BeforeReturn,
                None,
            )),
        ]);
    }
    table
}

/// Figs 8a/8b: least-weight injection against LR and NN victims, with plans
/// derived from the victim itself (white box) and from the
/// reverse-engineered surrogate.
pub fn fig08(exp: &Experiment) -> Vec<Table> {
    [(Algorithm::Lr, "Fig 8a"), (Algorithm::Nn, "Fig 8b")]
        .into_iter()
        .map(|(algo, id)| {
            let mut table = Table::new(
                id,
                format!(
                    "detection with least-weight injection, {} victim \
                     (paper: LR evaded with 1-2 instrs; NN needs ~2 for 80% evasion)",
                    algo
                ),
                &[
                    "injected",
                    "bb (victim)",
                    "fn (victim)",
                    "bb (reversed)",
                    "fn (reversed)",
                ],
            );
            let mut victim = train_victim(exp, algo);
            let white_box = victim.clone();
            // The surrogate family matches the victim's capability class, as
            // in the paper (NN surrogates can mimic NN victims).
            let surrogate_algo = if algo == Algorithm::Lr {
                Algorithm::Lr
            } else {
                Algorithm::Nn
            };
            let surrogate = surrogate_of(exp, &mut victim, surrogate_algo);
            let centroid = malware_centroid(exp, surrogate.spec());
            for count in [0usize, 1, 2, 3, 5, 10, 15] {
                let mut cells = vec![count.to_string()];
                for (model, placement) in [
                    (&white_box, Placement::EveryBlock),
                    (&white_box, Placement::BeforeReturn),
                    (&surrogate, Placement::EveryBlock),
                    (&surrogate, Placement::BeforeReturn),
                ] {
                    cells.push(Table::pct(detection_after(
                        exp,
                        &mut victim,
                        model,
                        Strategy::LeastWeight,
                        count,
                        placement,
                        Some(&centroid),
                    )));
                }
                table.push_row(cells);
            }
            table
        })
        .collect()
}

/// Fig 9: static and dynamic overhead of injection (paper: ~10% at one
/// instruction per block).
pub fn fig09(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Fig 9",
        "injection overhead (paper: ~10% static+dynamic at 1 instr/block, function level cheaper)",
        &[
            "injected",
            "static (bb)",
            "dynamic (bb)",
            "time (bb)",
            "static (fn)",
            "dynamic (fn)",
            "time (fn)",
        ],
    );
    let mut victim = train_victim(exp, Algorithm::Lr);
    let surrogate = surrogate_of(exp, &mut victim, Algorithm::Lr);
    let malware = exp.test_malware();
    let sample: Vec<usize> = malware.iter().copied().take(24).collect();
    for count in [1usize, 2, 5, 15] {
        let mut cells = vec![count.to_string()];
        for placement in [Placement::EveryBlock, Placement::BeforeReturn] {
            let plan = plan_evasion(
                &surrogate,
                &EvasionConfig {
                    strategy: Strategy::LeastWeight,
                    count,
                    placement,
                    seed: 9,
                },
            );
            let (mut st, mut dy, mut tm) = (0.0, 0.0, 0.0);
            for &i in &sample {
                let o = measure_overhead(
                    exp.traced.corpus().program(i),
                    &plan,
                    exp.traced.limits(),
                );
                st += o.static_overhead;
                dy += o.dynamic_overhead;
                tm += o.time_overhead;
            }
            cells.push(Table::pct(st / sample.len() as f64));
            cells.push(Table::pct(dy / sample.len() as f64));
            cells.push(Table::pct(tm / sample.len() as f64));
        }
        table.push_row(cells);
    }
    table
}

/// Fig 10: weighted injection against the LR victim — evasion via the
/// surrogate nearly matches evasion via the victim's own weights.
pub fn fig10(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Fig 10",
        "detection with weighted injection, LR victim (paper: reversed ≈ victim)",
        &[
            "injected",
            "bb (victim)",
            "fn (victim)",
            "bb (reversed)",
            "fn (reversed)",
        ],
    );
    let mut victim = train_victim(exp, Algorithm::Lr);
    let white_box = victim.clone();
    let surrogate = surrogate_of(exp, &mut victim, Algorithm::Lr);
    for count in [0usize, 1, 2, 3, 5, 10, 15] {
        let mut cells = vec![count.to_string()];
        for (model, placement) in [
            (&white_box, Placement::EveryBlock),
            (&white_box, Placement::BeforeReturn),
            (&surrogate, Placement::EveryBlock),
            (&surrogate, Placement::BeforeReturn),
        ] {
            cells.push(Table::pct(detection_after(
                exp,
                &mut victim,
                model,
                Strategy::Weighted,
                count,
                placement,
                None,
            )));
        }
        table.push_row(cells);
    }
    table
}
