//! Figs 14–16 — reverse-engineering and evading RHMDs.

use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::evasion::{evade_corpus, plan_evasion, EvasionConfig};
use rhmd_core::reveng::attack;
use rhmd_core::retrain::detection_quality;
use rhmd_core::rhmd::{build_pool, build_stochastic_pool, pool_specs, ResilientHmd};
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::trainer::{Algorithm, TrainerConfig};

/// The four pool shapes the paper evaluates.
pub fn pool(exp: &Experiment, kinds: &[FeatureKind], periods: &[u32]) -> ResilientHmd {
    build_pool(
        Algorithm::Lr,
        pool_specs(kinds, periods, &exp.opcodes),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
        0x5eed,
    )
}

const TWO: [FeatureKind; 2] = [FeatureKind::Memory, FeatureKind::Instructions];
const THREE: [FeatureKind; 3] = [
    FeatureKind::Memory,
    FeatureKind::Instructions,
    FeatureKind::Architectural,
];

/// One RHMD reverse-engineering table: attacker sweeps feature hypotheses
/// (each base feature plus their union) × surrogate algorithms.
fn reveng_table(
    exp: &Experiment,
    id: &str,
    caption: &str,
    rhmd: &mut ResilientHmd,
    kinds: &[FeatureKind],
) -> Table {
    let mut table = Table::new(id, caption, &["feature", "LR", "DT", "SVM"]);
    let mut hypotheses: Vec<(String, FeatureSpec)> = kinds
        .iter()
        .map(|&k| (k.to_string(), exp.spec(k, 10_000)))
        .collect();
    hypotheses.push(("Combined".into(), exp.combined_spec(kinds, 10_000)));
    for (name, spec) in hypotheses {
        let mut cells = vec![name];
        for algorithm in Algorithm::SURROGATES {
            rhmd.reset();
            let (_, report) = attack(
                rhmd,
                &exp.traced,
                &exp.splits.attacker_train,
                &exp.splits.attacker_test,
                spec.clone(),
                algorithm,
                &TrainerConfig::with_seed(0x14),
            );
            cells.push(Table::pct(report.agreement));
        }
        table.push_row(cells);
    }
    table
}

/// Figs 14a/14b: reverse-engineering RHMDs of two and three feature-diverse
/// detectors (single period).
pub fn fig14(exp: &Experiment) -> Vec<Table> {
    let mut two = pool(exp, &TWO, &[10_000]);
    let mut three = pool(exp, &THREE, &[10_000]);
    vec![
        reveng_table(
            exp,
            "Fig 14a",
            "reverse-engineering an RHMD of 2 feature-diverse detectors \
             (paper: agreement drops well below the deterministic ~100%)",
            &mut two,
            &TWO,
        ),
        reveng_table(
            exp,
            "Fig 14b",
            "reverse-engineering an RHMD of 3 feature-diverse detectors \
             (paper: harder than 2)",
            &mut three,
            &THREE,
        ),
    ]
}

/// Figs 15a/15b: adding period diversity (10K and 5K) to the same pools.
pub fn fig15(exp: &Experiment) -> Vec<Table> {
    let mut four = pool(exp, &TWO, &[10_000, 5_000]);
    let mut six = pool(exp, &THREE, &[10_000, 5_000]);
    vec![
        reveng_table(
            exp,
            "Fig 15a",
            "reverse-engineering an RHMD of 2 features x 2 periods (4 detectors)",
            &mut four,
            &TWO,
        ),
        reveng_table(
            exp,
            "Fig 15b",
            "reverse-engineering an RHMD of 3 features x 2 periods (6 detectors) \
             (paper: hardest of all)",
            &mut six,
            &THREE,
        ),
    ]
}

/// Fig 16: evasion against RHMDs — injection tuned to the best surrogate no
/// longer hides the malware, and resilience grows with diversity.
pub fn fig16(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Fig 16",
        "RHMD evasion resilience (paper: detection stays high under injection, \
         higher diversity = more resilient)",
        &[
            "injected",
            "two features",
            "three features",
            "two features + periods",
            "three features + periods",
        ],
    );
    let configs: Vec<(&[FeatureKind], &[u32])> = vec![
        (&TWO, &[10_000]),
        (&THREE, &[10_000]),
        (&TWO, &[10_000, 5_000]),
        (&THREE, &[10_000, 5_000]),
    ];
    // Build pools + their surrogates once. As in the paper, the evasion
    // experiments inject against the Instructions feature ("without loss of
    // generality, all of our experiments use the instruction feature", §5).
    let mut pools: Vec<(ResilientHmd, rhmd_core::hmd::Hmd)> = configs
        .iter()
        .map(|(kinds, periods)| {
            let mut rhmd = pool(exp, kinds, periods);
            let surrogate = rhmd_core::reveng::reverse_engineer(
                &mut rhmd,
                &exp.traced,
                &exp.splits.attacker_train,
                exp.spec(FeatureKind::Instructions, 10_000),
                Algorithm::Nn,
                &TrainerConfig::with_seed(0x16),
            );
            let _ = kinds;
            (rhmd, surrogate)
        })
        .collect();

    let malware = exp.test_malware();
    for count in [0usize, 1, 5, 10] {
        let mut cells = vec![count.to_string()];
        for (rhmd, surrogate) in &mut pools {
            rhmd.reset();
            if count == 0 {
                let plan = rhmd_trace::inject::InjectionPlan::new(
                    vec![],
                    rhmd_trace::inject::Placement::EveryBlock,
                );
                let trial = evade_corpus(rhmd, &exp.traced, &malware, &plan);
                cells.push(Table::pct(trial.detection_rate()));
            } else {
                let plan = plan_evasion(surrogate, &EvasionConfig::least_weight(count));
                let trial = evade_corpus(rhmd, &exp.traced, &malware, &plan);
                cells.push(Table::pct(trial.detection_rate()));
            }
        }
        table.push_row(cells);
    }
    table
}

/// Stochastic defense (beyond the paper; after Khasawneh et al.'s
/// Stochastic-HMDs): every base detector of the fig 14a pool is quantized
/// and rounded with a defender-private seed, then the fig 14 attack reruns
/// against each variant. Stochastic rounding jitters the decision boundary
/// per input *on top of* detector switching, so the attacker's surrogate
/// trains on noisier labels and agreement drops below the deterministic
/// pool's. The rounding only matters when quantization steps are coarse
/// enough to cross the boundary: int16/int8 grids are too fine to flip any
/// decision (those rows isolate the effect of quantization alone), while
/// int4's 15 levels make the stochastic variant measurably harder to
/// reverse-engineer than its nearest-rounded ablation. Detection columns
/// confirm the defense is not paid for with accuracy.
pub fn ext_stochastic_defense(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Ext 5",
        "stochastic-rounding defense (fig 14a pool, quantized base detectors; \
         agreement should drop vs the deterministic row, detection should hold)",
        &["defender", "sens", "spec", "LR", "DT", "SVM"],
    );
    let variants: [(&str, Option<rhmd_ml::QuantConfig>); 5] = [
        ("f64 deterministic", None),
        (
            "int16 stochastic",
            Some(rhmd_ml::QuantConfig::stochastic(
                rhmd_ml::QuantBits::Int16,
                0x57ef,
            )),
        ),
        (
            "int8 stochastic",
            Some(rhmd_ml::QuantConfig::stochastic(
                rhmd_ml::QuantBits::Int8,
                0x57ef,
            )),
        ),
        (
            "int4 nearest",
            Some(rhmd_ml::QuantConfig::nearest(rhmd_ml::QuantBits::Int4)),
        ),
        (
            "int4 stochastic",
            Some(rhmd_ml::QuantConfig::stochastic(
                rhmd_ml::QuantBits::Int4,
                0x57ef,
            )),
        ),
    ];
    let spec = exp.combined_spec(&TWO, 10_000);
    for (name, quant) in variants {
        let specs = pool_specs(&TWO, &[10_000], &exp.opcodes);
        let mut rhmd = match quant {
            None => build_pool(
                Algorithm::Lr,
                specs,
                &exp.trainer,
                &exp.traced,
                &exp.splits.victim_train,
                0x5eed,
            ),
            Some(q) => build_stochastic_pool(
                Algorithm::Lr,
                specs,
                &exp.trainer,
                q,
                &exp.traced,
                &exp.splits.victim_train,
                0x5eed,
            ),
        };
        let quality = detection_quality(&mut rhmd, &exp.traced, &exp.splits.attacker_test);
        let mut cells = vec![
            name.to_string(),
            Table::pct(quality.sensitivity_unmodified),
            Table::pct(quality.specificity),
        ];
        for algorithm in Algorithm::SURROGATES {
            rhmd.reset();
            let (_, report) = attack(
                &mut rhmd,
                &exp.traced,
                &exp.splits.attacker_train,
                &exp.splits.attacker_test,
                spec.clone(),
                algorithm,
                &TrainerConfig::with_seed(0x14),
            );
            cells.push(Table::pct(report.agreement));
        }
        table.push_row(cells);
    }
    table
}
