//! Extension experiments beyond the paper's figures:
//!
//! * **Ext 1** — deterministic ensemble (§9.1's baseline) vs RHMD vs the
//!   non-stationary RHMD sketched in §8.3, under the same reverse-engineer +
//!   evade attack.
//! * **Ext 2** — an unsupervised (Tang et al.-style) anomaly detector as the
//!   victim: trained on benign behaviour only, attacked the same way.

use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::ensemble::{Combiner, EnsembleHmd};
use rhmd_core::evasion::{evade_corpus, plan_evasion, EvasionConfig};
use rhmd_core::hmd::{BlackBox, Hmd, ProgramVerdict};
use rhmd_core::retrain::detection_quality;
use rhmd_core::reveng;
use rhmd_core::rhmd::{pool_specs, NonStationaryRhmd, ResilientHmd};
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_features::window::{aggregate, RawWindow, SUBWINDOW};
use rhmd_ml::anomaly::{AnomalyConfig, GaussianAnomaly};
use rhmd_ml::model::Classifier;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};

/// Ext 1: one attack, three defender organisations.
pub fn ext_ensemble_vs_rhmd(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Ext 1",
        "deterministic ensemble vs RHMD vs non-stationary RHMD under the same attack \
         (paper §9.1: ensembles are deterministic, hence evadable)",
        &[
            "defender",
            "sens",
            "spec",
            "agreement",
            "detected @2",
            "detected @5",
        ],
    );
    let base_detectors: Vec<Hmd> = pool_specs(&FeatureKind::ALL, &[10_000], &exp.opcodes)
        .into_iter()
        .map(|spec| {
            Hmd::train(
                Algorithm::Lr,
                spec,
                &exp.trainer,
                &exp.traced,
                &exp.splits.victim_train,
            )
        })
        .collect();
    let candidates: Vec<Hmd> = pool_specs(&FeatureKind::ALL, &[10_000, 5_000], &exp.opcodes)
        .into_iter()
        .map(|spec| {
            Hmd::train(
                Algorithm::Lr,
                spec,
                &exp.trainer,
                &exp.traced,
                &exp.splits.victim_train,
            )
        })
        .collect();

    let mut defenders: Vec<(String, Box<dyn BlackBox>)> = vec![
        (
            "ensemble (majority)".into(),
            Box::new(EnsembleHmd::new(base_detectors.clone(), Combiner::Majority)),
        ),
        (
            "RHMD (3 detectors)".into(),
            Box::new(ResilientHmd::new(base_detectors, 0xe1)),
        ),
        (
            "non-stationary (3 of 6)".into(),
            Box::new(NonStationaryRhmd::new(candidates, 3, 8, 0xe2)),
        ),
    ];

    let malware = exp.test_malware();
    for (name, defender) in &mut defenders {
        let quality = detection_quality(defender.as_mut(), &exp.traced, &exp.splits.attacker_test);
        // Attack: the paper's strongest practical attacker — NN surrogate
        // over the union of features, then least-weight injection.
        let surrogate = reveng::reverse_engineer(
            defender.as_mut(),
            &exp.traced,
            &exp.splits.attacker_train,
            exp.combined_spec(&FeatureKind::ALL, 10_000),
            Algorithm::Nn,
            &TrainerConfig::with_seed(0xe3),
        );
        let agreement =
            reveng::agreement(defender.as_mut(), &surrogate, &exp.traced, &exp.splits.attacker_test);
        let mut cells = vec![
            name.clone(),
            Table::pct(quality.sensitivity_unmodified),
            Table::pct(quality.specificity),
            Table::pct(agreement),
        ];
        for count in [2usize, 5] {
            let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(count));
            let trial = evade_corpus(defender.as_mut(), &exp.traced, &malware, &plan);
            cells.push(Table::pct(trial.detection_rate()));
        }
        table.push_row(cells);
    }
    table
}

/// An anomaly-detector-backed HMD: benign-only training, same query surface.
struct AnomalyHmd {
    spec: FeatureSpec,
    model: GaussianAnomaly,
}

impl AnomalyHmd {
    fn decide_windows(&self, subwindows: &[RawWindow]) -> Vec<bool> {
        aggregate(subwindows, self.spec.period)
            .iter()
            .map(|w| self.model.predict(&self.spec.project(w)))
            .collect()
    }
}

impl BlackBox for AnomalyHmd {
    fn label_subwindows(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        let per = (self.spec.period / SUBWINDOW) as usize;
        let mut out = Vec::with_capacity(subwindows.len());
        for decision in self.decide_windows(subwindows) {
            out.extend(std::iter::repeat_n(decision, per));
        }
        out
    }

    fn decisions(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        self.decide_windows(subwindows)
    }

    fn describe(&self) -> String {
        format!("ANOM[{}]", self.spec.label())
    }
}

/// Ext 2: the unsupervised detector under the standard attack chain.
pub fn ext_anomaly_detector(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Ext 2",
        "unsupervised anomaly HMD (benign-only training) under reverse-engineering + evasion",
        &["feature", "sens", "spec", "agreement", "detected @2"],
    );
    let labels = exp.traced.corpus().labels();
    let benign_train: Vec<usize> = exp
        .splits
        .victim_train
        .iter()
        .copied()
        .filter(|&i| !labels[i])
        .collect();
    let malware = exp.test_malware();
    for kind in FeatureKind::ALL {
        let spec = exp.spec(kind, 10_000);
        let benign_rows: Vec<Vec<f64>> = benign_train
            .iter()
            .flat_map(|&i| exp.traced.program_vectors(i, &spec))
            .collect();
        let model = GaussianAnomaly::fit(&AnomalyConfig::default(), &benign_rows);
        let mut victim = AnomalyHmd {
            spec: spec.clone(),
            model,
        };
        let quality = detection_quality(&mut victim, &exp.traced, &exp.splits.attacker_test);

        let surrogate = reveng::reverse_engineer(
            &mut victim,
            &exp.traced,
            &exp.splits.attacker_train,
            spec,
            Algorithm::Nn,
            &TrainerConfig::with_seed(0xe4),
        );
        let agreement =
            reveng::agreement(&mut victim, &surrogate, &exp.traced, &exp.splits.attacker_test);
        let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(2));
        let trial = evade_corpus(&mut victim, &exp.traced, &malware, &plan);
        table.push_row(vec![
            kind.to_string(),
            Table::pct(quality.sensitivity_unmodified),
            Table::pct(quality.specificity),
            Table::pct(agreement),
            Table::pct(trial.detection_rate()),
        ]);
    }
    table
}

/// Ext 3: does a high-complexity deterministic model (RF) help? Theorem 1's
/// discussion says no — it reverse-engineers like anything deterministic.
pub fn ext_random_forest_victim(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Ext 3",
        "random-forest victim (paper §8.2: complexity raises attack cost, not the outcome)",
        &["surrogate", "agreement", "detected @0", "detected @3"],
    );
    let spec = exp.spec(FeatureKind::Instructions, 10_000);
    let mut victim = Hmd::train(
        Algorithm::Rf,
        spec.clone(),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    );
    let malware = exp.test_malware();
    for surrogate_algo in [Algorithm::Nn, Algorithm::Rf, Algorithm::Lr] {
        let surrogate = reveng::reverse_engineer(
            &mut victim,
            &exp.traced,
            &exp.splits.attacker_train,
            spec.clone(),
            surrogate_algo,
            &TrainerConfig::with_seed(0xe5),
        );
        let agreement =
            reveng::agreement(&mut victim, &surrogate, &exp.traced, &exp.splits.attacker_test);
        // Evasion plan: RF surrogates are opaque; NN/LR surrogates expose
        // weights. This is exactly why the attacker trains a *differentiable*
        // surrogate of a non-differentiable victim.
        let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(3));
        let before = {
            let empty = rhmd_trace::inject::InjectionPlan::new(
                vec![],
                rhmd_trace::inject::Placement::EveryBlock,
            );
            evade_corpus(&mut victim, &exp.traced, &malware, &empty).detection_rate()
        };
        let trial = evade_corpus(&mut victim, &exp.traced, &malware, &plan);
        table.push_row(vec![
            surrogate_algo.to_string(),
            Table::pct(agreement),
            Table::pct(before),
            Table::pct(trial.detection_rate()),
        ]);
    }
    table
}

/// Ext 4: dormant ("slow-start") malware — the §2 boundary case where
/// malware runs benign-looking code before its payload. Modelled by splicing
/// a benign program's windows in front of a malware trace and measuring both
/// the whole-trace verdict and the detection latency (first window index at
/// which the running flag-rate majority flips to malware).
pub fn ext_dormant_malware(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Ext 4",
        "dormant malware: benign prefix spliced before the payload (RHMD, majority verdict)",
        &[
            "benign prefix",
            "detected (whole trace)",
            "mean detection latency (windows)",
        ],
    );
    let mut rhmd = crate::figures::resilient::pool(exp, &FeatureKind::ALL, &[10_000]);
    let labels = exp.traced.corpus().labels();
    let malware: Vec<usize> = exp.test_malware();
    let benign: Vec<usize> = exp
        .splits
        .attacker_test
        .iter()
        .copied()
        .filter(|&i| !labels[i])
        .collect();

    for prefix_fraction in [0.0f64, 0.25, 0.5, 0.75] {
        let mut detected = 0usize;
        let mut latency_sum = 0usize;
        let mut latency_count = 0usize;
        for (k, &mi) in malware.iter().enumerate() {
            let mal_subs = exp.traced.subwindows(mi);
            let bi = benign[k % benign.len()];
            let prefix_len =
                ((mal_subs.len() as f64) * prefix_fraction) as usize;
            let mut spliced: Vec<RawWindow> =
                exp.traced.subwindows(bi)[..prefix_len.min(exp.traced.subwindows(bi).len())]
                    .to_vec();
            spliced.extend_from_slice(mal_subs);

            rhmd.reset();
            let stream = rhmd.label_subwindows(&spliced);
            let verdict = ProgramVerdict::from_decisions(&stream);
            if verdict.is_malware() {
                detected += 1;
            }
            // Detection latency: first index where the cumulative majority
            // flips.
            let mut flagged = 0usize;
            for (idx, &d) in stream.iter().enumerate() {
                if d {
                    flagged += 1;
                }
                if 2 * flagged > idx + 1 {
                    latency_sum += idx / 10; // subwindows → 10K windows
                    latency_count += 1;
                    break;
                }
            }
        }
        table.push_row(vec![
            format!("{:.0}%", 100.0 * prefix_fraction),
            Table::pct(detected as f64 / malware.len().max(1) as f64),
            if latency_count == 0 {
                "-".to_owned()
            } else {
                format!("{:.1}", latency_sum as f64 / latency_count as f64)
            },
        ]);
    }
    table
}

#[allow(dead_code)]
fn verdict_of(detector: &mut dyn BlackBox, subs: &[RawWindow]) -> bool {
    ProgramVerdict::from_decisions(&detector.label_subwindows(subs)).is_malware()
}
