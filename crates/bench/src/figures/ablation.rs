//! Ablations beyond the paper's figures, probing the design choices
//! DESIGN.md §5 calls out.

use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::evasion::{evade_corpus, plan_evasion, EvasionConfig, Strategy};
use rhmd_core::hmd::Hmd;
use rhmd_core::pac::{base_errors, disagreement_matrix, pool_baseline_error, theorem1_band};
use rhmd_core::reveng::{attack, reverse_engineer};
use rhmd_core::rhmd::{pool_specs, ResilientHmd};
use rhmd_features::vector::FeatureKind;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::inject::Placement;

/// Ablation A: evasion against each single-feature detector, including the
/// Memory detector (controlled-stride loads) and the Architectural detector
/// (nop dilution) — the paper only exercises the Instructions feature.
pub fn ablation_feature_evasion(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Abl A",
        "surrogate-guided evasion per feature kind (extension: paper only injects vs Instructions)",
        &["feature", "agreement", "detected @0", "detected @2", "detected @5"],
    );
    let malware = exp.test_malware();
    for kind in FeatureKind::ALL {
        let spec = exp.spec(kind, 10_000);
        let mut victim = Hmd::train(
            Algorithm::Lr,
            spec.clone(),
            &exp.trainer,
            &exp.traced,
            &exp.splits.victim_train,
        );
        let surrogate = reverse_engineer(
            &mut victim,
            &exp.traced,
            &exp.splits.attacker_train,
            spec,
            Algorithm::Lr,
            &TrainerConfig::with_seed(0xab1),
        );
        let fidelity =
            rhmd_core::reveng::agreement(&mut victim, &surrogate, &exp.traced, &exp.splits.attacker_test);
        let mut cells = vec![kind.to_string(), Table::pct(fidelity)];
        for count in [0usize, 2, 5] {
            if count == 0 {
                let plan =
                    rhmd_trace::inject::InjectionPlan::new(vec![], Placement::EveryBlock);
                let trial = evade_corpus(&mut victim, &exp.traced, &malware, &plan);
                cells.push(Table::pct(trial.detection_rate()));
            } else {
                let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(count));
                let trial = evade_corpus(&mut victim, &exp.traced, &malware, &plan);
                cells.push(Table::pct(trial.detection_rate()));
            }
        }
        table.push_row(cells);
    }
    table
}

/// Ablation B: the Theorem-1 accuracy-vs-resilience trade-off as the
/// selection probabilities shift between an accurate and a diverse detector.
pub fn ablation_probability_tradeoff(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Abl B",
        "RHMD selection-probability trade-off: baseline error vs attacker lower bound (Thm 1)",
        &["p(best detector)", "baseline error", "attacker lower bound"],
    );
    let specs = pool_specs(
        &[FeatureKind::Architectural, FeatureKind::Memory],
        &[10_000],
        &exp.opcodes,
    );
    let detectors: Vec<Hmd> = specs
        .into_iter()
        .map(|spec| {
            Hmd::train(
                Algorithm::Lr,
                spec,
                &exp.trainer,
                &exp.traced,
                &exp.splits.victim_train,
            )
        })
        .collect();
    let delta = disagreement_matrix(&detectors, &exp.traced, &exp.splits.attacker_test);
    let errors = base_errors(&detectors, &exp.traced, &exp.splits.attacker_test);
    for p_best in [1.0, 0.9, 0.75, 0.5, 0.25, 0.0] {
        let probs = vec![p_best, 1.0 - p_best];
        let band = theorem1_band(&delta, &probs, &errors);
        table.push_row(vec![
            format!("{p_best:.2}"),
            Table::pct(pool_baseline_error(&probs, &errors)),
            Table::pct(band.lower),
        ]);
    }
    table
}

/// Ablation C: RHMD switching granularity — per-epoch switching (the paper's
/// design) vs committing to one random detector per program.
pub fn ablation_switching(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Abl C",
        "RHMD switching granularity under least-weight evasion (per-epoch vs per-program draw)",
        &["strategy", "detected @2 (per-epoch)", "detected @2 (per-program)"],
    );
    let specs = pool_specs(&FeatureKind::ALL, &[10_000], &exp.opcodes);
    let detectors: Vec<Hmd> = specs
        .into_iter()
        .map(|spec| {
            Hmd::train(
                Algorithm::Lr,
                spec,
                &exp.trainer,
                &exp.traced,
                &exp.splits.victim_train,
            )
        })
        .collect();
    let malware = exp.test_malware();

    let mut per_epoch = ResilientHmd::new(detectors.clone(), 0xc0);
    let surrogate = reverse_engineer(
        &mut per_epoch,
        &exp.traced,
        &exp.splits.attacker_train,
        exp.spec(FeatureKind::Instructions, 10_000),
        Algorithm::Nn,
        &TrainerConfig::with_seed(0xab3),
    );

    for strategy in [Strategy::LeastWeight, Strategy::Weighted] {
        let plan = plan_evasion(
            &surrogate,
            &EvasionConfig {
                strategy,
                count: 2,
                placement: Placement::EveryBlock,
                seed: 0xab4,
            },
        );
        per_epoch.reset();
        let epoch_trial = evade_corpus(&mut per_epoch, &exp.traced, &malware, &plan);

        // Per-program: a fresh single-detector draw per program, emulated by
        // asking each base detector alone and averaging over the uniform
        // draw.
        let mut detected_before = 0.0;
        let mut detected_after = 0.0;
        for hmd in &detectors {
            let mut solo = hmd.clone();
            let trial = evade_corpus(&mut solo, &exp.traced, &malware, &plan);
            detected_before += trial.initially_detected as f64;
            detected_after += trial.detected_after as f64;
        }
        let program_rate = if detected_before == 0.0 {
            1.0
        } else {
            detected_after / detected_before
        };
        table.push_row(vec![
            strategy.to_string(),
            Table::pct(epoch_trial.detection_rate()),
            Table::pct(program_rate),
        ]);
    }
    table
}

/// Ablation E: the attacker's minimum payload — smallest per-block count the
/// surrogate predicts will evade, its predicted overhead, and the measured
/// detection when that exact plan is applied (paper §2 frames overhead as
/// the attacker's budget).
pub fn ablation_minimal_overhead(exp: &Experiment) -> Table {
    use rhmd_core::optimizer::{mean_block_len, minimal_evasion};
    let mut table = Table::new(
        "Abl E",
        "minimal evasion payload per victim family (predicted by the surrogate, then validated)",
        &[
            "victim",
            "min count",
            "predicted overhead",
            "predicted evasion",
            "measured detection",
        ],
    );
    let spec = exp.spec(FeatureKind::Instructions, 10_000);
    let labels = exp.traced.corpus().labels();
    let windows: Vec<Vec<f64>> = exp
        .splits
        .attacker_train
        .iter()
        .filter(|&&i| labels[i])
        .flat_map(|&i| exp.traced.program_vectors(i, &spec))
        .collect();
    let block_len = {
        let malware = exp.test_malware();
        let lens: Vec<f64> = malware
            .iter()
            .take(16)
            .map(|&i| mean_block_len(exp.traced.corpus().program(i)))
            .collect();
        lens.iter().sum::<f64>() / lens.len().max(1) as f64
    };
    let centroid: Vec<f64> = {
        let mut sum = vec![0.0; spec.dims()];
        for w in &windows {
            for (s, x) in sum.iter_mut().zip(w) {
                *s += x;
            }
        }
        sum.iter().map(|s| s / windows.len().max(1) as f64).collect()
    };
    for algo in [Algorithm::Lr, Algorithm::Nn, Algorithm::Rf] {
        let mut victim = Hmd::train(
            algo,
            spec.clone(),
            &exp.trainer,
            &exp.traced,
            &exp.splits.victim_train,
        );
        let surrogate = rhmd_core::reveng::reverse_engineer_validated(
            &mut victim,
            &exp.traced,
            &exp.splits.attacker_train,
            spec.clone(),
            if algo == Algorithm::Lr { Algorithm::Lr } else { Algorithm::Nn },
            &TrainerConfig::with_seed(0xab6),
            3,
        );
        let result = minimal_evasion(&surrogate, &windows, Some(&centroid), block_len, 12, 0.6);
        let (count_cell, detection_cell) = match (&result.count, &result.plan) {
            (Some(count), Some(plan)) => {
                let malware = exp.test_malware();
                let trial = evade_corpus(&mut victim, &exp.traced, &malware, plan);
                (count.to_string(), Table::pct(trial.detection_rate()))
            }
            _ => ("-".to_owned(), "-".to_owned()),
        };
        table.push_row(vec![
            algo.to_string(),
            count_cell,
            Table::pct(result.predicted_overhead),
            Table::pct(result.predicted_evasion),
            detection_cell,
        ]);
    }
    table
}

/// Ablation F: program-verdict policy under the Fig 16 attack — majority
/// voting vs a benign-calibrated flag-rate threshold (10% program-level FP
/// budget). Which rule is more evasion-resilient depends on the base
/// detectors' specificity: with noisy benign flag rates the calibrated
/// threshold lands *above* ½ and is stricter than majority.
pub fn ablation_verdict_policy(exp: &Experiment) -> Table {
    use rhmd_core::hmd::{BlackBox, ProgramVerdict};
    use rhmd_core::verdict::VerdictPolicy;
    let mut table = Table::new(
        "Abl F",
        "RHMD program verdicts under Instructions-feature evasion: majority vs calibrated threshold",
        &["injected", "majority", "calibrated"],
    );
    let mut rhmd = crate::figures::resilient::pool(exp, &FeatureKind::ALL, &[10_000]);
    let labels = exp.traced.corpus().labels();
    let benign_train: Vec<usize> = exp
        .splits
        .victim_train
        .iter()
        .copied()
        .filter(|&i| !labels[i])
        .collect();
    rhmd.reset();
    let calibrated = VerdictPolicy::calibrated(&mut rhmd, &exp.traced, &benign_train, 0.1)
        .expect("benign training split is non-empty");
    let majority = VerdictPolicy::majority();

    let surrogate = reverse_engineer(
        &mut rhmd,
        &exp.traced,
        &exp.splits.attacker_train,
        exp.spec(FeatureKind::Instructions, 10_000),
        Algorithm::Nn,
        &TrainerConfig::with_seed(0xabf),
    );
    let malware = exp.test_malware();
    for count in [0usize, 1, 5, 10] {
        // Trace (possibly rewritten) malware once, judge under both rules.
        let subwindows: Vec<Vec<rhmd_features::window::RawWindow>> = if count == 0 {
            malware
                .iter()
                .map(|&i| exp.traced.subwindows(i).to_vec())
                .collect()
        } else {
            let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(count));
            rhmd_core::retrain::trace_evasive_variants(&exp.traced, &malware, &plan)
        };
        let mut counts = [0usize; 2];
        let mut initially = 0usize;
        for (k, subs) in subwindows.iter().enumerate() {
            rhmd.reset();
            let base_stream = rhmd.label_subwindows(exp.traced.subwindows(malware[k]));
            let initially_detected =
                majority.is_malware(&ProgramVerdict::from_decisions(&base_stream));
            if !initially_detected {
                continue;
            }
            initially += 1;
            rhmd.reset();
            let stream = rhmd.label_subwindows(subs);
            let verdict = ProgramVerdict::from_decisions(&stream);
            if majority.is_malware(&verdict) {
                counts[0] += 1;
            }
            if calibrated.is_malware(&verdict) {
                counts[1] += 1;
            }
        }
        let denom = initially.max(1) as f64;
        table.push_row(vec![
            count.to_string(),
            Table::pct(counts[0] as f64 / denom),
            Table::pct(counts[1] as f64 / denom),
        ]);
    }
    table
}

/// Ablation D: how much of reverse-engineering quality survives when the
/// attacker's query budget (number of attacker-training programs) shrinks.
pub fn ablation_query_budget(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Abl D",
        "surrogate agreement vs attacker query budget (deterministic LR victim)",
        &["attacker programs", "agreement"],
    );
    let spec = exp.spec(FeatureKind::Instructions, 10_000);
    let mut victim = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    );
    let full = exp.splits.attacker_train.clone();
    for frac in [0.1, 0.25, 0.5, 1.0] {
        let take = ((full.len() as f64 * frac).round() as usize).max(2);
        let subset = &full[..take.min(full.len())];
        let (_, report) = attack(
            &mut victim,
            &exp.traced,
            subset,
            &exp.splits.attacker_test,
            spec.clone(),
            Algorithm::Lr,
            &TrainerConfig::with_seed(0xab5),
        );
        table.push_row(vec![take.to_string(), Table::pct(report.agreement)]);
    }
    table
}
