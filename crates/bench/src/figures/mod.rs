//! One module per group of paper figures; each function regenerates the
//! corresponding table(s). See DESIGN.md §4 for the full experiment index.

pub mod ablation;
pub mod baseline;
pub mod evasion;
pub mod extensions;
pub mod resilient;
pub mod retraining;
pub mod reveng;
pub mod theory;
