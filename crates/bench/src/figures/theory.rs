//! §7 hardware table and §8 Theorem-1 bounds.

use crate::context::Experiment;
use crate::report::Table;
use rhmd_core::hw::{overhead, paper_configuration, pool_cost, UnitCosts};
use rhmd_core::pac::{base_errors, disagreement_matrix, pool_baseline_error, theorem1_band};
use rhmd_core::reveng::attack;
use rhmd_core::rhmd::pool_specs;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};

/// §7 hardware-overhead table: the paper's synthesized three-detector
/// configuration plus the larger pools, against the AO486 baseline.
pub fn tab_hw(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "HW §7",
        "detector hardware overhead vs AO486 (paper: 1.72% area, 0.78% power \
         for 3 detectors with shared collection logic)",
        &["configuration", "area", "power", "weight bits"],
    );
    let costs = UnitCosts::default();
    let mut add = |name: &str, specs: &[rhmd_features::vector::FeatureSpec]| {
        let o = overhead(specs, &costs);
        let c = pool_cost(specs, &costs);
        table.push_row(vec![
            name.to_owned(),
            format!("{:.2}%", o.area_pct),
            format!("{:.2}%", o.power_pct),
            format!("{:.0}", c.memory_bits),
        ]);
    };
    add("paper: 3 features @10k", &paper_configuration(16, 10_000));
    add(
        "2 features @10k",
        &pool_specs(
            &[FeatureKind::Memory, FeatureKind::Instructions],
            &[10_000],
            &exp.opcodes,
        ),
    );
    add(
        "3 features @10k",
        &pool_specs(&FeatureKind::ALL, &[10_000], &exp.opcodes),
    );
    add(
        "3 features x 2 periods",
        &pool_specs(&FeatureKind::ALL, &[10_000, 5_000], &exp.opcodes),
    );
    table
}

/// §8 / Theorem 1: the attacker's measured error against the six-detector
/// pool, sandwiched by the theoretical band (paper: measured ≈ 25%).
pub fn thm1(exp: &Experiment) -> Table {
    let mut table = Table::new(
        "Thm 1 §8",
        "PAC band vs measured surrogate error (paper: six-detector pool error ~25%)",
        &[
            "pool",
            "baseline error",
            "band lower",
            "measured error",
            "band upper",
            "in band",
        ],
    );
    let pools: Vec<(&str, Vec<FeatureKind>, Vec<u32>)> = vec![
        (
            "2 features",
            vec![FeatureKind::Memory, FeatureKind::Instructions],
            vec![10_000],
        ),
        ("3 features", FeatureKind::ALL.to_vec(), vec![10_000]),
        (
            "6 detectors (3f x 2p)",
            FeatureKind::ALL.to_vec(),
            vec![10_000, 5_000],
        ),
    ];
    for (name, kinds, periods) in pools {
        let mut rhmd = crate::figures::resilient::pool(exp, &kinds, &periods);
        let delta = disagreement_matrix(rhmd.detectors(), &exp.traced, &exp.splits.attacker_test);
        let errors = base_errors(rhmd.detectors(), &exp.traced, &exp.splits.attacker_test);
        let band = theorem1_band(&delta, rhmd.probabilities(), &errors);
        let baseline = pool_baseline_error(rhmd.probabilities(), &errors);

        // Attacker's best shot: union-feature NN surrogate.
        let (_, report) = attack(
            &mut rhmd,
            &exp.traced,
            &exp.splits.attacker_train,
            &exp.splits.attacker_test,
            exp.combined_spec(&kinds, 10_000),
            Algorithm::Nn,
            &TrainerConfig::with_seed(0x81),
        );
        let measured = 1.0 - report.agreement;
        table.push_row(vec![
            name.to_owned(),
            Table::pct(baseline),
            Table::pct(band.lower),
            Table::pct(measured),
            Table::pct(band.upper),
            // The lower bound holds asymptotically for the best surrogate in
            // H; a finite-sample surrogate may sit slightly below it.
            (measured >= band.lower * 0.8 && measured <= band.upper * 1.2).to_string(),
        ]);
    }
    table
}
