//! Minimal command-line options for the experiment binaries.
//!
//! The figure regenerators and sweeps historically took *no* arguments —
//! checkpointing rode on the `RHMD_CKPT` env var. That stays as the
//! documented fallback, but the long-running binaries now accept proper
//! flags:
//!
//! ```text
//! --checkpoint <dir>   journal completed work units to <dir>
//!                      (auto-resumes when <dir> already has a manifest)
//! --resume <dir>       resume strictly: <dir> must already exist
//! --metrics <path>     export a metrics snapshot as JSON to <path>
//! --metrics-summary    print a metrics summary table to stderr
//! ```

use crate::ckpt::CkptOptions;
use crate::metrics::MetricsOptions;
use rhmd_core::RhmdError;
use std::path::PathBuf;

/// Options shared by the experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct BinOptions {
    /// `--checkpoint` / `--resume`.
    pub ckpt: Option<CkptOptions>,
    /// `--metrics` / `--metrics-summary`.
    pub metrics: MetricsOptions,
}

/// The usage text appended to each binary's `--help`.
pub const USAGE: &str = "\
options:
  --checkpoint <dir>   journal completed work units to <dir> (auto-resume)
  --resume <dir>       resume from <dir>; the directory must already exist
  --metrics <path>     export a metrics snapshot as JSON to <path>
  --metrics-summary    print a metrics summary table to stderr
  --help               show this message

env fallbacks: RHMD_SCALE (tiny|small|standard|paper), RHMD_CKPT (checkpoint
dir when no flag is given), RHMD_IO_FAULTS (I/O fault injection).";

/// Parses the process's own arguments into [`BinOptions`], printing usage
/// and exiting on `--help`.
///
/// # Errors
///
/// [`RhmdError::Config`] on unknown flags, missing values, or
/// `--checkpoint` combined with `--resume`.
pub fn parse_env_args(binary: &str) -> Result<BinOptions, RhmdError> {
    parse(binary, std::env::args().skip(1))
}

fn parse(
    binary: &str,
    raw: impl IntoIterator<Item = String>,
) -> Result<BinOptions, RhmdError> {
    let mut checkpoint: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut metrics_summary = false;
    let mut iter = raw.into_iter();
    while let Some(token) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .map(PathBuf::from)
                .ok_or_else(|| RhmdError::config(format!("flag {flag} needs a value")))
        };
        match token.as_str() {
            "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
            "--resume" => resume = Some(value("--resume")?),
            "--metrics" => metrics_path = Some(value("--metrics")?),
            "--metrics-summary" => metrics_summary = true,
            "--help" | "-h" => {
                println!("usage: {binary} [options]\n{USAGE}");
                std::process::exit(0);
            }
            other => {
                return Err(RhmdError::config(format!(
                    "unknown argument '{other}' (try --help)"
                )))
            }
        }
    }
    let ckpt = match (checkpoint, resume) {
        (Some(_), Some(_)) => {
            return Err(RhmdError::config(
                "--checkpoint and --resume are mutually exclusive \
                 (--checkpoint auto-resumes when the directory already has a manifest)",
            ))
        }
        (Some(dir), None) => Some(CkptOptions {
            dir,
            resume_only: false,
        }),
        (None, Some(dir)) => {
            // Validated at parse time so a typo fails in milliseconds,
            // not after minutes of corpus tracing.
            if !dir.is_dir() {
                return Err(RhmdError::io(
                    dir.display().to_string(),
                    "checkpoint directory does not exist; \
                     pass the directory a previous --checkpoint run created",
                ));
            }
            Some(CkptOptions {
                dir,
                resume_only: true,
            })
        }
        (None, None) => None,
    };
    Ok(BinOptions {
        ckpt,
        metrics: MetricsOptions::new(metrics_path, metrics_summary),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Result<BinOptions, RhmdError> {
        parse("test", tokens.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn empty_args_mean_everything_off() {
        let opts = args(&[]).unwrap();
        assert!(opts.ckpt.is_none());
        assert!(!opts.metrics.any());
    }

    #[test]
    fn checkpoint_and_resume_parse() {
        let opts = args(&["--checkpoint", "/tmp/ck"]).unwrap();
        let ckpt = opts.ckpt.unwrap();
        assert_eq!(ckpt.dir, PathBuf::from("/tmp/ck"));
        assert!(!ckpt.resume_only);
        let dir = std::env::temp_dir().join(format!("rhmd-flags-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let opts = args(&["--resume", dir.to_str().unwrap()]).unwrap();
        assert!(opts.ckpt.unwrap().resume_only);
        std::fs::remove_dir_all(&dir).ok();
        // --resume validates existence at parse time, before any tracing.
        assert!(args(&["--resume", "/tmp/rhmd-definitely-missing"]).is_err());
        assert!(args(&["--checkpoint", "a", "--resume", "b"]).is_err());
    }

    #[test]
    fn metrics_flags_parse() {
        let opts = args(&["--metrics", "m.json", "--metrics-summary"]).unwrap();
        assert!(opts.metrics.any());
        assert_eq!(opts.metrics.path(), Some(std::path::Path::new("m.json")));
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(args(&["--metrics"]).is_err(), "missing value");
        assert!(args(&["--frobnicate"]).is_err(), "unknown flag");
    }
}
