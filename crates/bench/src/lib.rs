//! Reproduction harness for every table and figure in the RHMD paper.
//!
//! Each figure has a binary (`cargo run --release -p rhmd-bench --bin
//! fig08_least_weight`, etc.) that prints the regenerated rows;
//! `repro_all` runs the whole evaluation and writes a combined report.
//! Criterion benches (in `benches/`) cover the performance of the
//! substrate itself: feature extraction, simulation, training, inference,
//! injection and RHMD switching.
//!
//! Scale is selected with `RHMD_SCALE` (`tiny` | `small` | `standard` |
//! `paper`); experiments default to `standard`.

// Durable I/O and checkpoint journals moved to `rhmd-runtime` so the corpus
// store (`rhmd_data::store`) can write shards through the same plane; the
// historical `rhmd_bench::durable` / `rhmd_bench::ckpt` paths keep working.
pub use rhmd_runtime::{ckpt, durable};

pub mod context;
pub mod figures;
pub mod flags;
pub mod metrics;
pub mod par;
pub mod report;

pub use context::Experiment;
pub use par::{Evaluator, EvaluatorBuilder, FeatureCache, Pool};
pub use report::Table;
