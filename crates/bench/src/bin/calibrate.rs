//! Quick calibration probe: baseline detector accuracy/AUC per feature.

use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
use rhmd_features::{select_top_delta_opcodes, FeatureKind, FeatureSpec};
use rhmd_ml::{auc, best_accuracy_threshold, score_all, train, Algorithm, TrainerConfig};
use rhmd_uarch::CoreConfig;

fn main() {
    let config = CorpusConfig::from_env();
    eprintln!("building corpus: {} programs ...", config.total_programs());
    let t0 = std::time::Instant::now();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    eprintln!("traced in {:?}", t0.elapsed());

    // Select top-delta opcodes on the victim training set.
    let victim = &splits.victim_train;
    let labels: Vec<bool> = traced.corpus().labels();
    let mal_windows: Vec<_> = victim
        .iter()
        .filter(|&&i| labels[i])
        .flat_map(|&i| traced.subwindows(i).to_vec())
        .collect();
    let ben_windows: Vec<_> = victim
        .iter()
        .filter(|&&i| !labels[i])
        .flat_map(|&i| traced.subwindows(i).to_vec())
        .collect();
    let opcodes = select_top_delta_opcodes(&mal_windows, &ben_windows, 16);
    eprintln!("top opcodes: {opcodes:?}");

    if std::env::var("RHMD_MLP_SWEEP").is_ok() {
        let spec = FeatureSpec::new(FeatureKind::Instructions, 10_000, opcodes.clone());
        let train_data = traced.window_dataset(victim, &spec);
        let test_data = traced.window_dataset(&splits.attacker_test, &spec);
        for (epochs, lr, momentum, l2, hidden) in [
            (120u32, 0.04, 0.9, 1e-5, None),
            (200, 0.08, 0.9, 1e-4, None),
            (300, 0.08, 0.95, 1e-4, None),
            (200, 0.15, 0.8, 1e-4, None),
            (200, 0.08, 0.9, 1e-3, None),
            (200, 0.08, 0.9, 1e-4, Some(32usize)),
            (400, 0.05, 0.9, 3e-4, Some(24)),
        ] {
            let cfg = rhmd_ml::MlpConfig {
                epochs,
                learning_rate: lr,
                momentum,
                l2,
                hidden,
                ..rhmd_ml::MlpConfig::default()
            };
            let model = rhmd_ml::Mlp::fit(&cfg, &train_data);
            let scores = rhmd_ml::model::score_all(&model, &test_data);
            let a = auc(&scores, test_data.labels());
            let (_, acc) = best_accuracy_threshold(&scores, test_data.labels());
            println!(
                "mlp e={epochs} lr={lr} m={momentum} l2={l2} h={hidden:?}: AUC {a:.3} acc {acc:.3}"
            );
        }
        return;
    }

    for kind in FeatureKind::ALL {
        let spec = FeatureSpec::new(kind, 10_000, opcodes.clone());
        let train_data = traced.window_dataset(victim, &spec);
        let test_data = traced.window_dataset(&splits.attacker_test, &spec);
        for algo in [Algorithm::Lr, Algorithm::Nn] {
            let t = std::time::Instant::now();
            let model = train(algo, &TrainerConfig::with_seed(7), &train_data);
            let scores = score_all(model.as_ref(), &test_data);
            let a = auc(&scores, test_data.labels());
            let (_, acc) = best_accuracy_threshold(&scores, test_data.labels());
            println!(
                "{kind:>14} {algo}: AUC {a:.3} acc {acc:.3}  (train {} wins, {:?})",
                train_data.len(),
                t.elapsed()
            );
        }
    }
}
