//! Load generator for `rhmd serve`: replays synthetic corpora as session
//! streams at a target offered load and records the service's latency and
//! degradation envelope into `BENCH_serve.json`.
//!
//! Default mode drives an in-process engine directly (no transport cost):
//!
//! 1. **Replay identity** — every held-out test program streamed as one
//!    session, at one shard and at all shards; verdicts must match
//!    `rhmd evaluate`'s batch path bit for bit.
//! 2. **Saturation probe** — an unpaced flood measures the sustained
//!    service rate in sessions/second.
//! 3. **Load sweep** — offered load at 0.5x / 1x / 2x saturation with
//!    bounded queues, recording p50/p99 verdict latency, abstention rate,
//!    and shed rate. Past saturation the service must degrade loudly
//!    (nonzero shed, every session accounted) with bounded p99 — never by
//!    losing verdicts.
//!
//! `--connect <socket>` instead streams NDJSON to a running
//! `rhmd serve --listen` daemon and records a single point, tolerating a
//! mid-stream server drain (SIGTERM smoke tests).
//!
//! Run `RHMD_SCALE=tiny cargo run --release -p rhmd-bench --bin loadgen`
//! for a quick pass; see `--help`.

use rhmd_bench::durable::Durable;
use rhmd_bench::Experiment;
use rhmd_core::hmd::Hmd;
use rhmd_core::RhmdError;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::trainer::Algorithm;
use rhmd_serve::engine::{Engine, OutEvent};
use rhmd_serve::proto::{Response, StatsMsg, VerdictMsg};
use rhmd_serve::queue::Watermarks;
use rhmd_serve::ServeConfig;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: loadgen [options]

options:
  --out <path>        output report path (default: BENCH_serve.json)
  --connect <socket>  drive a running `rhmd serve --listen <socket>` daemon
                      over NDJSON instead of an in-process engine
  --sessions <n>      sessions per point in --connect mode (default: 32)
  --qps <f>           offered sessions/second in --connect mode (0 = unpaced)
  --help              show this message

env fallbacks: RHMD_SCALE (tiny|small|standard|paper) selects the corpus.";

/// One measured operating point of the service.
#[derive(Debug, Clone, Serialize)]
struct Point {
    /// Human label (`"0.5x"`, `"1x"`, `"2x"`, `"saturation"`, `"connect"`).
    label: String,
    /// Offered load as a multiple of measured saturation (0 = unpaced).
    multiplier: f64,
    /// Offered load in sessions/second (0 = unpaced).
    offered_sps: f64,
    /// Serviced (decided + abstained) sessions/second over the point.
    achieved_sps: f64,
    /// Sessions offered to the service.
    offered: u64,
    /// Sessions that got a decision.
    decided: u64,
    /// Sessions that ended abstained.
    abstained: u64,
    /// Sessions degraded by load-shedding (explicit shed verdicts).
    shed: u64,
    /// Median end-to-verdict latency in milliseconds.
    p50_ms: f64,
    /// 99th-percentile end-to-verdict latency in milliseconds.
    p99_ms: f64,
    /// Fraction of offered sessions that ended abstained.
    abstain_rate: f64,
    /// Fraction of offered sessions that were shed.
    shed_rate: f64,
    /// Offered sessions with no verdict line (must be 0: no silent drops).
    lost: u64,
    /// Whether `offered == decided + abstained + shed` held.
    accounted: bool,
}

/// The full report written to `BENCH_serve.json`.
#[derive(Debug, Serialize)]
struct Report {
    /// Corpus scale in effect (`RHMD_SCALE`).
    scale: String,
    /// Measured saturation throughput, sessions/second.
    saturation_sps: f64,
    /// Mean subwindow events per replayed session.
    events_per_session: f64,
    /// Whether streamed verdicts matched the batch evaluation path at
    /// every shard count tried (`null` in `--connect` mode).
    replay_bit_identical: Option<bool>,
    /// The measured operating points.
    points: Vec<Point>,
}

struct Options {
    out: PathBuf,
    connect: Option<PathBuf>,
    sessions: usize,
    qps: f64,
}

fn parse_args() -> Result<Options, RhmdError> {
    let mut opts = Options {
        out: PathBuf::from("BENCH_serve.json"),
        connect: None,
        sessions: 32,
        qps: 0.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(token) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| RhmdError::config(format!("flag {flag} needs a value")))
        };
        match token.as_str() {
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--connect" => opts.connect = Some(PathBuf::from(value("--connect")?)),
            "--sessions" => {
                let v = value("--sessions")?;
                opts.sessions = v.parse().map_err(|_| {
                    RhmdError::parse("--sessions", format!("invalid value '{v}'"))
                })?;
            }
            "--qps" => {
                let v = value("--qps")?;
                opts.qps = v
                    .parse()
                    .map_err(|_| RhmdError::parse("--qps", format!("invalid value '{v}'")))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                return Err(RhmdError::config(format!(
                    "unknown argument '{other}' (try --help)"
                )))
            }
        }
    }
    Ok(opts)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), RhmdError> {
    let opts = parse_args()?;
    let exp = Experiment::load();
    let report = match &opts.connect {
        Some(sock) => connect_mode(&exp, sock, opts.sessions, opts.qps)?,
        None => in_process(&exp)?,
    };
    let json = serde_json::to_string(&report)
        .map_err(|e| RhmdError::model(format!("serialize report: {e}")))?;
    Durable::from_env()?.write_atomic(&opts.out, json.as_bytes())?;
    eprintln!("[loadgen] report written to {}", opts.out.display());
    for p in &report.points {
        eprintln!(
            "[loadgen] {:>10}: offered {} decided {} abstained {} shed {} \
             p50 {:.2}ms p99 {:.2}ms lost {}",
            p.label, p.offered, p.decided, p.abstained, p.shed, p.p50_ms, p.p99_ms, p.lost
        );
    }
    if report.points.iter().any(|p| p.lost > 0 || !p.accounted) {
        return Err(RhmdError::model(
            "verdicts were lost or unaccounted under load — the no-silent-drops \
             contract is broken",
        ));
    }
    if report.replay_bit_identical == Some(false) {
        return Err(RhmdError::model(
            "streamed replay diverged from the batch evaluation path",
        ));
    }
    Ok(())
}

/// Trains the served detector: the standard LR / architectural baseline at
/// a 5k period (small, fast, and deterministic at this scale).
fn train(exp: &Experiment) -> Hmd {
    Hmd::train(
        Algorithm::Lr,
        FeatureSpec::new(FeatureKind::Architectural, 5_000, exp.opcodes.clone()),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    )
}

fn scale_name() -> String {
    std::env::var("RHMD_SCALE").unwrap_or_else(|_| "standard".to_owned())
}

fn shards() -> usize {
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

/// Mean subwindow count over the replayed (test-split) sessions.
fn mean_events(exp: &Experiment) -> f64 {
    let test = &exp.splits.attacker_test;
    let total: usize = test.iter().map(|&i| exp.traced.subwindows(i).len()).sum();
    total as f64 / test.len().max(1) as f64
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn point_from(
    label: &str,
    multiplier: f64,
    offered_sps: f64,
    stats: &StatsMsg,
    verdict_lines: u64,
    mut latencies_ms: Vec<f64>,
    elapsed: Duration,
) -> Point {
    latencies_ms.sort_by(f64::total_cmp);
    let offered = stats.offered_sessions;
    let serviced = stats.decided + stats.abstained;
    Point {
        label: label.to_owned(),
        multiplier,
        offered_sps,
        achieved_sps: serviced as f64 / elapsed.as_secs_f64().max(1e-9),
        offered,
        decided: stats.decided,
        abstained: stats.abstained,
        shed: stats.shed_sessions,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        abstain_rate: stats.abstained as f64 / offered.max(1) as f64,
        shed_rate: stats.shed_sessions as f64 / offered.max(1) as f64,
        lost: offered.saturating_sub(verdict_lines),
        accounted: stats.accounted(),
    }
}

// ---------------------------------------------------------------------------
// In-process mode
// ---------------------------------------------------------------------------

/// Shared collector state: verdict lines and end-to-verdict latencies.
#[derive(Default)]
struct Collected {
    verdicts: Mutex<Vec<VerdictMsg>>,
    latencies_ms: Mutex<Vec<f64>>,
    /// `session id -> End submission time`, filled by senders.
    ends: Mutex<std::collections::HashMap<String, Instant>>,
}

impl Collected {
    fn on_verdict(&self, v: VerdictMsg) {
        let end = self.ends.lock().unwrap().remove(&v.session);
        if let Some(at) = end {
            self.latencies_ms
                .lock()
                .unwrap()
                .push(at.elapsed().as_secs_f64() * 1e3);
        }
        self.verdicts.lock().unwrap().push(v);
    }

    fn verdict_count(&self) -> usize {
        self.verdicts.lock().unwrap().len()
    }
}

/// Pops the engine's output until `Closed`, feeding verdicts into `col`.
fn collect(out: &rhmd_serve::queue::BoundedQueue<OutEvent>, col: &Collected) {
    while let Some(ev) = out.pop() {
        match ev {
            OutEvent::Response {
                response: Response::Verdict(v),
                ..
            } => col.on_verdict(v),
            OutEvent::Response { .. } => {}
            OutEvent::Closed => break,
        }
    }
}

/// Streams session `k` (a replay of program `prog`) into the engine.
fn send_session(engine: &Engine, exp: &Experiment, col: &Collected, k: usize, prog: usize) {
    let tenant = if k.is_multiple_of(2) { "t0" } else { "t1" };
    let session = format!("s{k}");
    for (seq, sub) in exp.traced.subwindows(prog).iter().enumerate() {
        engine.submit_event(0, tenant, &session, seq as u64, Box::new(sub.clone()));
    }
    col.ends
        .lock()
        .unwrap()
        .insert(session.clone(), Instant::now());
    engine.submit_end(0, tenant, &session);
}

/// Runs one operating point: `sessions` replayed sessions at `offered_sps`
/// sessions/second (0 = unpaced) across `senders` threads, against an
/// engine with the given ingest watermarks.
#[allow(clippy::too_many_arguments)]
fn run_point(
    exp: &Experiment,
    hmd: &Hmd,
    n_shards: usize,
    queue: Watermarks,
    sessions: usize,
    offered_sps: f64,
    senders: usize,
    label: &str,
    multiplier: f64,
) -> Result<(Point, Vec<VerdictMsg>), RhmdError> {
    let config = ServeConfig {
        shards: n_shards,
        queue,
        output: Watermarks {
            capacity: 1 << 16,
            high: 1 << 16,
            low: 0,
        },
        session_deadline: None,
        tenant_deadline: None,
        ..ServeConfig::default()
    };
    let engine = Engine::start(hmd.clone(), config)?;
    let out = engine.output();
    let col = Collected::default();
    let test = &exp.splits.attacker_test;
    let next = AtomicU64::new(0);
    let t0 = Instant::now();
    let stats = std::thread::scope(|scope| {
        let collector = scope.spawn(|| collect(&out, &col));
        let mut handles = Vec::new();
        for _ in 0..senders {
            handles.push(scope.spawn(|| {
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if k >= sessions {
                        break;
                    }
                    if offered_sps > 0.0 {
                        let target = Duration::from_secs_f64(k as f64 / offered_sps);
                        while t0.elapsed() < target {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    send_session(&engine, exp, &col, k, test[k % test.len()]);
                }
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        let stats = engine.drain();
        let _ = collector.join();
        stats
    });
    let elapsed = t0.elapsed();
    let point = point_from(
        label,
        multiplier,
        offered_sps,
        &stats,
        col.verdict_count() as u64,
        std::mem::take(&mut col.latencies_ms.lock().unwrap()),
        elapsed,
    );
    Ok((point, col.verdicts.into_inner().unwrap()))
}

/// Replays every test program as one session at `n_shards` shards (one
/// session in flight at a time, so nothing sheds) and checks each verdict
/// against the batch evaluation path.
fn replay_identity(exp: &Experiment, hmd: &Hmd, n_shards: usize) -> Result<bool, RhmdError> {
    let per_session = mean_events(exp).ceil() as usize;
    let config = ServeConfig {
        shards: n_shards,
        queue: Watermarks {
            capacity: 4 * per_session + 256,
            high: 4 * per_session + 256,
            low: 0,
        },
        session_deadline: None,
        tenant_deadline: None,
        ..ServeConfig::default()
    };
    let engine = Engine::start(hmd.clone(), config)?;
    let out = engine.output();
    let col = Collected::default();
    let test = exp.splits.attacker_test.clone();
    std::thread::scope(|scope| {
        let collector = scope.spawn(|| collect(&out, &col));
        for (k, &prog) in test.iter().enumerate() {
            send_session(&engine, exp, &col, k, prog);
            // One session in flight keeps the ingest queue under its
            // watermark, so the identity pass never sheds.
            while col.verdict_count() <= k {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let stats = engine.drain();
        let _ = collector.join();
        assert!(stats.accounted());
    });
    let verdicts = col.verdicts.into_inner().unwrap();
    let mut identical = verdicts.len() == test.len();
    for v in &verdicts {
        let k: usize = v.session[1..].parse().expect("session ids are s<k>");
        let expected = hmd.verdict(exp.traced.subwindows(test[k]));
        let want = if expected.total == 0 {
            "abstain" // zero scorable windows: the service abstains loudly
        } else if expected.is_malware() {
            "malware"
        } else {
            "benign"
        };
        if v.verdict != want || v.voted != expected.total || v.flag_rate != expected.flag_rate() {
            eprintln!(
                "[loadgen] DIVERGENCE at {} shards, session {}: streamed {} \
                 (voted {}, flag_rate {}), batch wants {} (voted {}, flag_rate {})",
                n_shards,
                v.session,
                v.verdict,
                v.voted,
                v.flag_rate,
                want,
                expected.total,
                expected.flag_rate()
            );
            identical = false;
        }
    }
    Ok(identical)
}

fn in_process(exp: &Experiment) -> Result<Report, RhmdError> {
    let hmd = train(exp);
    let per_session = mean_events(exp);
    let n_shards = shards();

    eprintln!("[loadgen] replay identity at 1 and {n_shards} shards ...");
    let identical = replay_identity(exp, &hmd, 1)? && replay_identity(exp, &hmd, n_shards)?;

    eprintln!("[loadgen] probing saturation (unpaced flood) ...");
    let flood = Watermarks {
        capacity: 1 << 15,
        high: (1 << 15) * 3 / 4,
        low: (1 << 15) / 4,
    };
    let sat_sessions = (exp.splits.attacker_test.len() * 8).clamp(64, 512);
    let (sat, _) = run_point(
        exp,
        &hmd,
        n_shards,
        flood,
        sat_sessions,
        0.0,
        4,
        "saturation",
        0.0,
    )?;
    let saturation_sps = sat.achieved_sps.max(1.0);
    eprintln!("[loadgen] saturation ~{saturation_sps:.1} sessions/s");

    // Sweep queues sized to absorb sender bursts (whole sessions) without
    // shedding below saturation, while staying bounded enough that 2x
    // offered load visibly sheds.
    let cap = ((8.0 * per_session) as usize).clamp(512, 1 << 15);
    let sweep_queue = Watermarks {
        capacity: cap,
        high: cap * 3 / 4,
        low: cap / 4,
    };
    let mut points = vec![sat];
    for multiplier in [0.5, 1.0, 2.0] {
        let sps = multiplier * saturation_sps;
        let sessions = ((sps * 3.0) as usize).clamp(24, 512);
        eprintln!("[loadgen] sweep {multiplier}x saturation ({sps:.1} sessions/s) ...");
        let (point, _) = run_point(
            exp,
            &hmd,
            n_shards,
            sweep_queue,
            sessions,
            sps,
            4,
            &format!("{multiplier}x"),
            multiplier,
        )?;
        points.push(point);
    }

    Ok(Report {
        scale: scale_name(),
        saturation_sps,
        events_per_session: per_session,
        replay_bit_identical: Some(identical),
        points,
    })
}

// ---------------------------------------------------------------------------
// Connect mode (NDJSON over a Unix socket)
// ---------------------------------------------------------------------------

#[cfg(unix)]
fn connect_mode(
    exp: &Experiment,
    sock: &std::path::Path,
    sessions: usize,
    qps: f64,
) -> Result<Report, RhmdError> {
    use rhmd_serve::proto::Request;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let stream = UnixStream::connect(sock)
        .map_err(|e| RhmdError::io(sock.display().to_string(), e.to_string()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| RhmdError::io(sock.display().to_string(), e.to_string()))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| RhmdError::io(sock.display().to_string(), e.to_string()))?;

    let col = Collected::default();
    let test = &exp.splits.attacker_test;
    let t0 = Instant::now();
    let mut sent = 0u64;
    let mut server_stats: Option<StatsMsg> = None;

    std::thread::scope(|scope| -> Result<(), RhmdError> {
        let reader = scope.spawn(|| -> Option<StatsMsg> {
            let mut last: Option<StatsMsg> = None;
            for line in BufReader::new(&stream).lines() {
                let Ok(line) = line else { break };
                match serde_json::from_str::<Response>(&line) {
                    Ok(Response::Verdict(v)) => col.on_verdict(v),
                    Ok(Response::Stats(s)) => last = Some(s),
                    Ok(Response::Drained(s)) => return Some(s),
                    _ => {}
                }
            }
            last
        });
        'send: for k in 0..sessions {
            if qps > 0.0 {
                let target = Duration::from_secs_f64(k as f64 / qps);
                while t0.elapsed() < target {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            let tenant = if k.is_multiple_of(2) { "t0" } else { "t1" };
            let session = format!("s{k}");
            for (seq, sub) in exp.traced.subwindows(test[k % test.len()]).iter().enumerate() {
                let req = Request::Event {
                    tenant: tenant.to_owned(),
                    session: session.clone(),
                    seq: seq as u64,
                    window: Box::new(sub.clone()),
                };
                let line = serde_json::to_string(&req).expect("requests serialize");
                // A write error means the server went away mid-stream
                // (e.g. a SIGTERM drain): stop offering and settle with
                // whatever verdicts the drain flushed.
                if writeln!(writer, "{line}").is_err() {
                    break 'send;
                }
            }
            col.ends
                .lock()
                .unwrap()
                .insert(session.clone(), Instant::now());
            if writeln!(
                writer,
                "{}",
                serde_json::to_string(&Request::End {
                    tenant: tenant.to_owned(),
                    session,
                })
                .expect("requests serialize")
            )
            .is_err()
            {
                break 'send;
            }
            sent += 1;
        }
        let _ = writeln!(
            writer,
            "{}",
            serde_json::to_string(&Request::Stats {}).expect("requests serialize")
        );
        let _ = writer.flush();
        // Give the reader a beat to drain replies, then close our write
        // half so a lines() iterator parked on the socket unblocks.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline && (col.verdict_count() as u64) < sent {
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);
        server_stats = reader.join().unwrap_or(None);
        Ok(())
    })?;

    let elapsed = t0.elapsed();
    let stats = server_stats.unwrap_or_else(|| {
        // The server never answered the stats request (killed hard);
        // account from the client's own view so the report stays usable.
        let decided = col
            .verdicts
            .lock()
            .unwrap()
            .iter()
            .filter(|v| v.is_decided())
            .count() as u64;
        let total = col.verdict_count() as u64;
        StatsMsg {
            offered_sessions: total,
            decided,
            abstained: total - decided,
            ..StatsMsg::default()
        }
    });
    let point = point_from(
        "connect",
        0.0,
        qps,
        &stats,
        col.verdict_count() as u64,
        std::mem::take(&mut col.latencies_ms.lock().unwrap()),
        elapsed,
    );
    Ok(Report {
        scale: scale_name(),
        saturation_sps: 0.0,
        events_per_session: mean_events(exp),
        replay_bit_identical: None,
        points: vec![point],
    })
}

#[cfg(not(unix))]
fn connect_mode(
    _exp: &Experiment,
    _sock: &std::path::Path,
    _sessions: usize,
    _qps: f64,
) -> Result<Report, RhmdError> {
    Err(RhmdError::config("--connect is only supported on Unix"))
}
