//! Load generator for `rhmd serve`: replays synthetic corpora as session
//! streams at a target offered load and records the service's latency and
//! degradation envelope into `BENCH_serve.json`.
//!
//! Default mode drives an in-process engine directly (no transport cost):
//!
//! 1. **Replay identity** — every held-out test program streamed as one
//!    session, at one shard and at all shards; verdicts must match
//!    `rhmd evaluate`'s batch path bit for bit.
//! 2. **Saturation probe** — an unpaced flood measures the sustained
//!    service rate in sessions/second.
//! 3. **Load sweep** — offered load at 0.5x / 1x / 2x saturation with
//!    bounded queues, recording p50/p99 verdict latency, abstention rate,
//!    and shed rate. Past saturation the service must degrade loudly
//!    (nonzero shed, every session accounted) with bounded p99 — never by
//!    losing verdicts.
//!
//! 4. **Chaos point** (`--chaos`) — the same replay, but every frame runs
//!    the hostile-wire gauntlet (malformed/truncated/oversized/nonfinite
//!    garbage, duplicates, stale re-deliveries), a deterministic subset of
//!    sessions poisons the scorer (panics and NaNs → quarantine), and
//!    shard workers are killed mid-stream and supervised back up. Gates:
//!    the engine must never fail, the four-term accounting identity must
//!    close, recovery latency is recorded, and every non-quarantined
//!    session's verdict must still match the batch path bit for bit.
//!
//! `--connect <socket>` instead streams NDJSON to a running
//! `rhmd serve --listen` daemon and records a single point, tolerating a
//! mid-stream server drain (SIGTERM smoke tests). With `--chaos` it also
//! mutates the wire stream and parks slow-loris / mid-frame-disconnect
//! attacker connections on the daemon.
//!
//! Run `RHMD_SCALE=tiny cargo run --release -p rhmd-bench --bin loadgen`
//! for a quick pass; see `--help`.

use rhmd_bench::durable::Durable;
use rhmd_bench::Experiment;
use rhmd_core::hmd::Hmd;
use rhmd_core::RhmdError;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::trainer::Algorithm;
use rhmd_serve::chaos::{EngineFaults, WireFaults};
use rhmd_serve::engine::{Engine, OutEvent};
use rhmd_serve::proto::{
    parse_request, validate_request, Response, StatsMsg, VerdictMsg,
};
use rhmd_serve::queue::Watermarks;
use rhmd_serve::server::{read_frame, Frame};
use rhmd_serve::ServeConfig;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: loadgen [options]

options:
  --out <path>        output report path (default: BENCH_serve.json)
  --connect <socket>  drive a running `rhmd serve --listen <socket>` daemon
                      over NDJSON instead of an in-process engine
  --sessions <n>      sessions per point in --connect mode (default: 32)
  --qps <f>           offered sessions/second in --connect mode (0 = unpaced)
  --chaos             run the chaos point: wire faults on every frame,
                      injected scorer poison, and mid-stream shard kills
                      (in --connect mode: wire faults + attacker conns)
  --chaos-seed <n>    deterministic seed for all chaos targeting (default: 7)
  --help              show this message

env fallbacks: RHMD_SCALE (tiny|small|standard|paper) selects the corpus.";

/// One measured operating point of the service.
#[derive(Debug, Clone, Serialize)]
struct Point {
    /// Human label (`"0.5x"`, `"1x"`, `"2x"`, `"saturation"`, `"connect"`).
    label: String,
    /// Offered load as a multiple of measured saturation (0 = unpaced).
    multiplier: f64,
    /// Offered load in sessions/second (0 = unpaced).
    offered_sps: f64,
    /// Serviced (decided + abstained) sessions/second over the point.
    achieved_sps: f64,
    /// Sessions offered to the service.
    offered: u64,
    /// Sessions that got a decision.
    decided: u64,
    /// Sessions that ended abstained.
    abstained: u64,
    /// Sessions degraded by load-shedding (explicit shed verdicts).
    shed: u64,
    /// Sessions isolated by the poison-pill boundary (abstain/quarantine).
    quarantined: u64,
    /// Median end-to-verdict latency in milliseconds.
    p50_ms: f64,
    /// 99th-percentile end-to-verdict latency in milliseconds.
    p99_ms: f64,
    /// Fraction of offered sessions that ended abstained.
    abstain_rate: f64,
    /// Fraction of offered sessions that were shed.
    shed_rate: f64,
    /// Offered sessions with no verdict line (must be 0: no silent drops).
    lost: u64,
    /// Whether `offered == decided + abstained + shed + quarantined` held.
    accounted: bool,
}

/// Outcome of the chaos point: the service under a hostile wire, a
/// poisoned scorer, and mid-stream shard kills. Every field here is a
/// release gate (see `run`), not just telemetry.
#[derive(Debug, Serialize)]
struct ChaosReport {
    /// Deterministic seed driving all fault targeting.
    seed: u64,
    /// Sessions offered through the hostile pipeline.
    sessions: u64,
    /// Sessions the poison-pill boundary isolated (must be > 0, or the
    /// injected scorer faults never fired and the point is vacuous).
    quarantined: u64,
    /// Wire frames rejected at the boundary (malformed / truncated /
    /// oversized / non-finite); must be > 0 for the same reason.
    rejected_frames: u64,
    /// Duplicate / stale re-deliveries repaired away by the sequence
    /// filter.
    stale_frames: u64,
    /// Shard workers killed mid-stream by the harness.
    shard_kills: u64,
    /// Supervisor restarts observed (>= shard_kills when recovery works).
    shard_restarts: u64,
    /// Median kill-to-serving shard recovery latency, milliseconds.
    recovery_p50_ms: f64,
    /// 99th-percentile shard recovery latency, milliseconds.
    recovery_p99_ms: f64,
    /// Whether the engine ever entered the failed state (must be false:
    /// the restart budget absorbed every kill).
    engine_failed: bool,
    /// Whether the four-term accounting identity closed at drain.
    accounted: bool,
    /// Whether every non-quarantined session's verdict matched the batch
    /// evaluation path bit for bit despite the chaos.
    nonquarantined_bit_identical: bool,
}

/// The full report written to `BENCH_serve.json`.
#[derive(Debug, Serialize)]
struct Report {
    /// Corpus scale in effect (`RHMD_SCALE`).
    scale: String,
    /// Measured saturation throughput, sessions/second.
    saturation_sps: f64,
    /// Mean subwindow events per replayed session.
    events_per_session: f64,
    /// Whether streamed verdicts matched the batch evaluation path at
    /// every shard count tried (`null` in `--connect` mode).
    replay_bit_identical: Option<bool>,
    /// The chaos point's gates and recovery envelope (`--chaos` only).
    chaos: Option<ChaosReport>,
    /// The measured operating points.
    points: Vec<Point>,
}

struct Options {
    out: PathBuf,
    connect: Option<PathBuf>,
    sessions: usize,
    qps: f64,
    chaos: bool,
    chaos_seed: u64,
}

fn parse_args() -> Result<Options, RhmdError> {
    let mut opts = Options {
        out: PathBuf::from("BENCH_serve.json"),
        connect: None,
        sessions: 32,
        qps: 0.0,
        chaos: false,
        chaos_seed: 7,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(token) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .ok_or_else(|| RhmdError::config(format!("flag {flag} needs a value")))
        };
        match token.as_str() {
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--connect" => opts.connect = Some(PathBuf::from(value("--connect")?)),
            "--sessions" => {
                let v = value("--sessions")?;
                opts.sessions = v.parse().map_err(|_| {
                    RhmdError::parse("--sessions", format!("invalid value '{v}'"))
                })?;
            }
            "--qps" => {
                let v = value("--qps")?;
                opts.qps = v
                    .parse()
                    .map_err(|_| RhmdError::parse("--qps", format!("invalid value '{v}'")))?;
            }
            "--chaos" => opts.chaos = true,
            "--chaos-seed" => {
                let v = value("--chaos-seed")?;
                opts.chaos_seed = v.parse().map_err(|_| {
                    RhmdError::parse("--chaos-seed", format!("invalid value '{v}'"))
                })?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                return Err(RhmdError::config(format!(
                    "unknown argument '{other}' (try --help)"
                )))
            }
        }
    }
    Ok(opts)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), RhmdError> {
    let opts = parse_args()?;
    let exp = Experiment::load();
    let report = match &opts.connect {
        Some(sock) => connect_mode(&exp, sock, &opts)?,
        None => in_process(&exp, &opts)?,
    };
    let json = serde_json::to_string(&report)
        .map_err(|e| RhmdError::model(format!("serialize report: {e}")))?;
    Durable::from_env()?.write_atomic(&opts.out, json.as_bytes())?;
    eprintln!("[loadgen] report written to {}", opts.out.display());
    for p in &report.points {
        eprintln!(
            "[loadgen] {:>10}: offered {} decided {} abstained {} shed {} \
             quarantined {} p50 {:.2}ms p99 {:.2}ms lost {}",
            p.label,
            p.offered,
            p.decided,
            p.abstained,
            p.shed,
            p.quarantined,
            p.p50_ms,
            p.p99_ms,
            p.lost
        );
    }
    if report.points.iter().any(|p| p.lost > 0 || !p.accounted) {
        return Err(RhmdError::model(
            "verdicts were lost or unaccounted under load — the no-silent-drops \
             contract is broken",
        ));
    }
    if report.replay_bit_identical == Some(false) {
        return Err(RhmdError::model(
            "streamed replay diverged from the batch evaluation path",
        ));
    }
    if let Some(chaos) = &report.chaos {
        eprintln!(
            "[loadgen] chaos: quarantined {} rejected_frames {} stale {} \
             kills {} restarts {} recovery p99 {:.2}ms failed {} identical {}",
            chaos.quarantined,
            chaos.rejected_frames,
            chaos.stale_frames,
            chaos.shard_kills,
            chaos.shard_restarts,
            chaos.recovery_p99_ms,
            chaos.engine_failed,
            chaos.nonquarantined_bit_identical
        );
        if chaos.engine_failed {
            return Err(RhmdError::model(
                "chaos: the engine entered the failed state — the restart \
                 budget did not absorb the injected shard kills",
            ));
        }
        if !chaos.accounted {
            return Err(RhmdError::model(
                "chaos: the four-term accounting identity did not close",
            ));
        }
        if !chaos.nonquarantined_bit_identical {
            return Err(RhmdError::model(
                "chaos: a non-quarantined session's verdict diverged from the \
                 batch evaluation path",
            ));
        }
        if chaos.quarantined == 0 || chaos.rejected_frames == 0 || chaos.stale_frames == 0 {
            return Err(RhmdError::model(
                "chaos: a fault plane never fired (quarantine, rejection, or \
                 re-delivery count is zero) — the point is vacuous",
            ));
        }
        if chaos.shard_kills > 0 && chaos.shard_restarts < chaos.shard_kills {
            return Err(RhmdError::model(
                "chaos: the supervisor restarted fewer shards than were killed",
            ));
        }
    }
    Ok(())
}

/// Trains the served detector: the standard LR / architectural baseline at
/// a 5k period (small, fast, and deterministic at this scale).
fn train(exp: &Experiment) -> Hmd {
    Hmd::train(
        Algorithm::Lr,
        FeatureSpec::new(FeatureKind::Architectural, 5_000, exp.opcodes.clone()),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    )
}

fn scale_name() -> String {
    std::env::var("RHMD_SCALE").unwrap_or_else(|_| "standard".to_owned())
}

fn shards() -> usize {
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

/// Mean subwindow count over the replayed (test-split) sessions.
fn mean_events(exp: &Experiment) -> f64 {
    let test = &exp.splits.attacker_test;
    let total: usize = test.iter().map(|&i| exp.traced.subwindows(i).len()).sum();
    total as f64 / test.len().max(1) as f64
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn point_from(
    label: &str,
    multiplier: f64,
    offered_sps: f64,
    stats: &StatsMsg,
    verdict_lines: u64,
    mut latencies_ms: Vec<f64>,
    elapsed: Duration,
) -> Point {
    latencies_ms.sort_by(f64::total_cmp);
    let offered = stats.offered_sessions;
    let serviced = stats.decided + stats.abstained;
    Point {
        label: label.to_owned(),
        multiplier,
        offered_sps,
        achieved_sps: serviced as f64 / elapsed.as_secs_f64().max(1e-9),
        offered,
        decided: stats.decided,
        abstained: stats.abstained,
        shed: stats.shed_sessions,
        quarantined: stats.quarantined,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        abstain_rate: stats.abstained as f64 / offered.max(1) as f64,
        shed_rate: stats.shed_sessions as f64 / offered.max(1) as f64,
        lost: offered.saturating_sub(verdict_lines),
        accounted: stats.accounted(),
    }
}

// ---------------------------------------------------------------------------
// In-process mode
// ---------------------------------------------------------------------------

/// Shared collector state: verdict lines and end-to-verdict latencies.
#[derive(Default)]
struct Collected {
    verdicts: Mutex<Vec<VerdictMsg>>,
    latencies_ms: Mutex<Vec<f64>>,
    /// `session id -> End submission time`, filled by senders.
    ends: Mutex<std::collections::HashMap<String, Instant>>,
}

impl Collected {
    fn on_verdict(&self, v: VerdictMsg) {
        let end = self.ends.lock().unwrap().remove(&v.session);
        if let Some(at) = end {
            self.latencies_ms
                .lock()
                .unwrap()
                .push(at.elapsed().as_secs_f64() * 1e3);
        }
        self.verdicts.lock().unwrap().push(v);
    }

    fn verdict_count(&self) -> usize {
        self.verdicts.lock().unwrap().len()
    }
}

/// Pops the engine's output until `Closed`, feeding verdicts into `col`.
fn collect(out: &rhmd_serve::queue::BoundedQueue<OutEvent>, col: &Collected) {
    while let Some(ev) = out.pop() {
        match ev {
            OutEvent::Response {
                response: Response::Verdict(v),
                ..
            } => col.on_verdict(v),
            OutEvent::Response { .. } => {}
            OutEvent::Closed => break,
        }
    }
}

/// Streams session `k` (a replay of program `prog`) into the engine.
fn send_session(engine: &Engine, exp: &Experiment, col: &Collected, k: usize, prog: usize) {
    let tenant = if k.is_multiple_of(2) { "t0" } else { "t1" };
    let session = format!("s{k}");
    for (seq, sub) in exp.traced.subwindows(prog).iter().enumerate() {
        engine.submit_event(0, tenant, &session, seq as u64, Box::new(sub.clone()), None);
    }
    col.ends
        .lock()
        .unwrap()
        .insert(session.clone(), Instant::now());
    engine.submit_end(0, tenant, &session);
}

/// Runs one operating point: `sessions` replayed sessions at `offered_sps`
/// sessions/second (0 = unpaced) across `senders` threads, against an
/// engine with the given ingest watermarks.
#[allow(clippy::too_many_arguments)]
fn run_point(
    exp: &Experiment,
    hmd: &Hmd,
    n_shards: usize,
    queue: Watermarks,
    sessions: usize,
    offered_sps: f64,
    senders: usize,
    label: &str,
    multiplier: f64,
) -> Result<(Point, Vec<VerdictMsg>), RhmdError> {
    let config = ServeConfig {
        shards: n_shards,
        queue,
        output: Watermarks {
            capacity: 1 << 16,
            high: 1 << 16,
            low: 0,
        },
        session_deadline: None,
        tenant_deadline: None,
        ..ServeConfig::default()
    };
    // Explicit default faults: a stray RHMD_SERVE_FAULTS in the
    // environment must never poison a clean measurement point.
    let engine = Engine::start_with_faults(hmd.clone(), config, EngineFaults::default())?;
    let out = engine.output();
    let col = Collected::default();
    let test = &exp.splits.attacker_test;
    let next = AtomicU64::new(0);
    let t0 = Instant::now();
    let stats = std::thread::scope(|scope| {
        let collector = scope.spawn(|| collect(&out, &col));
        let mut handles = Vec::new();
        for _ in 0..senders {
            handles.push(scope.spawn(|| {
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if k >= sessions {
                        break;
                    }
                    if offered_sps > 0.0 {
                        let target = Duration::from_secs_f64(k as f64 / offered_sps);
                        while t0.elapsed() < target {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    send_session(&engine, exp, &col, k, test[k % test.len()]);
                }
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        let stats = engine.drain();
        let _ = collector.join();
        stats
    });
    let elapsed = t0.elapsed();
    let point = point_from(
        label,
        multiplier,
        offered_sps,
        &stats,
        col.verdict_count() as u64,
        std::mem::take(&mut col.latencies_ms.lock().unwrap()),
        elapsed,
    );
    Ok((point, col.verdicts.into_inner().unwrap()))
}

/// Replays every test program as one session at `n_shards` shards (one
/// session in flight at a time, so nothing sheds) and checks each verdict
/// against the batch evaluation path.
fn replay_identity(exp: &Experiment, hmd: &Hmd, n_shards: usize) -> Result<bool, RhmdError> {
    let per_session = mean_events(exp).ceil() as usize;
    let config = ServeConfig {
        shards: n_shards,
        queue: Watermarks {
            capacity: 4 * per_session + 256,
            high: 4 * per_session + 256,
            low: 0,
        },
        session_deadline: None,
        tenant_deadline: None,
        ..ServeConfig::default()
    };
    let engine = Engine::start_with_faults(hmd.clone(), config, EngineFaults::default())?;
    let out = engine.output();
    let col = Collected::default();
    let test = exp.splits.attacker_test.clone();
    std::thread::scope(|scope| {
        let collector = scope.spawn(|| collect(&out, &col));
        for (k, &prog) in test.iter().enumerate() {
            send_session(&engine, exp, &col, k, prog);
            // One session in flight keeps the ingest queue under its
            // watermark, so the identity pass never sheds.
            while col.verdict_count() <= k {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let stats = engine.drain();
        let _ = collector.join();
        assert!(stats.accounted());
    });
    let verdicts = col.verdicts.into_inner().unwrap();
    let mut identical = verdicts.len() == test.len();
    for v in &verdicts {
        let k: usize = v.session[1..].parse().expect("session ids are s<k>");
        let expected = hmd.verdict(exp.traced.subwindows(test[k]));
        let want = if expected.total == 0 {
            "abstain" // zero scorable windows: the service abstains loudly
        } else if expected.is_malware() {
            "malware"
        } else {
            "benign"
        };
        if v.verdict != want || v.voted != expected.total || v.flag_rate != expected.flag_rate() {
            eprintln!(
                "[loadgen] DIVERGENCE at {} shards, session {}: streamed {} \
                 (voted {}, flag_rate {}), batch wants {} (voted {}, flag_rate {})",
                n_shards,
                v.session,
                v.verdict,
                v.voted,
                v.flag_rate,
                want,
                expected.total,
                expected.flag_rate()
            );
            identical = false;
        }
    }
    Ok(identical)
}

/// What the batch path says about a replayed program, reduced to the
/// fields a verdict line carries — the bit-identity oracle.
fn batch_expectation(hmd: &Hmd, exp: &Experiment, prog: usize) -> (String, usize, f64) {
    let expected = hmd.verdict(exp.traced.subwindows(prog));
    let want = if expected.total == 0 {
        "abstain"
    } else if expected.is_malware() {
        "malware"
    } else {
        "benign"
    };
    (want.to_owned(), expected.total, expected.flag_rate())
}

/// The chaos point: every test program replayed through the full hostile
/// pipeline — frames expanded by the wire-fault plane, then pushed through
/// the bounded frame reader, parser, and validator exactly as a socket
/// client's bytes would be — against an engine with injected scorer poison,
/// while shard workers are killed mid-session and supervised back up.
fn chaos_point(
    exp: &Experiment,
    hmd: &Hmd,
    n_shards: usize,
    seed: u64,
) -> Result<(Point, ChaosReport), RhmdError> {
    use rhmd_serve::proto::Request;

    let wire = WireFaults::standard(seed);
    let engine_faults = EngineFaults {
        score_panic: 0.2,
        score_nan: 0.15,
        seed,
    };
    let per_session = mean_events(exp).ceil() as usize;
    let config = ServeConfig {
        shards: n_shards,
        queue: Watermarks {
            capacity: 4 * per_session + 256,
            high: 4 * per_session + 256,
            low: 0,
        },
        output: Watermarks {
            capacity: 1 << 16,
            high: 1 << 16,
            low: 0,
        },
        session_deadline: None,
        tenant_deadline: None,
        ..ServeConfig::default()
    };
    let engine = Engine::start_with_faults(hmd.clone(), config, engine_faults.clone())?;
    let out = engine.output();
    let col = Collected::default();
    let test = exp.splits.attacker_test.clone();
    // Kill a shard during roughly every third session, while that session
    // is mid-stream, so supervised restarts must restore live state.
    let kill_every = (test.len() / 3).max(2);
    let mut kills = 0u64;
    let mut rejected_frames = 0u64;
    let t0 = Instant::now();
    let stats = std::thread::scope(|scope| {
        let collector = scope.spawn(|| collect(&out, &col));
        for (k, &prog) in test.iter().enumerate() {
            let session = format!("s{k}");
            // Render the session exactly as a client would put it on the
            // wire, with the fault plane expanding each frame.
            let mut bytes: Vec<u8> = Vec::new();
            let mut first_frame = String::new();
            let subs = exp.traced.subwindows(prog);
            for (seq, sub) in subs.iter().enumerate() {
                let frame = serde_json::to_string(&Request::Event {
                    tenant: "t0".into(),
                    session: session.clone(),
                    seq: seq as u64,
                    window: Box::new(sub.clone()),
                    deadline_ms: None,
                })
                .expect("requests serialize");
                if seq == 0 {
                    first_frame = frame.clone();
                }
                for line in wire.mutate(&session, seq as u64, &frame, &first_frame) {
                    bytes.extend_from_slice(line.as_bytes());
                    bytes.push(b'\n');
                }
            }
            // Feed the hostile bytes through the real ingest pipeline.
            let mut input = std::io::Cursor::new(bytes);
            let mut partial = Vec::new();
            let mut submitted = 0usize;
            loop {
                match read_frame(&mut input, &mut partial) {
                    Frame::Line(line) => {
                        match parse_request(&line).and_then(|r| {
                            validate_request(&r)?;
                            Ok(r)
                        }) {
                            Ok(request) => {
                                engine.submit(0, request);
                                submitted += 1;
                            }
                            Err(_) => rejected_frames += 1,
                        }
                    }
                    Frame::Oversized(_) => rejected_frames += 1,
                    Frame::Idle | Frame::Stalled => unreachable!("cursors never block"),
                    Frame::Eof { .. } => break,
                }
                // Mid-session shard kill: live assemblies must survive the
                // restart via snapshots (or the worker's dying flush).
                if k % kill_every == 1
                    && submitted == subs.len() / 2
                    && submitted > 0
                    && engine.kill_shard(k % n_shards)
                {
                    kills += 1;
                    let deadline = Instant::now() + Duration::from_secs(30);
                    while (engine.recoveries_ns().len() as u64) < kills
                        && !engine.failed()
                        && Instant::now() < deadline
                    {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            col.ends
                .lock()
                .unwrap()
                .insert(session.clone(), Instant::now());
            engine.submit_end(0, "t0", &session);
            // One session in flight at a time: the chaos point probes
            // fault handling, not throughput, and must never shed.
            let deadline = Instant::now() + Duration::from_secs(60);
            while col.verdict_count() <= k && !engine.failed() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let stats = engine.drain();
        let _ = collector.join();
        stats
    });
    let elapsed = t0.elapsed();

    // Bit-identity gate: quarantine-targeted sessions must carry the
    // explicit quarantine abstention; everyone else must match the batch
    // path exactly, chaos or no chaos.
    let verdicts = col.verdicts.lock().unwrap().clone();
    let mut identical = verdicts.len() == test.len();
    for v in &verdicts {
        let k: usize = v.session[1..].parse().expect("session ids are s<k>");
        if engine_faults.quarantines("t0", &v.session) {
            if v.verdict != "abstain" || v.reason.as_deref() != Some("quarantine") {
                eprintln!(
                    "[loadgen] CHAOS: poisoned session {} ended '{}' ({:?}), \
                     expected abstain/quarantine",
                    v.session, v.verdict, v.reason
                );
                identical = false;
            }
            continue;
        }
        let (want, voted, flag_rate) = batch_expectation(hmd, exp, test[k]);
        if v.verdict != want || v.voted != voted || v.flag_rate != flag_rate {
            eprintln!(
                "[loadgen] CHAOS DIVERGENCE session {}: streamed {} (voted {}, \
                 flag_rate {}), batch wants {} (voted {voted}, flag_rate {flag_rate})",
                v.session, v.verdict, v.voted, v.flag_rate, want
            );
            identical = false;
        }
    }

    let mut recovery_ms: Vec<f64> = engine
        .recoveries_ns()
        .iter()
        .map(|&ns| ns as f64 / 1e6)
        .collect();
    recovery_ms.sort_by(f64::total_cmp);
    let chaos = ChaosReport {
        seed,
        sessions: stats.offered_sessions,
        quarantined: stats.quarantined,
        rejected_frames,
        stale_frames: stats.stale_frames,
        shard_kills: kills,
        shard_restarts: stats.shard_restarts,
        recovery_p50_ms: percentile(&recovery_ms, 0.50),
        recovery_p99_ms: percentile(&recovery_ms, 0.99),
        engine_failed: engine.failed(),
        accounted: stats.accounted(),
        nonquarantined_bit_identical: identical,
    };
    let point = point_from(
        "chaos",
        0.0,
        0.0,
        &stats,
        col.verdict_count() as u64,
        std::mem::take(&mut col.latencies_ms.lock().unwrap()),
        elapsed,
    );
    Ok((point, chaos))
}

fn in_process(exp: &Experiment, opts: &Options) -> Result<Report, RhmdError> {
    let hmd = train(exp);
    let per_session = mean_events(exp);
    let n_shards = shards();

    eprintln!("[loadgen] replay identity at 1 and {n_shards} shards ...");
    let identical = replay_identity(exp, &hmd, 1)? && replay_identity(exp, &hmd, n_shards)?;

    eprintln!("[loadgen] probing saturation (unpaced flood) ...");
    let flood = Watermarks {
        capacity: 1 << 15,
        high: (1 << 15) * 3 / 4,
        low: (1 << 15) / 4,
    };
    let sat_sessions = (exp.splits.attacker_test.len() * 8).clamp(64, 512);
    let (sat, _) = run_point(
        exp,
        &hmd,
        n_shards,
        flood,
        sat_sessions,
        0.0,
        4,
        "saturation",
        0.0,
    )?;
    let saturation_sps = sat.achieved_sps.max(1.0);
    eprintln!("[loadgen] saturation ~{saturation_sps:.1} sessions/s");

    // Sweep queues sized to absorb sender bursts (whole sessions) without
    // shedding below saturation, while staying bounded enough that 2x
    // offered load visibly sheds.
    let cap = ((8.0 * per_session) as usize).clamp(512, 1 << 15);
    let sweep_queue = Watermarks {
        capacity: cap,
        high: cap * 3 / 4,
        low: cap / 4,
    };
    let mut points = vec![sat];
    for multiplier in [0.5, 1.0, 2.0] {
        let sps = multiplier * saturation_sps;
        let sessions = ((sps * 3.0) as usize).clamp(24, 512);
        eprintln!("[loadgen] sweep {multiplier}x saturation ({sps:.1} sessions/s) ...");
        let (point, _) = run_point(
            exp,
            &hmd,
            n_shards,
            sweep_queue,
            sessions,
            sps,
            4,
            &format!("{multiplier}x"),
            multiplier,
        )?;
        points.push(point);
    }

    let chaos = if opts.chaos {
        eprintln!(
            "[loadgen] chaos point (seed {}): hostile wire + scorer poison + shard kills ...",
            opts.chaos_seed
        );
        let (point, chaos) = chaos_point(exp, &hmd, n_shards, opts.chaos_seed)?;
        points.push(point);
        Some(chaos)
    } else {
        None
    };

    Ok(Report {
        scale: scale_name(),
        saturation_sps,
        events_per_session: per_session,
        replay_bit_identical: Some(identical),
        chaos,
        points,
    })
}

// ---------------------------------------------------------------------------
// Connect mode (NDJSON over a Unix socket)
// ---------------------------------------------------------------------------

#[cfg(unix)]
fn connect_mode(
    exp: &Experiment,
    sock: &std::path::Path,
    opts: &Options,
) -> Result<Report, RhmdError> {
    use rhmd_serve::proto::Request;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let (sessions, qps) = (opts.sessions, opts.qps);
    let wire = opts.chaos.then(|| WireFaults::standard(opts.chaos_seed));

    // Hostile co-tenants: a mid-frame disconnect and a slow-loris holding
    // half a frame open. The daemon must keep serving the healthy client.
    let mut attacker_loris: Option<UnixStream> = None;
    if opts.chaos {
        if let Ok(mut s) = UnixStream::connect(sock) {
            let _ = s.write_all(br#"{"Event":{"tenant":"t0","session":"vanish","#);
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        if let Ok(mut s) = UnixStream::connect(sock) {
            let _ = s.write_all(br#"{"Event":{"tenant":"t0","session":"loris","#);
            let _ = s.flush();
            attacker_loris = Some(s); // held open, never finished
        }
    }

    let stream = UnixStream::connect(sock)
        .map_err(|e| RhmdError::io(sock.display().to_string(), e.to_string()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| RhmdError::io(sock.display().to_string(), e.to_string()))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| RhmdError::io(sock.display().to_string(), e.to_string()))?;

    let col = Collected::default();
    let test = &exp.splits.attacker_test;
    let t0 = Instant::now();
    let mut sent = 0u64;
    let mut server_stats: Option<StatsMsg> = None;

    std::thread::scope(|scope| -> Result<(), RhmdError> {
        let reader = scope.spawn(|| -> Option<StatsMsg> {
            let mut last: Option<StatsMsg> = None;
            for line in BufReader::new(&stream).lines() {
                let Ok(line) = line else { break };
                match serde_json::from_str::<Response>(&line) {
                    Ok(Response::Verdict(v)) => col.on_verdict(v),
                    Ok(Response::Stats(s)) => last = Some(s),
                    Ok(Response::Drained(s)) => return Some(s),
                    _ => {}
                }
            }
            last
        });
        'send: for k in 0..sessions {
            if qps > 0.0 {
                let target = Duration::from_secs_f64(k as f64 / qps);
                while t0.elapsed() < target {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            let tenant = if k.is_multiple_of(2) { "t0" } else { "t1" };
            let session = format!("s{k}");
            let mut first_frame = String::new();
            for (seq, sub) in exp.traced.subwindows(test[k % test.len()]).iter().enumerate() {
                let req = Request::Event {
                    tenant: tenant.to_owned(),
                    session: session.clone(),
                    seq: seq as u64,
                    window: Box::new(sub.clone()),
                    deadline_ms: None,
                };
                let frame = serde_json::to_string(&req).expect("requests serialize");
                if seq == 0 {
                    first_frame = frame.clone();
                }
                let lines = match &wire {
                    Some(w) => w.mutate(&session, seq as u64, &frame, &first_frame),
                    None => vec![frame],
                };
                // A write error means the server went away mid-stream
                // (e.g. a SIGTERM drain): stop offering and settle with
                // whatever verdicts the drain flushed.
                for line in lines {
                    if writeln!(writer, "{line}").is_err() {
                        break 'send;
                    }
                }
            }
            col.ends
                .lock()
                .unwrap()
                .insert(session.clone(), Instant::now());
            if writeln!(
                writer,
                "{}",
                serde_json::to_string(&Request::End {
                    tenant: tenant.to_owned(),
                    session,
                })
                .expect("requests serialize")
            )
            .is_err()
            {
                break 'send;
            }
            sent += 1;
        }
        let _ = writeln!(
            writer,
            "{}",
            serde_json::to_string(&Request::Stats {}).expect("requests serialize")
        );
        let _ = writer.flush();
        // Give the reader a beat to drain replies, then close our write
        // half so a lines() iterator parked on the socket unblocks.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline && (col.verdict_count() as u64) < sent {
            std::thread::sleep(Duration::from_millis(20));
        }
        // Second stats barrier: counts are bumped before a verdict line is
        // emitted, so a snapshot taken after every verdict arrived is
        // consistent — the first one can be stale by an in-flight finalize.
        let _ = writeln!(
            writer,
            "{}",
            serde_json::to_string(&Request::Stats {}).expect("requests serialize")
        );
        let _ = writer.flush();
        std::thread::sleep(Duration::from_millis(50));
        let _ = stream.shutdown(std::net::Shutdown::Write);
        server_stats = reader.join().unwrap_or(None);
        Ok(())
    })?;

    let elapsed = t0.elapsed();
    let stats = server_stats.unwrap_or_else(|| {
        // The server never answered the stats request (killed hard);
        // account from the client's own view so the report stays usable.
        let decided = col
            .verdicts
            .lock()
            .unwrap()
            .iter()
            .filter(|v| v.is_decided())
            .count() as u64;
        let total = col.verdict_count() as u64;
        StatsMsg {
            offered_sessions: total,
            decided,
            abstained: total - decided,
            ..StatsMsg::default()
        }
    });
    drop(attacker_loris); // released only after the healthy run completed
    let point = point_from(
        "connect",
        0.0,
        qps,
        &stats,
        col.verdict_count() as u64,
        std::mem::take(&mut col.latencies_ms.lock().unwrap()),
        elapsed,
    );
    Ok(Report {
        scale: scale_name(),
        saturation_sps: 0.0,
        events_per_session: mean_events(exp),
        replay_bit_identical: None,
        chaos: None,
        points: vec![point],
    })
}

#[cfg(not(unix))]
fn connect_mode(
    _exp: &Experiment,
    _sock: &std::path::Path,
    _opts: &Options,
) -> Result<Report, RhmdError> {
    Err(RhmdError::config("--connect is only supported on Unix"))
}
