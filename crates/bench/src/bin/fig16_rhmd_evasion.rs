//! Regenerates paper Fig 16 (RHMD evasion resilience).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::resilient::fig16(&exp));
}
