//! Regenerates the extension experiments: deterministic ensembles vs RHMDs,
//! the non-stationary RHMD of paper §8.3, the unsupervised anomaly HMD, a
//! random-forest victim, and the stochastic-rounding defense.

use rhmd_bench::figures::extensions;
use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", extensions::ext_ensemble_vs_rhmd(&exp));
    println!("{}", extensions::ext_anomaly_detector(&exp));
    println!("{}", extensions::ext_random_forest_victim(&exp));
    println!("{}", extensions::ext_dormant_malware(&exp));
    println!(
        "{}",
        rhmd_bench::figures::resilient::ext_stochastic_defense(&exp)
    );
}
