//! Regenerates paper Fig 3b (reverse-engineering the feature vector).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::reveng::fig03_feature(&exp));
}
