//! Regenerates paper Fig 10 (weighted injection).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::evasion::fig10(&exp));
}
