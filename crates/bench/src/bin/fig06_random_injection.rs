//! Regenerates paper Fig 6 (random instruction injection).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::evasion::fig06(&exp));
}
