//! Regenerates paper Figs 8a/8b (least-weight injection).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    for t in rhmd_bench::figures::evasion::fig08(&exp) { println!("{t}"); }
}
