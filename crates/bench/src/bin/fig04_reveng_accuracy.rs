//! Regenerates paper Figs 4a/4b (reverse-engineering efficiency).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    for t in rhmd_bench::figures::reveng::fig04(&exp) { println!("{t}"); }
}
