//! Regenerates paper Fig 3a (reverse-engineering the collection period).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::reveng::fig03_period(&exp));
}
