//! Regenerates the ablation studies (DESIGN.md §5): per-feature evasion,
//! the Theorem-1 probability trade-off, switching granularity, and the
//! attacker's query budget.

use rhmd_bench::figures::ablation;
use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", ablation::ablation_feature_evasion(&exp));
    println!("{}", ablation::ablation_probability_tradeoff(&exp));
    println!("{}", ablation::ablation_switching(&exp));
    println!("{}", ablation::ablation_query_budget(&exp));
    println!("{}", ablation::ablation_minimal_overhead(&exp));
    println!("{}", ablation::ablation_verdict_policy(&exp));
}
