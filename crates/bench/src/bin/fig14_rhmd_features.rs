//! Regenerates paper Figs 14a/14b (RHMD reverse-engineering, feature diversity).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    for t in rhmd_bench::figures::resilient::fig14(&exp) { println!("{t}"); }
}
