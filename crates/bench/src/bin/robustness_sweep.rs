//! Robustness sweep: detection quality under counter fault injection.
//!
//! Sweeps fault intensity × kind over the held-out test programs and
//! reports how each detector family degrades: a single LR and NN baseline,
//! the deterministic majority ensemble, and a 6-detector RHMD pool. The
//! claim under test: RHMD's pooled quorum degrades no faster than its best
//! base detector, because abstention removes corrupted windows from the
//! vote instead of letting them mis-vote.
//!
//! Run with `RHMD_SCALE=tiny cargo run --release -p rhmd-bench --bin
//! robustness_sweep` for a quick pass. `--checkpoint <dir>` (or the
//! `RHMD_CKPT` env-var fallback) journals each fault cell durably and
//! resumes after a crash; `--metrics <path>` / `--metrics-summary` export
//! observability counters. See `--help`.

use rhmd_bench::flags::parse_env_args;
use rhmd_bench::par::{DegradedQuality, Evaluator, Pool};
use rhmd_bench::{Experiment, Table};
use rhmd_core::RhmdError;
use rhmd_core::detector::{Detector, StreamRng};
use rhmd_core::ensemble::{Combiner, EnsembleHmd};
use rhmd_core::hmd::{Hmd, QuorumVerdict};
use rhmd_core::rhmd::{build_pool, pool_specs, ResilientHmd};
use rhmd_core::verdict::VerdictPolicy;
use rhmd_features::vector::FeatureKind;
use rhmd_features::window::RawWindow;
use rhmd_ml::trainer::Algorithm;
use rhmd_uarch::faults::FaultConfig;

/// Windows must be at least half-full to vote.
const MIN_FILL: f64 = 0.5;
/// Programs whose surviving-window coverage drops below this abstain.
const MIN_COVERAGE: f64 = 0.25;
/// Base seed for per-program fault models.
const FAULT_SEED: u64 = 0xfa17;

/// The fault grid: identity first, then each kind at escalating intensity.
fn fault_grid() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("none", FaultConfig::none()),
        ("noise 5%", FaultConfig::noise(0.05)),
        ("noise 20%", FaultConfig::noise(0.2)),
        ("drop 10%", FaultConfig::dropping(0.1)),
        ("drop 30%", FaultConfig::dropping(0.3)),
        ("multiplex 25%", FaultConfig::multiplexed(0.25)),
        ("burst 5%", FaultConfig::bursty(0.05, 4)),
        ("saturate 12b", FaultConfig::saturating(12)),
        ("wrap 12b", FaultConfig::wrapping(12)),
    ]
}

/// Measures one detector over the fault-corrupted test split on the
/// parallel engine. Per-program fault seeds stay the historical
/// `FAULT_SEED ^ i` derivation, so the table is bit-compatible with the
/// serial sweep this replaced.
fn measure(
    engine: &Evaluator<'_>,
    test: &[usize],
    config: FaultConfig,
    quorum_of: impl Fn(usize, &[RawWindow]) -> QuorumVerdict + Sync,
) -> DegradedQuality {
    engine.degraded_quality(
        test,
        config,
        &VerdictPolicy::majority(),
        MIN_COVERAGE,
        |i| FAULT_SEED ^ i as u64,
        quorum_of,
    )
}

fn cell(q: &DegradedQuality) -> String {
    if q.abstain_rate > 0.0 {
        format!(
            "{} / {} ({}% abst)",
            Table::pct(q.sensitivity),
            Table::pct(q.specificity),
            (100.0 * q.abstain_rate).round()
        )
    } else {
        format!("{} / {}", Table::pct(q.sensitivity), Table::pct(q.specificity))
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), RhmdError> {
    let opts = parse_env_args("robustness_sweep")?;
    opts.metrics.install();
    let exp = Experiment::load();
    let spec = exp.spec(FeatureKind::Architectural, 10_000);
    let journal = rhmd_bench::ckpt::journal_with(
        opts.ckpt.as_ref(),
        "robustness",
        &format!(
            "programs={};seed={}",
            exp.config.total_programs(),
            exp.config.seed
        ),
    )?;

    eprintln!("[robustness] training detectors ...");
    let lr = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    );
    let nn = Hmd::train(
        Algorithm::Nn,
        spec,
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    );
    let ensemble = EnsembleHmd::new(
        FeatureKind::ALL
            .iter()
            .map(|&k| {
                Hmd::train(
                    Algorithm::Lr,
                    exp.spec(k, 10_000),
                    &exp.trainer,
                    &exp.traced,
                    &exp.splits.victim_train,
                )
            })
            .collect(),
        Combiner::Majority,
    );
    let rhmd: ResilientHmd = build_pool(
        Algorithm::Lr,
        pool_specs(&FeatureKind::ALL, &[10_000, 5_000], &exp.opcodes),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
        0x5eed,
    );
    assert_eq!(rhmd.detectors().len(), 6);

    let mut table = Table::new(
        "Robustness",
        "program-level sensitivity / specificity under counter fault injection \
         (majority verdict over voting windows; abstentions excluded from the vote)",
        &["fault", "LR", "NN", "Ensemble(3)", "RHMD(6)"],
    );
    let mut builder = Evaluator::builder(&exp.traced, FAULT_SEED)
        .pool(Pool::available())
        .recorder(opts.metrics.recorder()?);
    if let Some(journal) = journal {
        builder = builder.checkpoint(journal);
    }
    let engine = builder.build();
    let test = &exp.splits.attacker_test;
    let mut sweep: Vec<[DegradedQuality; 4]> = Vec::new();
    for (name, config) in fault_grid() {
        eprintln!("[robustness] fault: {name}");
        // Each (fault, detector) cell is one independent, journaled work
        // unit: a resumed run skips the finished measurements entirely.
        let (q_lr, _) = engine.unit(&format!("{name}/lr"), || {
            measure(&engine, test, config, |_, subs| lr.quorum_verdict(subs, MIN_FILL))
        })?;
        let (q_nn, _) = engine.unit(&format!("{name}/nn"), || {
            measure(&engine, test, config, |_, subs| nn.quorum_verdict(subs, MIN_FILL))
        })?;
        let (q_en, _) = engine.unit(&format!("{name}/ensemble"), || {
            measure(&engine, test, config, |_, subs| {
                ensemble.quorum_verdict(subs, MIN_FILL)
            })
        })?;
        // The serial sweep reset the pool before every program, i.e. each
        // program saw the switching stream from the construction seed — the
        // trait-path quorum with a construction-seeded StreamRng replays
        // exactly that, without shared state.
        let (q_rh, _) = engine.unit(&format!("{name}/rhmd"), || {
            measure(&engine, test, config, |_, subs| {
                Detector::quorum(&rhmd, subs, MIN_FILL, &mut StreamRng::from_seed(rhmd.seed()))
            })
        })?;
        table.push_row(vec![
            name.to_owned(),
            cell(&q_lr),
            cell(&q_nn),
            cell(&q_en),
            cell(&q_rh),
        ]);
        sweep.push([q_lr, q_nn, q_en, q_rh]);
    }
    engine.sync_checkpoint()?;
    println!("{table}");

    // Degradation summary relative to the fault-free first row.
    let mut degradation = Table::new(
        "Degradation",
        "worst-case sensitivity drop vs the fault-free baseline (percentage points)",
        &["detector", "clean sens", "worst sens", "drop"],
    );
    for (col, label) in ["LR", "NN", "Ensemble(3)", "RHMD(6)"].iter().enumerate() {
        let clean = sweep[0][col].sensitivity;
        let worst = sweep[1..]
            .iter()
            .map(|row| row[col].sensitivity)
            .fold(f64::INFINITY, f64::min);
        degradation.push_row(vec![
            (*label).to_owned(),
            Table::pct(clean),
            Table::pct(worst),
            format!("{:.1}pp", 100.0 * (clean - worst)),
        ]);
    }
    println!("{degradation}");
    opts.metrics.finish()
}
