//! Regenerates the stochastic-rounding defense table (Ext 5): the fig 14a
//! pool with quantized base detectors, deterministic vs stochastic rounding.

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!(
        "{}",
        rhmd_bench::figures::resilient::ext_stochastic_defense(&exp)
    );
}
