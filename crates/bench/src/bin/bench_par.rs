//! Throughput benchmark of the parallel corpus-evaluation engine.
//!
//! Trains one grid of detectors (5 algorithms × 6 feature specs — shared,
//! untimed), then scores every detector over the held-out corpus twice:
//! once the way the pre-engine code did it (serial loop, every detector
//! re-projecting its own datasets), once on the [`Evaluator`] (work fans
//! out over the pool, projections land in the feature-vector cache and the
//! 4 other algorithms on each spec hit instead of recomputing). Verifies
//! the two paths are bit-identical and writes the measured speedup to
//! `BENCH_par.json`.
//!
//! Run with `RHMD_SCALE=tiny cargo run --release -p rhmd-bench --bin
//! bench_par` for a quick pass.

use rhmd_bench::par::{CacheStats, Evaluator, Pool};
use rhmd_bench::Experiment;
use rhmd_core::hmd::Hmd;
use rhmd_core::retrain::detection_quality;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::metrics::auc;
use rhmd_ml::model::score_all;
use rhmd_ml::trainer::Algorithm;
use serde::Serialize;
use std::time::Instant;

// Linear/shallow models: their inference is a dot product or a short tree
// walk, so evaluation cost is dominated by window aggregation + projection
// — the part the cache elides. (NN/RF inference would dominate either
// path equally and only dilute the comparison.)
const ALGOS: [Algorithm; 3] = [Algorithm::Lr, Algorithm::Dt, Algorithm::Svm];
const PERIODS: [u32; 2] = [10_000, 5_000];

/// One detector's evaluation result — compared bit-for-bit between paths.
#[derive(Debug, PartialEq)]
struct Cell {
    label: String,
    auc: f64,
    sensitivity: f64,
    specificity: f64,
}

/// The `BENCH_par.json` document (vendored serde_json has no `json!`
/// macro, so the report is a plain derive).
#[derive(Debug, Serialize)]
struct Report {
    workload: Workload,
    threads: usize,
    available_parallelism: usize,
    serial_seconds: f64,
    serial_program_evals_per_second: f64,
    parallel_cached_seconds: f64,
    parallel_cached_program_evals_per_second: f64,
    speedup: f64,
    cache_hit_rate: f64,
    cache: CacheStats,
    results_bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct Workload {
    cells: usize,
    algorithms: usize,
    specs: usize,
    programs: usize,
    program_evaluations: usize,
}

fn specs(exp: &Experiment) -> Vec<FeatureSpec> {
    PERIODS
        .iter()
        .flat_map(|&p| FeatureKind::ALL.iter().map(move |&k| (k, p)))
        .map(|(k, p)| exp.spec(k, p))
        .collect()
}

/// Trains the detector grid once; both measured paths evaluate the *same*
/// detectors, so any timing difference is purely the evaluation engine.
fn train_grid(exp: &Experiment) -> Vec<Hmd> {
    specs(exp)
        .into_iter()
        .flat_map(|spec| {
            ALGOS.map(|algorithm| {
                Hmd::train(
                    algorithm,
                    spec.clone(),
                    &exp.trainer,
                    &exp.traced,
                    &exp.splits.victim_train,
                )
            })
        })
        .collect()
}

/// The pre-engine path: every detector re-projects its own evaluation
/// datasets from scratch, one program at a time.
fn run_serial(exp: &Experiment, grid: &mut [Hmd]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for hmd in grid {
        let test = exp.traced.window_dataset(&exp.splits.attacker_test, hmd.spec());
        let roc_auc = auc(&score_all(hmd.model(), &test), test.labels());
        let q = detection_quality(hmd, &exp.traced, &exp.splits.attacker_test);
        cells.push(Cell {
            label: format!("{}/{}", hmd.algorithm(), hmd.spec().label()),
            auc: roc_auc,
            sensitivity: q.sensitivity_unmodified,
            specificity: q.specificity,
        });
    }
    cells
}

/// The engine path: projections fan out over the pool and land in the
/// cache, so the four other algorithms on each spec hit instead of
/// recomputing.
fn run_engine(exp: &Experiment, engine: &Evaluator<'_>, grid: &[Hmd]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for hmd in grid {
        let test = engine.window_dataset(&exp.splits.attacker_test, hmd.spec());
        let roc_auc = auc(&score_all(hmd.model(), &test), test.labels());
        let q = engine.quality_hmd(hmd, &exp.splits.attacker_test);
        cells.push(Cell {
            label: format!("{}/{}", hmd.algorithm(), hmd.spec().label()),
            auc: roc_auc,
            sensitivity: q.sensitivity_unmodified,
            specificity: q.specificity,
        });
    }
    cells
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), rhmd_core::RhmdError> {
    let exp = Experiment::load();
    let pool = Pool::available();
    let programs = exp.splits.attacker_test.len();
    let cells = specs(&exp).len() * ALGOS.len();
    // Each detector walks the test split twice: window dataset for AUC,
    // program verdicts for sensitivity/specificity.
    let program_evals = cells * 2 * programs;

    eprintln!("[bench_par] training the {cells}-detector grid (shared, untimed) ...");
    let mut grid = train_grid(&exp);

    // Best of three trials per path; every engine trial starts with a cold
    // cache, so no state leaks between repetitions.
    const TRIALS: usize = 3;
    eprintln!("[bench_par] serial baseline ({cells} detectors x {programs} programs) ...");
    let mut serial = Vec::new();
    let mut serial_seconds = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        serial = run_serial(&exp, &mut grid);
        serial_seconds = serial_seconds.min(start.elapsed().as_secs_f64());
    }

    eprintln!("[bench_par] engine ({} threads + cache) ...", pool.threads());
    let mut engine = Evaluator::new(&exp.traced, pool, exp.config.seed);
    let mut parallel = Vec::new();
    let mut parallel_seconds = f64::INFINITY;
    for trial in 0..TRIALS {
        if trial > 0 {
            engine = Evaluator::new(&exp.traced, pool, exp.config.seed);
        }
        let start = Instant::now();
        parallel = run_engine(&exp, &engine, &grid);
        parallel_seconds = parallel_seconds.min(start.elapsed().as_secs_f64());
    }

    // The engine must be an optimization, not a semantic change.
    assert_eq!(serial, parallel, "engine results diverged from serial path");

    let stats = engine.cache().stats();
    let speedup = serial_seconds / parallel_seconds.max(1e-9);
    let report = Report {
        workload: Workload {
            cells,
            algorithms: ALGOS.len(),
            specs: specs(&exp).len(),
            programs,
            program_evaluations: program_evals,
        },
        threads: pool.threads(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        serial_seconds,
        serial_program_evals_per_second: program_evals as f64 / serial_seconds.max(1e-9),
        parallel_cached_seconds: parallel_seconds,
        parallel_cached_program_evals_per_second: program_evals as f64
            / parallel_seconds.max(1e-9),
        speedup,
        cache_hit_rate: stats.hit_rate(),
        cache: stats,
        results_bit_identical: true,
    };
    let path = "BENCH_par.json";
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| rhmd_core::RhmdError::config(format!("cannot serialize report: {e}")))?;
    rhmd_bench::durable::Durable::from_env()?
        .write_atomic(std::path::Path::new(path), (json + "\n").as_bytes())?;
    println!(
        "serial {serial_seconds:.2}s -> engine {parallel_seconds:.2}s \
         ({speedup:.2}x, cache hit rate {:.0}%); report in {path}",
        100.0 * stats.hit_rate()
    );
    Ok(())
}
