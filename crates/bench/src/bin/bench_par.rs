//! Throughput benchmark of the parallel corpus-evaluation engine — and the
//! observability overhead gate.
//!
//! Trains one grid of detectors (shared, untimed), then scores every
//! detector over the held-out corpus three times: once the way the
//! pre-engine code did it (serial loop, every detector re-projecting its
//! own datasets), once on the [`Evaluator`] with metrics off (work fans
//! out over the pool, projections land in the feature-vector cache), and
//! once on the engine with the metrics registry enabled. Verifies all
//! three paths are bit-identical, measures the disabled-path cost of the
//! instrumentation (a microbenched counter bump times the number of events
//! an enabled run actually records), asserts it stays under 3% of the
//! engine wall-clock, and writes everything to `BENCH_par.json`.
//!
//! Run with `RHMD_SCALE=tiny cargo run --release -p rhmd-bench --bin
//! bench_par` for a quick pass. `--metrics <path>` / `--metrics-summary`
//! additionally export the enabled pass's snapshot. See `--help`.

use rhmd_bench::flags::parse_env_args;
use rhmd_bench::metrics::preregister_standard;
use rhmd_bench::par::{CacheStats, Evaluator, Pool};
use rhmd_bench::Experiment;
use rhmd_core::hmd::Hmd;
use rhmd_core::retrain::detection_quality;
use rhmd_data::{Corpus, CorpusStore, StoreBuilder, TracedCorpus};
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::metrics::auc;
use rhmd_ml::model::{score_all, Dataset};
use rhmd_ml::trainer::Algorithm;
use rhmd_obs as obs;
use serde::Serialize;
use std::time::Instant;

// Linear/shallow models: their inference is a dot product or a short tree
// walk, so evaluation cost is dominated by window aggregation + projection
// — the part the cache elides. (NN/RF inference would dominate either
// path equally and only dilute the comparison.)
const ALGOS: [Algorithm; 3] = [Algorithm::Lr, Algorithm::Dt, Algorithm::Svm];
const PERIODS: [u32; 2] = [10_000, 5_000];

/// The acceptance ceiling on the disabled-path instrumentation cost.
const MAX_DISABLED_OVERHEAD: f64 = 0.03;

/// One detector's evaluation result — compared bit-for-bit between paths.
#[derive(Debug, PartialEq)]
struct Cell {
    label: String,
    auc: f64,
    sensitivity: f64,
    specificity: f64,
}

/// The `BENCH_par.json` document (vendored serde_json has no `json!`
/// macro, so the report is a plain derive).
#[derive(Debug, Serialize)]
struct Report {
    workload: Workload,
    threads: usize,
    available_parallelism: usize,
    serial_seconds: f64,
    serial_program_evals_per_second: f64,
    parallel_cached_seconds: f64,
    parallel_cached_program_evals_per_second: f64,
    speedup: f64,
    cache_hit_rate: f64,
    cache: CacheStats,
    results_bit_identical: bool,
    kernels: Vec<KernelBench>,
    fused: FusedKernelBench,
    quant_kernels: Vec<QuantKernelBench>,
    bench_trace: TraceBench,
    bench_store: StoreBench,
    metrics: MetricsOverhead,
}

/// One model family's kernel throughput: the same held-out feature matrix
/// scored row-by-row through [`rhmd_ml::model::Classifier::score`] and in
/// one [`rhmd_ml::model::Classifier::score_batch`] sweep, best of trials.
#[derive(Debug, Serialize)]
struct KernelBench {
    family: &'static str,
    rows: usize,
    dims: usize,
    per_row_rows_per_sec: f64,
    batch_rows_per_sec: f64,
    speedup: f64,
    /// Whether the two paths produced bit-identical scores (they share the
    /// same kernels, so anything else is a bug).
    bit_identical: bool,
}

/// The four batched model families (DT has no batched kernel of its own —
/// RF covers the tree path).
const KERNEL_FAMILIES: [Algorithm; 4] =
    [Algorithm::Lr, Algorithm::Nn, Algorithm::Rf, Algorithm::Svm];

/// Measures per-row vs batched scoring throughput per model family over the
/// held-out windows, and checks the two paths agree to the last bit.
fn kernel_benches(exp: &Experiment) -> Vec<KernelBench> {
    let spec = exp.spec(FeatureKind::Memory, 5_000);
    let train = exp.traced.window_dataset(&exp.splits.victim_train, &spec);
    let test = exp.traced.window_dataset(&exp.splits.attacker_test, &spec);
    let xs = test.matrix();
    let rows = xs.len();
    // Enough repetitions that even the linear kernels run for a measurable
    // stretch at tiny scale.
    let reps = (200_000 / rows.max(1)).max(1);
    const TRIALS: usize = 3;
    KERNEL_FAMILIES
        .iter()
        .map(|&algorithm| {
            let model = rhmd_ml::trainer::train(algorithm, &exp.trainer, &train);
            let mut per_row = vec![0.0; rows];
            let mut batch = vec![0.0; rows];
            let mut per_row_seconds = f64::INFINITY;
            let mut batch_seconds = f64::INFINITY;
            for _ in 0..TRIALS {
                let start = Instant::now();
                for _ in 0..reps {
                    for (slot, row) in per_row.iter_mut().zip(xs.rows()) {
                        *slot = model.score(std::hint::black_box(row));
                    }
                }
                per_row_seconds = per_row_seconds.min(start.elapsed().as_secs_f64());
                let start = Instant::now();
                for _ in 0..reps {
                    model.score_batch(std::hint::black_box(xs), &mut batch);
                }
                batch_seconds = batch_seconds.min(start.elapsed().as_secs_f64());
            }
            let scored = (rows * reps) as f64;
            let bit_identical = per_row
                .iter()
                .zip(&batch)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            KernelBench {
                family: algorithm.name(),
                rows,
                dims: xs.dims(),
                per_row_rows_per_sec: scored / per_row_seconds.max(1e-12),
                batch_rows_per_sec: scored / batch_seconds.max(1e-12),
                speedup: per_row_seconds / batch_seconds.max(1e-12),
                bit_identical,
            }
        })
        .collect()
}

/// The fused standardize+dot sweep, scalar vs the feature-dispatched kernel
/// (`rhmd_ml::kernel::dot_standardized`), on a synthetic wide matrix whose
/// values include the adversarial cases the kernels must agree on bit-for-bit
/// (huge magnitudes past the standardizer clamp, subnormals, NaN/Inf).
#[derive(Debug, Serialize)]
struct FusedKernelBench {
    rows: usize,
    dims: usize,
    /// Whether the crate was compiled with the `simd` cargo feature.
    simd_feature_compiled: bool,
    /// Whether AVX2 was detected at runtime, so the vector path actually ran.
    avx2_detected: bool,
    scalar_rows_per_sec: f64,
    fused_rows_per_sec: f64,
    speedup_vs_scalar: f64,
    /// Scalar and dispatched sweeps must agree to the last bit — the SIMD
    /// kernel reproduces the scalar summation order exactly.
    bit_identical: bool,
}

/// The floor the SIMD fused sweep must clear over the scalar kernels when
/// the vector path is compiled in and the CPU supports it.
const MIN_SIMD_SPEEDUP: f64 = 1.5;

/// A tiny deterministic PRNG for the synthetic kernel workload (the bench
/// must not perturb the experiment seeds).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn synthetic_value(state: &mut u64) -> f64 {
    let r = splitmix(state);
    match r % 64 {
        // Rare adversarial probes: the fused kernel zeroes non-finite
        // counters and clamps huge magnitudes; both paths must agree.
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 1e13,
        4 => -1e13,
        5 => 1e-310, // subnormal
        _ => (r >> 11) as f64 / (1u64 << 53) as f64 * 2.0e4 - 1.0e4,
    }
}

/// Benchmarks the fused standardize+dot sweep the linear detectors run per
/// window: scalar reference vs the feature-dispatched kernel.
///
/// Bit-identity is checked on an *adversarial* matrix (NaN/Inf, subnormals,
/// magnitudes past the standardizer clamp) while throughput is timed on a
/// realistic finite matrix — hardware counters never produce subnormals,
/// and a single subnormal lane drags a whole vector op through a microcoded
/// FP assist, so timing the adversarial matrix would understate both paths.
fn fused_kernel_bench() -> FusedKernelBench {
    use rhmd_ml::kernel;
    const ROWS: usize = 2_048;
    const DIMS: usize = 64;
    const REPS: usize = 100;
    const TRIALS: usize = 3;
    let mut state = 0x5eed_f00d_u64;
    let adversarial: Vec<Vec<f64>> = (0..ROWS)
        .map(|_| (0..DIMS).map(|_| synthetic_value(&mut state)).collect())
        .collect();
    // Model parameters are always finite (the standardizer floors `std` and
    // a fitter never emits NaN weights); only counter rows are adversarial.
    let mut finite = |scale: f64| {
        let r = splitmix(&mut state);
        ((r >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * scale
    };
    let w: Vec<f64> = (0..DIMS).map(|_| finite(1e-1)).collect();
    let mean: Vec<f64> = (0..DIMS).map(|_| finite(1e2)).collect();
    let std: Vec<f64> = (0..DIMS).map(|_| 1.0 + finite(10.0).abs()).collect();
    let mut state2 = 0xcafe_f00d_u64;
    let realistic: Vec<Vec<f64>> = (0..ROWS)
        .map(|_| {
            (0..DIMS)
                .map(|_| (splitmix(&mut state2) % 100_000) as f64)
                .collect()
        })
        .collect();

    let bit_identical = adversarial.iter().all(|row| {
        kernel::scalar::dot_standardized(&w, row, &mean, &std).to_bits()
            == kernel::dot_standardized(&w, row, &mean, &std).to_bits()
    }) && realistic.iter().all(|row| {
        kernel::scalar::dot_standardized(&w, row, &mean, &std).to_bits()
            == kernel::dot_standardized(&w, row, &mean, &std).to_bits()
    });

    let mut sink = 0.0f64;
    let mut scalar_seconds = f64::INFINITY;
    let mut fused_seconds = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..REPS {
            for row in &realistic {
                sink += kernel::scalar::dot_standardized(
                    std::hint::black_box(&w),
                    std::hint::black_box(row),
                    &mean,
                    &std,
                );
            }
        }
        scalar_seconds = scalar_seconds.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        for _ in 0..REPS {
            for row in &realistic {
                sink += kernel::dot_standardized(
                    std::hint::black_box(&w),
                    std::hint::black_box(row),
                    &mean,
                    &std,
                );
            }
        }
        fused_seconds = fused_seconds.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    let scored = (ROWS * REPS) as f64;
    FusedKernelBench {
        rows: ROWS,
        dims: DIMS,
        simd_feature_compiled: cfg!(feature = "simd"),
        avx2_detected: kernel::simd::avx2_active(),
        scalar_rows_per_sec: scored / scalar_seconds.max(1e-12),
        fused_rows_per_sec: scored / fused_seconds.max(1e-12),
        speedup_vs_scalar: scalar_seconds / fused_seconds.max(1e-12),
        bit_identical,
    }
}

/// One quantized model's error-envelope and throughput evidence: the
/// quantized scores must sit inside the analytic bound per row, and the
/// batched path must reproduce per-row scoring bit-for-bit.
#[derive(Debug, Serialize)]
struct QuantKernelBench {
    family: &'static str,
    config: String,
    rows: usize,
    max_abs_error: f64,
    max_error_bound: f64,
    within_envelope: bool,
    batch_bit_identical: bool,
    batch_rows_per_sec: f64,
}

/// Scores `exact` and `quant` over the held-out windows, checking the
/// analytic per-row error envelope and batch/per-row bit-identity.
fn quant_bench(
    family: &'static str,
    config: rhmd_ml::QuantConfig,
    exact: &dyn rhmd_ml::model::Classifier,
    quant: &dyn rhmd_ml::model::Classifier,
    bound: impl Fn(&[f64]) -> f64,
    xs: &rhmd_ml::FeatureMatrix,
) -> QuantKernelBench {
    let rows = xs.len();
    let mut max_abs_error = 0.0f64;
    let mut max_error_bound = 0.0f64;
    let mut within_envelope = true;
    let mut per_row = vec![0.0; rows];
    for (slot, row) in per_row.iter_mut().zip(xs.rows()) {
        *slot = quant.score(row);
        let err = (*slot - exact.score(row)).abs();
        let env = bound(row);
        max_abs_error = max_abs_error.max(err);
        max_error_bound = max_error_bound.max(env);
        within_envelope &= err <= env + 1e-9;
    }
    let mut batch = vec![0.0; rows];
    let reps = (200_000 / rows.max(1)).max(1);
    let mut batch_seconds = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            quant.score_batch(std::hint::black_box(xs), &mut batch);
        }
        batch_seconds = batch_seconds.min(start.elapsed().as_secs_f64());
    }
    QuantKernelBench {
        family,
        config: format!("{}/{}", config.bits.name(), config.rounding.name()),
        rows,
        max_abs_error,
        max_error_bound,
        within_envelope,
        batch_bit_identical: per_row
            .iter()
            .zip(&batch)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        batch_rows_per_sec: (rows * reps) as f64 / batch_seconds.max(1e-12),
    }
}

/// Builds int4/int8/int16 × nearest/stochastic variants of the linear +
/// MLP detectors and pins each one inside its error envelope (int4 is the
/// width coarse enough for stochastic rounding to act as a defense, so its
/// envelope is the one the resilience experiments lean on).
fn quant_benches(exp: &Experiment) -> Vec<QuantKernelBench> {
    use rhmd_ml::{QuantBits, QuantConfig, QuantizedLinear, QuantizedMlp};
    let spec = exp.spec(FeatureKind::Memory, 5_000);
    let train = exp.traced.window_dataset(&exp.splits.victim_train, &spec);
    let test = exp.traced.window_dataset(&exp.splits.attacker_test, &spec);
    let xs = test.matrix();
    let configs = [
        QuantConfig::nearest(QuantBits::Int8),
        QuantConfig::nearest(QuantBits::Int16),
        QuantConfig::stochastic(QuantBits::Int16, 0xbead),
        QuantConfig::stochastic(QuantBits::Int4, 0xbead),
    ];
    let lr = rhmd_ml::LogisticRegression::fit(&exp.trainer.lr, &train);
    let svm = rhmd_ml::LinearSvm::fit(&exp.trainer.svm, &train);
    let nn = rhmd_ml::Mlp::fit(&exp.trainer.mlp, &train);
    let mut out = Vec::new();
    for config in configs {
        let qlr = QuantizedLinear::from_lr(&lr, config, &train);
        out.push(quant_bench("LR", config, &lr, &qlr, |x| qlr.score_error_bound(x), xs));
        let qsvm = QuantizedLinear::from_svm(&svm, config, &train);
        out.push(quant_bench("SVM", config, &svm, &qsvm, |x| qsvm.score_error_bound(x), xs));
        let qnn = QuantizedMlp::from_mlp(&nn, config, &train);
        out.push(quant_bench("NN", config, &nn, &qnn, |x| qnn.score_error_bound(x), xs));
    }
    out
}

/// The trace-phase hot path: the seed-era two-phase pipeline (per-event
/// interpreter → buffered subwindows → per-spec projection) against the
/// batched flat-IR streaming pass (one execution, every spec a lane,
/// rows written straight into reused buffers) — same programs, same specs.
#[derive(Debug, Serialize)]
struct TraceBench {
    programs: usize,
    lanes: usize,
    /// Committed instructions per pass, summed over the programs.
    instructions: u64,
    /// The pre-refactor path, frozen in `rhmd_uarch::reference`: reference
    /// interpreter over the seed-era scan-based µarch structures +
    /// `Vec<RawWindow>` + per-spec projection (best of trials).
    two_phase_seconds: f64,
    /// The streaming path: one batched pass per program (best of trials).
    streaming_seconds: f64,
    two_phase_minstr_per_sec: f64,
    streaming_minstr_per_sec: f64,
    /// `two_phase_seconds / streaming_seconds`.
    speedup: f64,
    /// Whether the batched subwindows AND every streamed lane's rows
    /// reproduced the two-phase pipeline bit-for-bit on every program.
    bit_identical: bool,
}

/// Benchmarks the two trace paths and pins their bit-identity.
fn trace_bench(exp: &Experiment) -> TraceBench {
    use rhmd_features::pipeline::{project_windows_into, trace_subwindows_reference};
    use rhmd_features::stream::{collect_subwindows, stream_features_into, LaneSpec};

    let specs = specs(exp);
    let limits = exp.traced.limits();
    let core_config = exp.traced.core_config();
    let corpus = exp.traced.corpus();
    let n = corpus.len().min(24);
    let lanes: Vec<LaneSpec> = specs.iter().map(LaneSpec::clean).collect();
    const TRIALS: usize = 3;

    // Correctness first: batched subwindows and streamed rows must match
    // the per-event two-phase pipeline bit-for-bit on every program.
    let mut bit_identical = true;
    let mut instructions = 0u64;
    let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
    for id in 0..n {
        let program = corpus.program(id);
        let reference = trace_subwindows_reference(program, limits, core_config);
        let (batched, summary) = collect_subwindows(program, limits, core_config);
        bit_identical &= batched == reference;
        instructions += summary.instructions;
        for buf in &mut streamed {
            buf.clear();
        }
        let mut outs: Vec<&mut Vec<f64>> = streamed.iter_mut().collect();
        stream_features_into(program, limits, core_config, &lanes, &mut outs);
        for (spec, out) in specs.iter().zip(&streamed) {
            let mut expect = Vec::new();
            project_windows_into(&reference, spec, &mut expect);
            bit_identical &= out.len() == expect.len()
                && out.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits());
        }
    }

    let mut two_phase_seconds = f64::INFINITY;
    let mut streaming_seconds = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for id in 0..n {
            let windows =
                trace_subwindows_reference(corpus.program(id), limits, core_config);
            for spec in &specs {
                let mut buf = Vec::new();
                project_windows_into(std::hint::black_box(&windows), spec, &mut buf);
                std::hint::black_box(&buf);
            }
        }
        two_phase_seconds = two_phase_seconds.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for id in 0..n {
            for buf in &mut streamed {
                buf.clear();
            }
            let mut outs: Vec<&mut Vec<f64>> = streamed.iter_mut().collect();
            stream_features_into(corpus.program(id), limits, core_config, &lanes, &mut outs);
            std::hint::black_box(&streamed);
        }
        streaming_seconds = streaming_seconds.min(start.elapsed().as_secs_f64());
    }

    TraceBench {
        programs: n,
        lanes: specs.len(),
        instructions,
        two_phase_seconds,
        streaming_seconds,
        two_phase_minstr_per_sec: instructions as f64 / 1e6 / two_phase_seconds.max(1e-12),
        streaming_minstr_per_sec: instructions as f64 / 1e6 / streaming_seconds.max(1e-12),
        speedup: two_phase_seconds / streaming_seconds.max(1e-12),
        bit_identical,
    }
}

/// The floor the streaming trace path must clear over the two-phase
/// pipeline (held conservative so tiny-scale CI runs pass; standard scale
/// lands well above it).
const MIN_TRACE_SPEEDUP: f64 = 1.5;

/// The corpus-store data plane: trace-once build cost, then the mmap'd
/// second-run read path against regenerating the same features live
/// (trace + project), with bit-identity between the two and the process
/// peak RSS as evidence the store does not inflate memory.
#[derive(Debug, Serialize)]
struct StoreBench {
    programs: usize,
    canonical: usize,
    duplicates: usize,
    dedup_ratio: f64,
    shards: usize,
    rows: u64,
    store_bytes: u64,
    /// Trace-once store build (parallel, checkpointed), paid a single time.
    build_seconds: f64,
    /// What every later run pays *without* the store: re-trace the corpus
    /// and project every grid spec.
    regenerate_seconds: f64,
    /// What a later run pays *with* the store: open, mmap, read the same
    /// datasets back through the engine (best of trials, open included).
    store_read_seconds: f64,
    /// `regenerate_seconds / store_read_seconds` — the second-run payoff.
    second_run_speedup: f64,
    /// Whether store-backed datasets matched the regenerated ones
    /// bit-for-bit (labels, dims, and every `f64` row value).
    bit_identical: bool,
    /// `VmHWM` of this process in MiB after the store pass (0.0 where
    /// procfs is unavailable) — CI bounds it.
    peak_rss_mib: f64,
}

/// The floor the mmap'd second run must clear over live regeneration.
const MIN_STORE_SPEEDUP: f64 = 5.0;

/// Peak resident set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`), or 0.0 where procfs is unavailable.
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// Bitwise dataset equality: dims, labels, and every row value's bits.
fn datasets_identical(a: &Dataset, b: &Dataset) -> bool {
    a.matrix().dims() == b.matrix().dims()
        && a.labels() == b.labels()
        && a.matrix().as_slice().len() == b.matrix().as_slice().len()
        && a.matrix()
            .as_slice()
            .iter()
            .zip(b.matrix().as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Builds a corpus store for the grid's specs in a scratch directory, then
/// times regenerating the full-corpus window datasets live against reading
/// them back through the store-backed engine.
fn store_bench(exp: &Experiment, pool: Pool) -> Result<StoreBench, rhmd_core::RhmdError> {
    let dir = std::env::temp_dir().join(format!("rhmd-bench-store-{}", std::process::id()));
    // A stale directory from a crashed run would let the builder resume
    // instead of measuring a full build.
    let _ = std::fs::remove_dir_all(&dir);
    let specs = specs(exp);
    let every: Vec<usize> = (0..exp.traced.corpus().len()).collect();

    let start = Instant::now();
    let summary = StoreBuilder::new(&dir, exp.config)
        .specs(specs.clone())
        .threads(pool.threads())
        .build()?;
    let build_seconds = start.elapsed().as_secs_f64();

    // The no-store path: trace the whole corpus from scratch and project
    // every spec, exactly what a second experiment run would redo.
    let start = Instant::now();
    let corpus = Corpus::build(&exp.config);
    let traced = TracedCorpus::trace_threads(
        corpus,
        exp.traced.limits(),
        exp.traced.core_config(),
        pool.threads(),
    );
    let live: Vec<Dataset> =
        specs.iter().map(|spec| traced.window_dataset(&every, spec)).collect();
    let regenerate_seconds = start.elapsed().as_secs_f64();
    drop(traced);

    // The store path: open + mmap + read the same datasets back. Open cost
    // is inside the timer — it is part of every second run.
    let mut store_read_seconds = f64::INFINITY;
    let mut stored: Vec<Dataset> = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        let store = CorpusStore::open(&dir)?;
        let engine = Evaluator::builder_from_store(&store, exp.config.seed).pool(pool).build();
        stored = specs.iter().map(|spec| engine.window_dataset(&every, spec)).collect();
        store_read_seconds = store_read_seconds.min(start.elapsed().as_secs_f64());
    }

    let bit_identical =
        live.len() == stored.len() && live.iter().zip(&stored).all(|(a, b)| datasets_identical(a, b));
    let peak_rss = peak_rss_mib();
    let _ = std::fs::remove_dir_all(&dir);

    Ok(StoreBench {
        programs: summary.programs,
        canonical: summary.canonical,
        duplicates: summary.duplicates,
        dedup_ratio: summary.duplicates as f64 / summary.programs.max(1) as f64,
        shards: summary.shards,
        rows: summary.rows,
        store_bytes: summary.bytes,
        build_seconds,
        regenerate_seconds,
        store_read_seconds,
        second_run_speedup: regenerate_seconds / store_read_seconds.max(1e-12),
        bit_identical,
        peak_rss_mib: peak_rss,
    })
}

/// The observability overhead gate's evidence, kept in the report so every
/// run re-documents the disabled-path cost.
#[derive(Debug, Serialize)]
struct MetricsOverhead {
    /// Engine wall-clock with the registry enabled (best of trials).
    enabled_seconds: f64,
    /// Instrumentation events one enabled engine pass records (counter
    /// increments + histogram observations).
    events_per_pass: u64,
    /// Microbenched cost of one disabled-path counter call.
    disabled_ns_per_event: f64,
    /// `events_per_pass x disabled_ns_per_event` as a fraction of the
    /// metrics-off engine wall-clock — the number gated below 3%.
    disabled_overhead_fraction: f64,
    /// Whether the enabled pass reproduced the other two bit-for-bit.
    enabled_results_bit_identical: bool,
}

fn specs(exp: &Experiment) -> Vec<FeatureSpec> {
    PERIODS
        .iter()
        .flat_map(|&p| FeatureKind::ALL.iter().map(move |&k| (k, p)))
        .map(|(k, p)| exp.spec(k, p))
        .collect()
}

/// Trains the detector grid once; all measured paths evaluate the *same*
/// detectors, so any timing difference is purely the evaluation engine.
fn train_grid(exp: &Experiment) -> Vec<Hmd> {
    specs(exp)
        .into_iter()
        .flat_map(|spec| {
            ALGOS.map(|algorithm| {
                Hmd::train(
                    algorithm,
                    spec.clone(),
                    &exp.trainer,
                    &exp.traced,
                    &exp.splits.victim_train,
                )
            })
        })
        .collect()
}

/// The pre-engine path: every detector re-projects its own evaluation
/// datasets from scratch, one program at a time.
fn run_serial(exp: &Experiment, grid: &mut [Hmd]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for hmd in grid {
        let test = exp.traced.window_dataset(&exp.splits.attacker_test, hmd.spec());
        let roc_auc = auc(&score_all(hmd.model(), &test), test.labels());
        let q = detection_quality(hmd, &exp.traced, &exp.splits.attacker_test);
        cells.push(Cell {
            label: format!("{}/{}", hmd.algorithm(), hmd.spec().label()),
            auc: roc_auc,
            sensitivity: q.sensitivity_unmodified,
            specificity: q.specificity,
        });
    }
    cells
}

/// The engine path: projections fan out over the pool and land in the
/// cache, so the other algorithms on each spec hit instead of recomputing.
fn run_engine(exp: &Experiment, engine: &Evaluator<'_>, grid: &[Hmd]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for hmd in grid {
        let test = engine.window_dataset(&exp.splits.attacker_test, hmd.spec());
        let roc_auc = auc(&score_all(hmd.model(), &test), test.labels());
        let q = engine.quality_hmd(hmd, &exp.splits.attacker_test);
        cells.push(Cell {
            label: format!("{}/{}", hmd.algorithm(), hmd.spec().label()),
            auc: roc_auc,
            sensitivity: q.sensitivity_unmodified,
            specificity: q.specificity,
        });
    }
    cells
}

/// Microbenches one disabled-path counter call (the relaxed enabled-check
/// plus early return every instrumentation site pays when metrics are off).
fn disabled_ns_per_event() -> f64 {
    assert!(!obs::enabled(), "microbench must run with metrics off");
    const OPS: u64 = 4_000_000;
    let start = Instant::now();
    for _ in 0..OPS {
        obs::incr(std::hint::black_box("bench.disabled_probe"));
    }
    start.elapsed().as_nanos() as f64 / OPS as f64
}

/// Instrumentation events recorded in a snapshot: every counter increment
/// and every histogram observation (gauges are set-once and negligible).
fn events_in(snapshot: &obs::Snapshot) -> u64 {
    let counters: u64 = snapshot.counters.values().sum();
    let observations: u64 = snapshot.histograms.values().map(|h| h.count).sum();
    counters + observations
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), rhmd_core::RhmdError> {
    let opts = parse_env_args("bench_par")?;
    // NOTE: metrics install is deliberately deferred — the serial and
    // metrics-off engine passes must run with the registry disabled, or
    // the overhead gate would be measuring an enabled run.
    let exp = Experiment::load();
    let pool = Pool::available();
    let programs = exp.splits.attacker_test.len();
    let cells = specs(&exp).len() * ALGOS.len();
    // Each detector walks the test split twice: window dataset for AUC,
    // program verdicts for sensitivity/specificity.
    let program_evals = cells * 2 * programs;

    eprintln!("[bench_par] training the {cells}-detector grid (shared, untimed) ...");
    let mut grid = train_grid(&exp);

    // Best of three trials per path; every engine trial starts with a cold
    // cache, so no state leaks between repetitions.
    const TRIALS: usize = 3;
    eprintln!("[bench_par] serial baseline ({cells} detectors x {programs} programs) ...");
    let mut serial = Vec::new();
    let mut serial_seconds = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        serial = run_serial(&exp, &mut grid);
        serial_seconds = serial_seconds.min(start.elapsed().as_secs_f64());
    }

    eprintln!("[bench_par] engine, metrics off ({} threads + cache) ...", pool.threads());
    let mut engine = Evaluator::builder(&exp.traced, exp.config.seed).pool(pool).build();
    let mut parallel = Vec::new();
    let mut parallel_seconds = f64::INFINITY;
    for trial in 0..TRIALS {
        if trial > 0 {
            engine = Evaluator::builder(&exp.traced, exp.config.seed).pool(pool).build();
        }
        let start = Instant::now();
        parallel = run_engine(&exp, &engine, &grid);
        parallel_seconds = parallel_seconds.min(start.elapsed().as_secs_f64());
    }

    // The engine must be an optimization, not a semantic change.
    assert_eq!(serial, parallel, "engine results diverged from serial path");
    let stats = engine.cache().stats();

    eprintln!("[bench_par] kernel microbench (per-row vs batch, per family) ...");
    let kernels = kernel_benches(&exp);
    for k in &kernels {
        eprintln!(
            "[bench_par]   {:>3}: per-row {:.3e} rows/s, batch {:.3e} rows/s \
             ({:.2}x, bit_identical={})",
            k.family, k.per_row_rows_per_sec, k.batch_rows_per_sec, k.speedup, k.bit_identical
        );
    }
    assert!(
        kernels.iter().all(|k| k.bit_identical),
        "batched kernels diverged from per-row scoring"
    );

    eprintln!("[bench_par] fused standardize+dot sweep (scalar vs dispatched kernel) ...");
    let fused = fused_kernel_bench();
    eprintln!(
        "[bench_par]   {}x{}: scalar {:.3e} rows/s, fused {:.3e} rows/s \
         ({:.2}x, simd={}, avx2={}, bit_identical={})",
        fused.rows,
        fused.dims,
        fused.scalar_rows_per_sec,
        fused.fused_rows_per_sec,
        fused.speedup_vs_scalar,
        fused.simd_feature_compiled,
        fused.avx2_detected,
        fused.bit_identical
    );
    // Exact mode is a pure optimization: the vector kernel replays the
    // scalar summation order, so divergence at any bit is a bug.
    assert!(fused.bit_identical, "SIMD fused sweep diverged from the scalar kernels");
    if fused.simd_feature_compiled && fused.avx2_detected {
        assert!(
            fused.speedup_vs_scalar >= MIN_SIMD_SPEEDUP,
            "SIMD fused sweep speedup {:.2}x is below the {MIN_SIMD_SPEEDUP}x floor",
            fused.speedup_vs_scalar
        );
    }

    eprintln!("[bench_par] quantized kernels (error envelope + batch identity) ...");
    let quant_kernels = quant_benches(&exp);
    for q in &quant_kernels {
        eprintln!(
            "[bench_par]   {:>3} {}: max |err| {:.3e} <= bound {:.3e} (within={}), \
             batch {:.3e} rows/s, batch_bit_identical={}",
            q.family,
            q.config,
            q.max_abs_error,
            q.max_error_bound,
            q.within_envelope,
            q.batch_rows_per_sec,
            q.batch_bit_identical
        );
    }
    assert!(
        quant_kernels.iter().all(|q| q.within_envelope),
        "a quantized model escaped its analytic error envelope"
    );
    assert!(
        quant_kernels.iter().all(|q| q.batch_bit_identical),
        "a quantized batch sweep diverged from per-row scoring"
    );

    eprintln!("[bench_par] trace pipeline (two-phase reference vs streaming flat-IR) ...");
    let bench_trace = trace_bench(&exp);
    eprintln!(
        "[bench_par]   {} programs x {} lanes, {:.1} Minstr: two-phase {:.3}s \
         ({:.1} Minstr/s) vs streaming {:.3}s ({:.1} Minstr/s) \
         ({:.2}x, bit_identical={})",
        bench_trace.programs,
        bench_trace.lanes,
        bench_trace.instructions as f64 / 1e6,
        bench_trace.two_phase_seconds,
        bench_trace.two_phase_minstr_per_sec,
        bench_trace.streaming_seconds,
        bench_trace.streaming_minstr_per_sec,
        bench_trace.speedup,
        bench_trace.bit_identical,
    );
    // The batched walk and the streaming lanes are pure optimizations:
    // every subwindow and every projected row must match the per-event
    // two-phase pipeline exactly.
    assert!(
        bench_trace.bit_identical,
        "streaming trace path diverged from the two-phase reference pipeline"
    );
    assert!(
        bench_trace.speedup >= MIN_TRACE_SPEEDUP,
        "streaming trace speedup {:.2}x is below the {MIN_TRACE_SPEEDUP}x floor \
         (two-phase {:.3}s vs streaming {:.3}s)",
        bench_trace.speedup,
        bench_trace.two_phase_seconds,
        bench_trace.streaming_seconds,
    );

    eprintln!("[bench_par] corpus store (trace-once build vs regenerate vs mmap read) ...");
    let bench_store = store_bench(&exp, pool)?;
    eprintln!(
        "[bench_par]   build {:.2}s ({} canonical of {} programs, {} shards, {:.1} MiB); \
         regenerate {:.2}s vs store read {:.3}s ({:.1}x, bit_identical={}, peak RSS {:.0} MiB)",
        bench_store.build_seconds,
        bench_store.canonical,
        bench_store.programs,
        bench_store.shards,
        bench_store.store_bytes as f64 / (1024.0 * 1024.0),
        bench_store.regenerate_seconds,
        bench_store.store_read_seconds,
        bench_store.second_run_speedup,
        bench_store.bit_identical,
        bench_store.peak_rss_mib,
    );
    // The store is a serialization of the live data plane, nothing more:
    // reading features back must reproduce regeneration bit-for-bit.
    assert!(bench_store.bit_identical, "store-backed datasets diverged from live regeneration");
    assert!(
        bench_store.second_run_speedup >= MIN_STORE_SPEEDUP,
        "store second-run speedup {:.2}x is below the {MIN_STORE_SPEEDUP}x floor \
         (regenerate {:.3}s vs store read {:.3}s)",
        bench_store.second_run_speedup,
        bench_store.regenerate_seconds,
        bench_store.store_read_seconds,
    );

    // Price the disabled path while the registry is still off, then turn
    // metrics on for the third pass.
    let ns_per_event = disabled_ns_per_event();
    eprintln!("[bench_par] engine, metrics on ...");
    obs::set_enabled(true);
    preregister_standard();
    let mut enabled = Vec::new();
    let mut enabled_seconds = f64::INFINITY;
    let mut events_per_pass = 0;
    for _ in 0..TRIALS {
        obs::reset();
        preregister_standard();
        let engine = Evaluator::builder(&exp.traced, exp.config.seed).pool(pool).build();
        let start = Instant::now();
        enabled = run_engine(&exp, &engine, &grid);
        enabled_seconds = enabled_seconds.min(start.elapsed().as_secs_f64());
        events_per_pass = events_in(&obs::snapshot());
    }

    // Metrics observe; they must never steer. All three passes agree.
    assert_eq!(
        parallel, enabled,
        "metrics-enabled engine results diverged from the metrics-off path"
    );

    let overhead = ns_per_event * events_per_pass as f64 * 1e-9 / parallel_seconds.max(1e-9);
    assert!(
        overhead < MAX_DISABLED_OVERHEAD,
        "disabled-path instrumentation overhead {:.3}% exceeds the {:.0}% gate \
         ({events_per_pass} events x {ns_per_event:.2} ns over {parallel_seconds:.3}s)",
        100.0 * overhead,
        100.0 * MAX_DISABLED_OVERHEAD,
    );
    eprintln!(
        "[bench_par] overhead gate: {events_per_pass} events x {ns_per_event:.2} ns \
         = {:.4}% of the metrics-off pass (< {:.0}% required)",
        100.0 * overhead,
        100.0 * MAX_DISABLED_OVERHEAD,
    );

    let speedup = serial_seconds / parallel_seconds.max(1e-9);
    let report = Report {
        workload: Workload {
            cells,
            algorithms: ALGOS.len(),
            specs: specs(&exp).len(),
            programs,
            program_evaluations: program_evals,
        },
        threads: pool.threads(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        serial_seconds,
        serial_program_evals_per_second: program_evals as f64 / serial_seconds.max(1e-9),
        parallel_cached_seconds: parallel_seconds,
        parallel_cached_program_evals_per_second: program_evals as f64
            / parallel_seconds.max(1e-9),
        speedup,
        cache_hit_rate: stats.hit_rate(),
        cache: stats,
        results_bit_identical: true,
        kernels,
        fused,
        quant_kernels,
        bench_trace,
        bench_store,
        metrics: MetricsOverhead {
            enabled_seconds,
            events_per_pass,
            disabled_ns_per_event: ns_per_event,
            disabled_overhead_fraction: overhead,
            enabled_results_bit_identical: true,
        },
    };
    let path = "BENCH_par.json";
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| rhmd_core::RhmdError::config(format!("cannot serialize report: {e}")))?;
    rhmd_bench::durable::Durable::from_env()?
        .write_atomic(std::path::Path::new(path), (json + "\n").as_bytes())?;
    println!(
        "serial {serial_seconds:.2}s -> engine {parallel_seconds:.2}s \
         ({speedup:.2}x, cache hit rate {:.0}%); report in {path}",
        100.0 * stats.hit_rate()
    );
    opts.metrics.finish()
}

#[derive(Debug, Serialize)]
struct Workload {
    cells: usize,
    algorithms: usize,
    specs: usize,
    programs: usize,
    program_evaluations: usize,
}
