//! Regenerates paper Fig 2 (baseline detector AUC/accuracy).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::baseline::fig02(&exp));
}
