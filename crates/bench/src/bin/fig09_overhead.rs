//! Regenerates paper Fig 9 (injection overhead).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::evasion::fig09(&exp));
}
