//! Regenerates the paper §8 Theorem 1 error band.

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::theory::thm1(&exp));
}
