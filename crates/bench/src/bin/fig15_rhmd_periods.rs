//! Regenerates paper Figs 15a/15b (RHMD reverse-engineering, feature+period diversity).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    for t in rhmd_bench::figures::resilient::fig15(&exp) { println!("{t}"); }
}
