//! Regenerates paper Fig 13 (evade-retrain generations).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::retraining::fig13(&exp));
}
