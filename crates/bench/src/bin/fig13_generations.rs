//! Regenerates paper Fig 13 (evade-retrain generations).
//!
//! Set `RHMD_CKPT=<dir>` to snapshot the game state after every generation
//! and resume after a crash.

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    match rhmd_bench::figures::retraining::fig13(&exp) {
        Ok(table) => println!("{table}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
