//! Regenerates paper Fig 13 (evade-retrain generations).
//!
//! `--checkpoint <dir>` (or the `RHMD_CKPT` env-var fallback) snapshots the
//! game state after every generation and resumes after a crash;
//! `--metrics <path>` / `--metrics-summary` export observability counters.
//! See `--help`.

use rhmd_bench::flags::parse_env_args;
use rhmd_bench::Experiment;
use rhmd_core::RhmdError;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), RhmdError> {
    let opts = parse_env_args("fig13_generations")?;
    opts.metrics.install();
    let exp = Experiment::load();
    let table = rhmd_bench::figures::retraining::fig13(&exp, opts.ckpt.as_ref())?;
    println!("{table}");
    opts.metrics.finish()
}
