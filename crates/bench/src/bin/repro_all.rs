//! Runs the full evaluation — every table and figure of the paper — and
//! writes the combined report to stdout and `EXPERIMENTS-data.txt`.
//!
//! ```sh
//! RHMD_SCALE=standard cargo run --release -p rhmd-bench --bin repro_all
//! ```

use rhmd_bench::durable::Durable;
use rhmd_bench::figures;
use rhmd_bench::{Experiment, Table};
use rhmd_core::RhmdError;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), RhmdError> {
    let exp = Experiment::load();
    let mut out = String::new();
    let record = &mut |tables: Vec<Table>| {
        for t in tables {
            println!("{t}");
            out.push_str(&t.to_string());
            out.push('\n');
        }
    };

    let t0 = std::time::Instant::now();
    let step = |name: &str| {
        eprintln!("[repro] {name} (t+{:.1}s)", t0.elapsed().as_secs_f64());
    };

    step("Fig 2: baseline detectors");
    record(vec![figures::baseline::fig02(&exp)]);
    step("Fig 3a: reverse-engineering the period");
    record(vec![figures::reveng::fig03_period(&exp)]);
    step("Fig 3b: reverse-engineering the feature");
    record(vec![figures::reveng::fig03_feature(&exp)]);
    step("Fig 4: reverse-engineering efficiency");
    record(figures::reveng::fig04(&exp));
    step("Fig 6: random injection");
    record(vec![figures::evasion::fig06(&exp)]);
    step("Fig 8: least-weight injection");
    record(figures::evasion::fig08(&exp));
    step("Fig 9: injection overhead");
    record(vec![figures::evasion::fig09(&exp)]);
    step("Fig 10: weighted injection");
    record(vec![figures::evasion::fig10(&exp)]);
    step("Fig 11: retraining sweep");
    record(figures::retraining::fig11(&exp, None)?);
    step("Fig 13: evade-retrain generations");
    record(vec![figures::retraining::fig13(&exp, None)?]);
    step("Fig 14: RHMD reverse-engineering (features)");
    record(figures::resilient::fig14(&exp));
    step("Fig 15: RHMD reverse-engineering (features + periods)");
    record(figures::resilient::fig15(&exp));
    step("Fig 16: RHMD evasion resilience");
    record(vec![figures::resilient::fig16(&exp)]);
    step("Ext 5: stochastic-rounding defense");
    record(vec![figures::resilient::ext_stochastic_defense(&exp)]);
    step("HW table");
    record(vec![figures::theory::tab_hw(&exp)]);
    step("Theorem 1 bounds");
    record(vec![figures::theory::thm1(&exp)]);
    step("done");

    let path = "EXPERIMENTS-data.txt";
    Durable::from_env()?.write_atomic(std::path::Path::new(path), out.as_bytes())?;
    eprintln!("[repro] full report written to {path}");
    Ok(())
}
