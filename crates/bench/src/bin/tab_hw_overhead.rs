//! Regenerates the paper §7 hardware overhead numbers.

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    println!("{}", rhmd_bench::figures::theory::tab_hw(&exp));
}
