//! Regenerates paper Figs 11a/11b (retraining effectiveness).
//!
//! `--checkpoint <dir>` (or the `RHMD_CKPT` env-var fallback) journals each
//! sweep point durably and resumes after a crash; `--metrics <path>` /
//! `--metrics-summary` export observability counters. See `--help`.

use rhmd_bench::flags::parse_env_args;
use rhmd_bench::Experiment;
use rhmd_core::RhmdError;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), RhmdError> {
    let opts = parse_env_args("fig11_retrain")?;
    opts.metrics.install();
    let exp = Experiment::load();
    let tables = rhmd_bench::figures::retraining::fig11(&exp, opts.ckpt.as_ref())?;
    for t in tables {
        println!("{t}");
    }
    opts.metrics.finish()
}
