//! Regenerates paper Figs 11a/11b (retraining effectiveness).

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    for t in rhmd_bench::figures::retraining::fig11(&exp) { println!("{t}"); }
}
