//! Regenerates paper Figs 11a/11b (retraining effectiveness).
//!
//! Set `RHMD_CKPT=<dir>` to journal each sweep point durably and resume
//! after a crash.

use rhmd_bench::Experiment;

fn main() {
    let exp = Experiment::load();
    match rhmd_bench::figures::retraining::fig11(&exp) {
        Ok(tables) => {
            for t in tables {
                println!("{t}");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
