//! Integration tests of the checkpoint/resume subsystem: a run interrupted
//! mid-sweep and resumed from its journal produces output bit-identical to
//! an uninterrupted run — including under injected I/O faults and with the
//! watchdog pool doing the computing.

use rhmd_bench::ckpt::{Journal, Manifest};
use rhmd_bench::durable::{Durable, FaultPlane, RetryPolicy};
use rhmd_bench::par::{Pool, WatchdogConfig};
use rhmd_core::RhmdError;
use rhmd_trace::seed::{derive_seed, splitmix64};
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rhmd-ckpt-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic "cell" computation the fake sweep journals: a pure
/// function of (run seed, unit index) exercising exact f64 round-trips.
fn cell_value(seed: u64, unit: usize) -> Vec<f64> {
    let s = derive_seed(seed, unit as u64);
    (0..4)
        .map(|k| {
            let bits = splitmix64(s ^ k);
            // A fully general mantissa, not a round number: resumes must
            // reproduce every bit through the JSON round-trip.
            (bits >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

/// Runs the fake sweep over `journal`, computing only units the journal
/// does not already hold, and returns all values in unit order.
fn run_sweep(journal: &mut Journal, units: usize, seed: u64) -> Result<Vec<Vec<f64>>, RhmdError> {
    let mut out = Vec::new();
    for unit in 0..units {
        let (value, _resumed) =
            journal.unit(&format!("cell/{unit}"), || cell_value(seed, unit))?;
        out.push(value);
    }
    journal.sync()?;
    Ok(out)
}

#[test]
fn interrupted_sweep_resumes_bit_identical() {
    const UNITS: usize = 12;
    const SEED: u64 = 0xc4a1;
    let manifest = Manifest::new("it-sweep", "units=12;seed=0xc4a1");

    // Golden: one uninterrupted run.
    let clean_dir = temp_dir("clean");
    let mut clean = Journal::create(&clean_dir, &manifest, Durable::new(), 1).unwrap();
    let golden = run_sweep(&mut clean, UNITS, SEED).unwrap();

    // "Crashed" run: journal 5 units, then drop the journal on the floor
    // without any graceful shutdown (the in-memory state is simply lost,
    // as after SIGKILL; `checkpoint_every = 1` syncs each record).
    let dir = temp_dir("crash");
    {
        let mut first = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
        let partial = run_sweep(&mut first, 5, SEED).unwrap();
        assert_eq!(partial.len(), 5);
    }

    // Resume: creating over an existing checkpoint dir replays the journal.
    let mut resumed = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
    assert_eq!(resumed.resumed_units(), 5, "journal must replay the 5 finished units");
    assert!(resumed.is_done("cell/0") && resumed.is_done("cell/4"));
    assert!(!resumed.is_done("cell/5"));
    let out = run_sweep(&mut resumed, UNITS, SEED).unwrap();

    assert_eq!(out.len(), golden.len());
    for (unit, (a, b)) in out.iter().zip(&golden).enumerate() {
        let a_bits: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
        let b_bits: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "unit {unit} diverged after resume");
    }

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_under_injected_faults_matches_golden() {
    const UNITS: usize = 10;
    const SEED: u64 = 0xfa57;
    let manifest = Manifest::new("it-faults", "units=10;seed=0xfa57");

    let clean_dir = temp_dir("faults-clean");
    let mut clean = Journal::create(&clean_dir, &manifest, Durable::new(), 1).unwrap();
    let golden = run_sweep(&mut clean, UNITS, SEED).unwrap();

    // 20% transient failures + 20% short writes on every journal
    // operation: retry/backoff must carry the run — and the resume — to
    // completion with the same bits.
    let faulty = || {
        let mut plane = FaultPlane::transient(0.2, 0xd1ce);
        plane.short_write_rate = 0.2;
        Durable::with_plane(
            plane,
            RetryPolicy {
                max_attempts: 64,
                ..RetryPolicy::fast()
            },
        )
    };
    let dir = temp_dir("faults-crash");
    {
        let mut first = Journal::create(&dir, &manifest, faulty(), 1).unwrap();
        run_sweep(&mut first, 7, SEED).unwrap();
    }
    let mut resumed = Journal::create(&dir, &manifest, faulty(), 1).unwrap();
    assert_eq!(resumed.resumed_units(), 7);
    let out = run_sweep(&mut resumed, UNITS, SEED).unwrap();
    for (unit, (a, b)) in out.iter().zip(&golden).enumerate() {
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "unit {unit} diverged under faults"
        );
    }

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_different_config_is_rejected_actionably() {
    let dir = temp_dir("mismatch");
    let manifest = Manifest::new("it-mismatch", "scale=tiny;seed=1");
    {
        let mut journal = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
        run_sweep(&mut journal, 3, 1).unwrap();
    }
    let other = Manifest::new("it-mismatch", "scale=small;seed=2");
    let err = Journal::create(&dir, &other, Durable::new(), 1).unwrap_err();
    assert!(matches!(err, RhmdError::Config(_)), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("scale=tiny;seed=1"), "must quote the stored config: {msg}");
    assert!(msg.contains("scale=small;seed=2"), "must quote the requested config: {msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watchdog_pool_results_journal_and_resume_bit_identical() {
    const SEED: u64 = 0x90a7;
    let items: Vec<usize> = (0..24).collect();
    let watchdog = WatchdogConfig::new(Duration::from_secs(30));

    // Golden: watchdog pool, no journal.
    let (golden, report) = Pool::new(4)
        .map_watchdog(&items, &watchdog, |_, &x| cell_value(SEED, x))
        .unwrap();
    assert!(!report.degraded(), "clean run must not be degraded");

    // Journaled run interrupted after one batch, then resumed: the
    // journaled batches are skipped, the rest recomputed on a pool of a
    // different width, and the combined output matches the golden bits.
    let manifest = Manifest::new("it-watchdog", "items=24");
    let dir = temp_dir("watchdog");
    let batches = [&items[..8], &items[8..]];
    {
        let mut first = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
        let (batch, _) = first
            .unit("batch/0", || {
                Pool::new(4)
                    .map_watchdog(batches[0], &watchdog, |_, &x| cell_value(SEED, x))
                    .unwrap()
                    .0
            })
            .unwrap();
        assert_eq!(batch.len(), 8);
        first.sync().unwrap();
    }
    let mut resumed = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
    assert_eq!(resumed.resumed_units(), 1);
    let mut out: Vec<Vec<f64>> = Vec::new();
    for (b, batch) in batches.iter().enumerate() {
        let (values, _) = resumed
            .unit(&format!("batch/{b}"), || {
                Pool::new(2)
                    .map_watchdog(batch, &watchdog, |_, &x| cell_value(SEED, x))
                    .unwrap()
                    .0
            })
            .unwrap();
        out.extend(values);
    }
    resumed.sync().unwrap();

    assert_eq!(out.len(), golden.len());
    for (i, (a, b)) in out.iter().zip(&golden).enumerate() {
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "item {i} diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
