//! Property tests of the durable-I/O retry layer: every finite transient
//! fault schedule is absorbed, the backoff schedule is monotone and capped,
//! and fatal errors are never retried.

use proptest::prelude::*;
use rhmd_bench::durable::{fnv1a, is_transient, Durable, FaultPlane, RetryPolicy};
use rhmd_core::RhmdError;
use std::cell::Cell;
use std::io;
use std::path::Path;
use std::time::Duration;

/// A policy with nanosecond delays and an arbitrary (bounded) budget, so
/// cases with many retries still run instantly.
fn fast_policy(max_attempts: u32, jitter_seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        jitter_seed,
        ..RetryPolicy::fast()
    }
}

/// The transient error kinds [`is_transient`] recognises.
const TRANSIENT_KINDS: [io::ErrorKind; 3] = [
    io::ErrorKind::Interrupted,
    io::ErrorKind::WouldBlock,
    io::ErrorKind::TimedOut,
];

/// A sample of fatal kinds — anything not in [`TRANSIENT_KINDS`].
const FATAL_KINDS: [io::ErrorKind; 4] = [
    io::ErrorKind::NotFound,
    io::ErrorKind::PermissionDenied,
    io::ErrorKind::AlreadyExists,
    io::ErrorKind::InvalidData,
];

proptest! {
    /// Any schedule of fewer transient failures than the attempt budget
    /// eventually succeeds, with exactly `failures + 1` calls — the retry
    /// layer neither gives up early nor calls more than it must.
    #[test]
    fn finite_transient_schedules_succeed(
        failures in 0u32..8,
        budget in 8u32..32,
        kind_ix in 0usize..TRANSIENT_KINDS.len(),
        seed in any::<u64>(),
    ) {
        let d = Durable::with_plane(
            FaultPlane::transient(0.0, 1),
            fast_policy(budget, seed),
        );
        let calls = Cell::new(0u32);
        let out = d.with_retry("poke", Path::new("x"), || {
            calls.set(calls.get() + 1);
            if calls.get() <= failures {
                Err(io::Error::new(TRANSIENT_KINDS[kind_ix], "injected"))
            } else {
                Ok(calls.get())
            }
        });
        prop_assert_eq!(out.unwrap(), failures + 1);
        prop_assert_eq!(calls.get(), failures + 1);
    }

    /// A transient schedule at least as long as the budget exhausts it:
    /// exactly `budget` calls, then a typed Io error naming the operation,
    /// the path, and the attempt count.
    #[test]
    fn exhausted_budget_is_a_typed_io_error(
        budget in 1u32..12,
        seed in any::<u64>(),
    ) {
        let d = Durable::with_plane(
            FaultPlane::transient(0.0, 1),
            fast_policy(budget, seed),
        );
        let calls = Cell::new(0u32);
        let err = d
            .with_retry("append journal record", Path::new("/tmp/j.jsonl"), || {
                calls.set(calls.get() + 1);
                Err::<(), _>(io::Error::new(io::ErrorKind::Interrupted, "EINTR"))
            })
            .unwrap_err();
        prop_assert_eq!(calls.get(), budget);
        prop_assert!(matches!(err, RhmdError::Io { .. }), "{}", err);
        let msg = err.to_string();
        prop_assert!(msg.contains("append journal record"), "{}", msg);
        prop_assert!(msg.contains("/tmp/j.jsonl"), "{}", msg);
        prop_assert!(msg.contains(&format!("{budget} attempts")), "{}", msg);
    }

    /// Fatal errors are never retried, whatever the budget: one call, and
    /// the error surfaces with operation + path context.
    #[test]
    fn fatal_errors_are_never_retried(
        budget in 1u32..64,
        kind_ix in 0usize..FATAL_KINDS.len(),
        seed in any::<u64>(),
    ) {
        let kind = FATAL_KINDS[kind_ix];
        prop_assert!(!is_transient(&io::Error::new(kind, "x")));
        let d = Durable::with_plane(
            FaultPlane::transient(0.0, 1),
            fast_policy(budget, seed),
        );
        let calls = Cell::new(0u32);
        let err = d
            .with_retry("open model", Path::new("/no/such/model.json"), || {
                calls.set(calls.get() + 1);
                Err::<(), _>(io::Error::new(kind, "nope"))
            })
            .unwrap_err();
        prop_assert_eq!(calls.get(), 1);
        prop_assert!(err.to_string().contains("/no/such/model.json"), "{}", err);
    }

    /// The pre-jitter backoff schedule is monotone non-decreasing in the
    /// attempt number and never exceeds the cap, for arbitrary base/cap
    /// pairs.
    #[test]
    fn backoff_is_monotone_up_to_cap(
        base_nanos in 1u64..1_000_000,
        cap_factor in 1u64..1_000,
        seed in any::<u64>(),
    ) {
        let p = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_nanos(base_nanos),
            cap: Duration::from_nanos(base_nanos.saturating_mul(cap_factor)),
            jitter_seed: seed,
        };
        let mut last = Duration::ZERO;
        for attempt in 0..64 {
            let d = p.base_delay(attempt);
            prop_assert!(d >= last, "attempt {}: {:?} < {:?}", attempt, d, last);
            prop_assert!(d <= p.cap, "attempt {}: {:?} > cap {:?}", attempt, d, p.cap);
            last = d;
        }
        // The schedule reaches the cap once the exponential passes it.
        prop_assert_eq!(p.base_delay(63), p.cap);
    }

    /// Jitter only ever adds: the actual delay sits in
    /// `[base_delay, base_delay * 1.25]`, and is deterministic — the same
    /// (seed, attempt) pair always sleeps the same time.
    #[test]
    fn jitter_is_bounded_and_deterministic(
        attempt in 0u32..32,
        seed in any::<u64>(),
    ) {
        let p = RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() };
        let base = p.base_delay(attempt);
        let d = p.delay(attempt);
        prop_assert!(d >= base, "{:?} < base {:?}", d, base);
        let ceiling = base + Duration::from_nanos((base.as_nanos() as f64 * 0.25) as u64 + 1);
        prop_assert!(d <= ceiling, "{:?} > {:?}", d, ceiling);
        prop_assert_eq!(p.delay(attempt), d);
    }

    /// Transient classification covers exactly the retryable kinds.
    #[test]
    fn transient_classification_is_exact(kind_ix in 0usize..TRANSIENT_KINDS.len()) {
        prop_assert!(is_transient(&io::Error::new(TRANSIENT_KINDS[kind_ix], "x")));
        for kind in FATAL_KINDS {
            prop_assert!(!is_transient(&io::Error::new(kind, "x")));
        }
    }

    /// FNV-1a is stable and input-sensitive: equal inputs hash equal, and
    /// a one-byte flip changes the digest (no trivial collisions on the
    /// paths the checksum header guards).
    #[test]
    fn fnv1a_detects_single_byte_flips(
        mut bytes in proptest::collection::vec(any::<u8>(), 1..512),
        at in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let before = fnv1a(&bytes);
        prop_assert_eq!(before, fnv1a(&bytes));
        let i = at % bytes.len();
        bytes[i] ^= flip;
        prop_assert_ne!(fnv1a(&bytes), before);
    }
}
