//! Property tests of the parallel engine's determinism primitives: the
//! work-stealing pool, the per-program seed derivation, and the feature
//! cache.

use proptest::collection::vec;
use proptest::prelude::*;
use rhmd_bench::par::{FeatureCache, Pool};
use rhmd_data::parallel_map_threads;
use rhmd_features::pipeline::project_windows;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_trace::seed::{derive_seed, mix_seed, splitmix64};

proptest! {
    /// The pool is a drop-in for a serial enumerate-map at any width.
    #[test]
    fn pool_map_equals_serial_map(
        items in vec(any::<u64>(), 0..200),
        threads in 1usize..16,
    ) {
        let f = |i: usize, x: u64| x.rotate_left((i % 64) as u32) ^ i as u64;
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, &x)| f(i, x)).collect();
        let par = Pool::new(threads).map(&items, |i, &x| f(i, x));
        prop_assert_eq!(par, serial);
    }

    /// The chunked scoped-thread map (tracing's substrate) agrees too.
    #[test]
    fn parallel_map_threads_equals_serial(
        items in vec(any::<u32>(), 0..150),
        threads in 1usize..12,
    ) {
        let serial: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        let par = parallel_map_threads(threads, &items, |&x| u64::from(x) * 3 + 1);
        prop_assert_eq!(par, serial);
    }

    /// Derived seeds are pure functions of (run seed, stream id): the same
    /// pair always derives the same seed, and the derivation never depends
    /// on evaluation order.
    #[test]
    fn derive_seed_is_pure(run_seed in any::<u64>(), stream in any::<u64>()) {
        prop_assert_eq!(derive_seed(run_seed, stream), derive_seed(run_seed, stream));
    }

    /// Neighbouring stream ids — the common case: program indices 0..n —
    /// never collide under one run seed.
    #[test]
    fn derive_seed_separates_neighbouring_streams(
        run_seed in any::<u64>(),
        stream in 0u64..10_000,
    ) {
        prop_assert_ne!(derive_seed(run_seed, stream), derive_seed(run_seed, stream + 1));
    }

    /// splitmix64 is a bijection, so derived seeds inherit its full range:
    /// two run seeds give two different seed streams somewhere in 0..16.
    #[test]
    fn different_run_seeds_diverge(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let diverges = (0..16).any(|s| derive_seed(a, s) != derive_seed(b, s));
        prop_assert!(diverges);
    }

    /// Mixing a component into a seed is order-sensitive and collision-free
    /// for small component values (how stable hashes chain fields).
    #[test]
    fn mix_seed_is_order_sensitive(seed in any::<u64>(), a in 0u64..256, b in 0u64..256) {
        prop_assume!(a != b);
        prop_assert_ne!(mix_seed(mix_seed(seed, a), b), mix_seed(mix_seed(seed, b), a));
    }

    /// splitmix64 has no 2-cycles on sampled points (x -> y -> x would make
    /// two different derivations collide systematically).
    #[test]
    fn splitmix_has_no_short_cycles(x in any::<u64>()) {
        let y = splitmix64(x);
        prop_assert_ne!(y, x);
        prop_assert_ne!(splitmix64(y), x);
    }
}

/// Cache consistency against live traces costs a corpus build, so it runs
/// once over a grid instead of inside proptest's case loop.
#[test]
fn cache_serves_exactly_the_uncached_projection() {
    use rhmd_data::{Corpus, CorpusConfig, TracedCorpus};
    use rhmd_uarch::CoreConfig;

    let config = CorpusConfig::tiny();
    let traced = TracedCorpus::trace(Corpus::build(&config), config.limits(), CoreConfig::default());
    let cache = FeatureCache::new();
    for kind in FeatureKind::ALL {
        for period in [5_000u32, 10_000] {
            let spec = FeatureSpec::new(kind, period, vec![]);
            for program in 0..traced.corpus().len().min(6) {
                // Ask twice: a miss then a hit; both must equal the direct path.
                let direct = project_windows(traced.subwindows(program), &spec);
                for _ in 0..2 {
                    let cached = cache.vectors(&traced, program, &spec, None);
                    assert_eq!(cached.len(), direct.len(), "{kind} @{period} program {program}");
                    assert!(
                        cached.iter().eq(direct.iter().map(|v| v.as_slice())),
                        "{kind} @{period} program {program}"
                    );
                }
            }
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.hits, stats.misses, "every key asked exactly twice");
    assert!(stats.entries > 0);
}
