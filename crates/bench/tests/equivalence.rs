//! Serial-vs-parallel equivalence suite: the contract that `--threads N`
//! changes wall-clock and nothing else.
//!
//! Every assertion here is exact (`assert_eq!` on `f64` bit patterns, not
//! tolerances): the engine's claim is bit-exactness, so a 1-ulp drift is a
//! real bug, not noise.

use rhmd_bench::par::{Evaluator, Pool};
use rhmd_bench::Experiment;
use rhmd_core::hmd::Hmd;
use rhmd_core::retrain::detection_quality;
use rhmd_core::rhmd::{build_pool, pool_specs};
use rhmd_core::verdict::VerdictPolicy;
use rhmd_data::CorpusConfig;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::metrics::auc;
use rhmd_ml::model::score_all;
use rhmd_ml::trainer::Algorithm;
use rhmd_uarch::faults::FaultConfig;
use std::sync::OnceLock;

const THREADS: [usize; 3] = [1, 2, 8];
const SEEDS: [u64; 3] = [0, 0xda7a, u64::MAX];

/// One traced tiny corpus shared by every test in the file (tracing is the
/// expensive part and is itself covered by `trace_threads` equivalence).
fn exp() -> &'static Experiment {
    static EXP: OnceLock<Experiment> = OnceLock::new();
    EXP.get_or_init(|| Experiment::with_config(CorpusConfig::tiny()))
}

fn all_programs() -> Vec<usize> {
    (0..exp().traced.corpus().len()).collect()
}

#[test]
fn feature_vectors_identical_across_thread_counts() {
    let e = exp();
    let indices = all_programs();
    for kind in FeatureKind::ALL {
        let spec = e.spec(kind, 5_000);
        let serial: Vec<Vec<Vec<f64>>> = indices
            .iter()
            .map(|&i| e.traced.program_vectors(i, &spec))
            .collect();
        for threads in THREADS {
            let engine = Evaluator::builder(&e.traced, 0).pool(Pool::new(threads)).build();
            let parallel: Vec<_> = engine
                .pool()
                .map(&indices, |_, &i| engine.vectors(i, &spec));
            for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(s.len(), p.len(), "program {i}, {kind}, threads={threads}");
                assert!(
                    p.iter().eq(s.iter().map(|v| v.as_slice())),
                    "program {i}, {kind}, threads={threads}"
                );
            }
        }
    }
}

#[test]
fn datasets_identical_across_thread_counts_and_seeds() {
    let e = exp();
    let spec = e.spec(FeatureKind::Architectural, 10_000);
    let serial = e.traced.window_dataset(&e.splits.victim_train, &spec);
    for threads in THREADS {
        for run_seed in SEEDS {
            let engine = Evaluator::builder(&e.traced, run_seed).pool(Pool::new(threads)).build();
            let par = engine.window_dataset(&e.splits.victim_train, &spec);
            assert_eq!(par.rows(), serial.rows(), "threads={threads} seed={run_seed:#x}");
            assert_eq!(par.labels(), serial.labels());
        }
    }
}

#[test]
fn trained_models_and_aucs_identical_across_thread_counts() {
    let e = exp();
    let spec = e.spec(FeatureKind::Memory, 5_000);
    // Serial reference: the exact pre-engine training + scoring path.
    let reference = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &e.trainer,
        &e.traced,
        &e.splits.victim_train,
    );
    let ref_test = e.traced.window_dataset(&e.splits.attacker_test, &spec);
    let ref_auc = auc(&score_all(reference.model(), &ref_test), ref_test.labels());

    for threads in THREADS {
        let engine = Evaluator::builder(&e.traced, 7).pool(Pool::new(threads)).build();
        let train = engine.window_dataset(&e.splits.victim_train, &spec);
        let hmd = Hmd::train_on_dataset(Algorithm::Lr, spec.clone(), &e.trainer, &train);
        let test = engine.window_dataset(&e.splits.attacker_test, &spec);
        let roc_auc = auc(&score_all(hmd.model(), &test), test.labels());
        assert_eq!(roc_auc, ref_auc, "threads={threads}");
    }
}

#[test]
fn hmd_verdicts_and_metrics_identical_across_thread_counts() {
    let e = exp();
    let mut hmd = Hmd::train(
        Algorithm::Dt,
        e.spec(FeatureKind::Architectural, 5_000),
        &e.trainer,
        &e.traced,
        &e.splits.victim_train,
    );
    let serial = detection_quality(&mut hmd, &e.traced, &e.splits.attacker_test);
    for threads in THREADS {
        let engine = Evaluator::builder(&e.traced, 0).pool(Pool::new(threads)).build();
        let par = engine.quality_hmd(&hmd, &e.splits.attacker_test);
        assert_eq!(par.sensitivity_unmodified, serial.sensitivity_unmodified, "threads={threads}");
        assert_eq!(par.specificity, serial.specificity, "threads={threads}");
    }
}

#[test]
fn rhmd_quality_identical_across_thread_counts_and_run_seeds() {
    let e = exp();
    let rhmd = build_pool(
        Algorithm::Lr,
        pool_specs(&[FeatureKind::Memory, FeatureKind::Architectural], &[5_000], &[]),
        &e.trainer,
        &e.traced,
        &e.splits.victim_train,
        0x5eed,
    );
    for run_seed in SEEDS {
        let reference = Evaluator::builder(&e.traced, run_seed).pool(Pool::new(1)).build()
            .quality_rhmd(&rhmd, &e.splits.attacker_test);
        for threads in &THREADS[1..] {
            let par = Evaluator::builder(&e.traced, run_seed).pool(Pool::new(*threads)).build()
                .quality_rhmd(&rhmd, &e.splits.attacker_test);
            assert_eq!(
                (par.sensitivity_unmodified, par.specificity),
                (reference.sensitivity_unmodified, reference.specificity),
                "threads={threads} seed={run_seed:#x}"
            );
        }
    }
}

#[test]
fn degraded_verdicts_identical_across_thread_counts_and_fault_configs() {
    let e = exp();
    let hmd = Hmd::train(
        Algorithm::Lr,
        e.spec(FeatureKind::Architectural, 10_000),
        &e.trainer,
        &e.traced,
        &e.splits.victim_train,
    );
    let policy = VerdictPolicy::majority();
    let faults = [
        FaultConfig::none(),
        FaultConfig::noise(0.2),
        FaultConfig::dropping(0.3),
        FaultConfig::bursty(0.05, 4),
        FaultConfig::wrapping(12),
    ];
    for config in faults {
        for fault_seed in SEEDS {
            let serial = Evaluator::builder(&e.traced, 0).pool(Pool::new(1)).build().degraded_quality(
                &e.splits.attacker_test,
                config,
                &policy,
                0.25,
                |i| fault_seed ^ i as u64,
                |_, subs| hmd.quorum_verdict(subs, 0.5),
            );
            for threads in &THREADS[1..] {
                let par = Evaluator::builder(&e.traced, 0).pool(Pool::new(*threads)).build().degraded_quality(
                    &e.splits.attacker_test,
                    config,
                    &policy,
                    0.25,
                    |i| fault_seed ^ i as u64,
                    |_, subs| hmd.quorum_verdict(subs, 0.5),
                );
                assert_eq!(par, serial, "threads={threads} fault={config:?} seed={fault_seed:#x}");
            }
        }
    }
}

#[test]
fn cache_reuse_does_not_change_results() {
    let e = exp();
    let spec = e.spec(FeatureKind::Instructions, 5_000);
    let engine = Evaluator::builder(&e.traced, 3).pool(Pool::new(2)).build();
    // First pass populates the cache, second is served from it entirely.
    let cold = engine.window_dataset(&e.splits.attacker_test, &spec);
    let warm = engine.window_dataset(&e.splits.attacker_test, &spec);
    assert_eq!(cold.rows(), warm.rows());
    assert!(engine.cache().stats().hits > 0, "second pass must hit");
    // And both equal the uncached serial computation.
    let serial = e.traced.window_dataset(&e.splits.attacker_test, &spec);
    assert_eq!(warm.rows(), serial.rows());
}

#[test]
fn tracing_identical_across_thread_counts() {
    use rhmd_data::{Corpus, TracedCorpus};
    use rhmd_uarch::CoreConfig;

    let config = CorpusConfig::tiny();
    let corpus = Corpus::build(&config);
    let serial = TracedCorpus::trace_threads(
        corpus.clone(),
        config.limits(),
        CoreConfig::default(),
        1,
    );
    for threads in &THREADS[1..] {
        let par = TracedCorpus::trace_threads(
            corpus.clone(),
            config.limits(),
            CoreConfig::default(),
            *threads,
        );
        for i in 0..corpus.len() {
            assert_eq!(par.subwindows(i), serial.subwindows(i), "program {i}, threads={threads}");
        }
    }
}
