//! Criterion benchmarks of the attacker toolchain: injection rewriting,
//! evasion planning, querying, and end-to-end reverse-engineering.

use criterion::{criterion_group, criterion_main, Criterion};
use rhmd_bench::Experiment;
use rhmd_core::evasion::{plan_evasion, EvasionConfig};
use rhmd_core::hmd::{BlackBox, Hmd};
use rhmd_core::reveng::{query_dataset, reverse_engineer};
use rhmd_data::CorpusConfig;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::inject::{apply, InjectionPlan, Placement};
use rhmd_trace::isa::Opcode;

fn bench_injection(c: &mut Criterion) {
    let exp = Experiment::with_config(CorpusConfig::tiny());
    let program = exp.traced.corpus().program(0).clone();
    let mut group = c.benchmark_group("inject");
    for count in [1usize, 5, 15] {
        let plan = InjectionPlan::new(vec![Opcode::Fpu; count], Placement::EveryBlock);
        group.bench_function(format!("rewrite_{count}_per_block"), |b| {
            b.iter(|| apply(&program, &plan).1.added_bytes)
        });
    }
    group.finish();
}

fn bench_attack_steps(c: &mut Criterion) {
    let exp = Experiment::with_config(CorpusConfig::tiny());
    let spec = exp.spec(FeatureKind::Instructions, 5_000);
    let mut victim = Hmd::train(
        Algorithm::Lr,
        spec.clone(),
        &exp.trainer,
        &exp.traced,
        &exp.splits.victim_train,
    );

    let mut group = c.benchmark_group("attack");
    group.sample_size(10);

    group.bench_function("query_victim_per_program", |b| {
        let subs = exp.traced.subwindows(0).to_vec();
        b.iter(|| victim.decisions(&subs).len())
    });

    group.bench_function("build_attacker_dataset", |b| {
        b.iter(|| query_dataset(&mut victim, &exp.traced, &exp.splits.attacker_train, &spec).len())
    });

    group.bench_function("reverse_engineer_e2e", |b| {
        b.iter(|| {
            reverse_engineer(
                &mut victim,
                &exp.traced,
                &exp.splits.attacker_train,
                spec.clone(),
                Algorithm::Lr,
                &TrainerConfig::with_seed(1),
            )
        })
    });

    let surrogate = reverse_engineer(
        &mut victim,
        &exp.traced,
        &exp.splits.attacker_train,
        spec,
        Algorithm::Lr,
        &TrainerConfig::with_seed(1),
    );
    group.bench_function("plan_evasion", |b| {
        b.iter(|| plan_evasion(&surrogate, &EvasionConfig::least_weight(2)))
    });
    group.finish();
}

criterion_group!(benches, bench_injection, bench_attack_steps);
criterion_main!(benches);
