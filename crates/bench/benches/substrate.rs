//! Criterion benchmarks of the simulation substrate: program generation,
//! trace execution, microarchitecture modelling, and feature extraction.
//!
//! These quantify the cost of the "weeks of Pin runs" the paper reports,
//! as delivered by the synthetic substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rhmd_features::pipeline::trace_subwindows;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_trace::exec::{CountingSink, ExecLimits};
use rhmd_trace::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                           ProgramGenerator};
use rhmd_uarch::{CoreConfig, CoreModel};

const TRACE_INSTRUCTIONS: u64 = 100_000;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.bench_function("benign_program", |b| {
        let generator = ProgramGenerator::new(benign_profile(BenignClass::Browser));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generator.generate(seed)
        });
    });
    group.bench_function("malware_program", |b| {
        let generator = ProgramGenerator::new(malware_profile(MalwareFamily::Ransomware));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generator.generate(seed)
        });
    });
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let program = ProgramGenerator::new(benign_profile(BenignClass::SpecCompute)).generate(1);
    let limits = ExecLimits {
        max_instructions: TRACE_INSTRUCTIONS,
        max_original_instructions: u64::MAX,
        max_syscalls: u64::MAX,
        max_call_depth: 128,
    };
    let mut group = c.benchmark_group("execute");
    group.throughput(Throughput::Elements(TRACE_INSTRUCTIONS));

    group.bench_function("raw_stream", |b| {
        b.iter(|| {
            let mut sink = CountingSink::default();
            program.execute(limits, &mut sink);
            sink.total
        });
    });

    group.bench_function("with_uarch_model", |b| {
        b.iter_batched(
            || CoreModel::new(CoreConfig::default()),
            |mut core| {
                program.execute(limits, &mut core);
                core.counters().instructions
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("full_feature_trace", |b| {
        b.iter(|| trace_subwindows(&program, limits, CoreConfig::default()).len());
    });
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let program = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(2);
    let limits = ExecLimits {
        max_instructions: TRACE_INSTRUCTIONS,
        max_original_instructions: u64::MAX,
        max_syscalls: u64::MAX,
        max_call_depth: 128,
    };
    let subs = trace_subwindows(&program, limits, CoreConfig::default());
    let opcodes: Vec<_> = (0..16).map(rhmd_trace::isa::Opcode::from_index).collect();

    let mut group = c.benchmark_group("project");
    for kind in FeatureKind::ALL {
        let spec = FeatureSpec::new(kind, 10_000, opcodes.clone());
        group.bench_function(format!("{kind}"), |b| {
            b.iter(|| rhmd_features::pipeline::project_windows(&subs, &spec).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_execution, bench_projection);
criterion_main!(benches);
