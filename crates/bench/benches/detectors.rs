//! Criterion benchmarks of detector training and inference.
//!
//! Inference latency is the quantity hardware implementations care about:
//! the paper argues LR's low complexity is what makes online HMDs cheap,
//! and that RHMD adds only a detector-select on top.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rhmd_bench::Experiment;
use rhmd_core::hmd::{BlackBox, Hmd};
use rhmd_core::rhmd::{build_pool, pool_specs};
use rhmd_data::CorpusConfig;
use rhmd_features::vector::FeatureKind;
use rhmd_ml::trainer::{train, Algorithm};

fn bench_training(c: &mut Criterion) {
    let exp = Experiment::with_config(CorpusConfig::tiny());
    let spec = exp.spec(FeatureKind::Instructions, 5_000);
    let data = exp.traced.window_dataset(&exp.splits.victim_train, &spec);

    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    for algo in Algorithm::ALL {
        group.bench_function(algo.name(), |b| {
            b.iter(|| train(algo, &exp.trainer, &data));
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let exp = Experiment::with_config(CorpusConfig::tiny());
    let spec = exp.spec(FeatureKind::Instructions, 5_000);
    let data = exp.traced.window_dataset(&exp.splits.victim_train, &spec);
    let row = data.row(0).to_vec();

    let mut group = c.benchmark_group("inference_per_window");
    group.throughput(Throughput::Elements(1));
    for algo in Algorithm::ALL {
        let model = train(algo, &exp.trainer, &data);
        group.bench_function(algo.name(), |b| b.iter(|| model.predict(&row)));
    }
    group.finish();
}

fn bench_detection_stream(c: &mut Criterion) {
    let exp = Experiment::with_config(CorpusConfig::tiny());
    let subs = exp.traced.subwindows(0).to_vec();

    let mut group = c.benchmark_group("decision_stream_per_program");
    group.bench_function("single_hmd", |b| {
        let mut hmd = Hmd::train(
            Algorithm::Lr,
            exp.spec(FeatureKind::Architectural, 5_000),
            &exp.trainer,
            &exp.traced,
            &exp.splits.victim_train,
        );
        b.iter(|| hmd.label_subwindows(&subs).len());
    });
    for (name, periods) in [("rhmd_3", vec![10_000u32]), ("rhmd_6", vec![10_000, 5_000])] {
        let mut rhmd = build_pool(
            Algorithm::Lr,
            pool_specs(&FeatureKind::ALL, &periods, &exp.opcodes),
            &exp.trainer,
            &exp.traced,
            &exp.splits.victim_train,
            1,
        );
        group.bench_function(name, |b| b.iter(|| rhmd.label_subwindows(&subs).len()));
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference, bench_detection_stream);
criterion_main!(benches);
