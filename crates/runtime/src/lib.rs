//! Shared runtime plane for the RHMD reproduction.
//!
//! These modules started life scattered across `rhmd-core` (errors) and
//! `rhmd-bench` (durable I/O, checkpoint journals), which pinned them near
//! the top of the crate graph. The on-disk corpus store (`rhmd_data::store`)
//! needs all three from *below* `rhmd-core`, so they live here — just above
//! `rhmd-trace` — and the original paths re-export them unchanged:
//!
//! * [`error::RhmdError`] — the typed error hierarchy (still reachable as
//!   `rhmd_core::RhmdError`);
//! * [`durable`] — atomic writes, checksummed payloads, seeded I/O fault
//!   plane with bounded retry (still reachable as `rhmd_bench::durable`);
//! * [`ckpt`] — manifest-guarded journals for crash-tolerant, bit-identical
//!   resume (still reachable as `rhmd_bench::ckpt`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ckpt;
pub mod durable;
pub mod error;

pub use error::RhmdError;
