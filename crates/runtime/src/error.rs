//! Typed errors for fallible RHMD operations.
//!
//! Public constructors and config/persistence paths that previously panicked
//! on malformed input return [`RhmdError`] instead, so embedders and the CLI
//! can report actionable messages and exit nonzero rather than abort.

use std::fmt;

/// The error hierarchy for detector construction, calibration, persistence,
/// and user-facing configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum RhmdError {
    /// An invalid configuration value (threshold out of range, empty pool,
    /// malformed flag value, …).
    Config(String),
    /// Calibration could not run (e.g. no benign calibration programs).
    Calibration(String),
    /// A model could not be snapshotted or restored.
    Model(String),
    /// An I/O failure, with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// Malformed serialized input (bad JSON, wrong shape).
    Parse {
        /// What was being parsed (a path or a flag name).
        what: String,
        /// The underlying error message.
        message: String,
    },
    /// A persisted model's format version is not supported.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl RhmdError {
    /// Shorthand for a [`RhmdError::Config`].
    pub fn config(message: impl Into<String>) -> RhmdError {
        RhmdError::Config(message.into())
    }

    /// Shorthand for a [`RhmdError::Model`].
    pub fn model(message: impl Into<String>) -> RhmdError {
        RhmdError::Model(message.into())
    }

    /// Shorthand for a [`RhmdError::Parse`].
    pub fn parse(what: impl Into<String>, message: impl Into<String>) -> RhmdError {
        RhmdError::Parse {
            what: what.into(),
            message: message.into(),
        }
    }

    /// Shorthand for a [`RhmdError::Io`].
    pub fn io(path: impl Into<String>, message: impl Into<String>) -> RhmdError {
        RhmdError::Io {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for RhmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RhmdError::Config(m) => write!(f, "invalid configuration: {m}"),
            RhmdError::Calibration(m) => write!(f, "calibration failed: {m}"),
            RhmdError::Model(m) => write!(f, "model error: {m}"),
            RhmdError::Io { path, message } => write!(f, "{path}: {message}"),
            RhmdError::Parse { what, message } => write!(f, "cannot parse {what}: {message}"),
            RhmdError::Version { found, expected } => write!(
                f,
                "unsupported model format version {found} (this build expects {expected})"
            ),
        }
    }
}

impl std::error::Error for RhmdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = RhmdError::parse("--period", "invalid digit");
        assert_eq!(e.to_string(), "cannot parse --period: invalid digit");
        let v = RhmdError::Version {
            found: 9,
            expected: 1,
        };
        assert!(v.to_string().contains("version 9"));
        let io = RhmdError::io("model.json", "No such file or directory");
        assert!(io.to_string().starts_with("model.json:"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&RhmdError::config("x"));
    }
}
