//! Checkpoint/resume for long experiment campaigns.
//!
//! The paper's headline experiments are hours-long multi-stage sweeps — the
//! evade–retrain game plays 7+ generations, RHMD resilience sweeps grid
//! over detector pools and collection periods — and a crash at hour three
//! must not restart from zero. A checkpoint directory makes every such run
//! resumable:
//!
//! ```text
//! <dir>/manifest.json    versioned, checksummed snapshot header:
//!                        schema version + a hash of the experiment
//!                        configuration (resume refuses a mismatch)
//! <dir>/journal.jsonl    one line per completed work unit:
//!                        key \t fnv64(value) \t value-json
//! <dir>/state.json       optional sequential-state snapshot (e.g. the
//!                        evade-retrain game between generations)
//! ```
//!
//! Every write goes through [`crate::durable`]: atomic temp-file + rename +
//! fsync with checksum headers, under retry/backoff. The journal tolerates
//! a torn trailing line (the signature of a crash mid-append): replay stops
//! at the first bad line, truncates it away, and the unit is simply
//! recomputed.
//!
//! **Bit-exactness.** A resumed run returns recorded unit values verbatim
//! (serde_json round-trips `f64` exactly) and recomputes the rest with the
//! same splitmix64-derived per-unit seeds as an uninterrupted run, so final
//! output is byte-identical — which the kill-and-resume CI job asserts by
//! SIGKILLing a sweep mid-flight and diffing the resumed output against a
//! clean run.

use crate::durable::{fnv1a, Durable};
use crate::error::RhmdError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Seek;
use std::path::{Path, PathBuf};

/// Version of the checkpoint directory layout.
pub const SCHEMA_VERSION: u32 = 1;

/// The versioned manifest identifying what a checkpoint directory belongs
/// to. Resume validates all of it before trusting the journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Checkpoint layout version.
    pub schema_version: u32,
    /// Which experiment wrote this checkpoint (`"sweep"`, `"game"`, ...).
    pub experiment: String,
    /// Stable hash of the experiment configuration.
    pub config_hash: u64,
    /// Human-readable configuration summary, for mismatch messages.
    pub config_summary: String,
}

impl Manifest {
    /// A current-version manifest for `experiment` configured by `summary`.
    #[must_use]
    pub fn new(experiment: &str, summary: &str) -> Manifest {
        Manifest {
            schema_version: SCHEMA_VERSION,
            experiment: experiment.to_owned(),
            config_hash: fnv1a(summary.as_bytes()),
            config_summary: summary.to_owned(),
        }
    }
}

/// The checkpoint directory set by `RHMD_CKPT`, if any — the documented
/// fallback for experiment binaries when no `--checkpoint`/`--resume` flag
/// is given.
#[must_use]
pub fn dir_from_env() -> Option<PathBuf> {
    std::env::var_os("RHMD_CKPT").map(PathBuf::from)
}

/// Checkpointing options an experiment binary parsed from its command line
/// (`--checkpoint <dir>` / `--resume <dir>`).
///
/// Unlike the `RHMD_CKPT` fallback — which nests one subdirectory per
/// experiment so a single env var serves a whole `repro_all` run — an
/// explicit flag names the directory for exactly one experiment, so it is
/// used as given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptOptions {
    /// The checkpoint directory.
    pub dir: PathBuf,
    /// `--resume`: insist the directory already exists with a manifest
    /// (`--checkpoint` creates it, auto-resuming when it already has one).
    pub resume_only: bool,
}

impl CkptOptions {
    /// Opens the journal these options describe.
    ///
    /// # Errors
    ///
    /// See [`Journal::create`] / [`Journal::resume`]; additionally
    /// [`RhmdError::Io`] when `--resume` names a directory that does not
    /// exist.
    pub fn journal(&self, experiment: &str, summary: &str) -> Result<Journal, RhmdError> {
        let manifest = Manifest::new(experiment, summary);
        let durable = Durable::from_env()?;
        if self.resume_only {
            if !self.dir.is_dir() {
                return Err(RhmdError::io(
                    self.dir.display().to_string(),
                    "checkpoint directory does not exist; \
                     pass the directory a previous --checkpoint run created",
                ));
            }
            Journal::resume(&self.dir, &manifest, durable, 1)
        } else {
            Journal::create(&self.dir, &manifest, durable, 1)
        }
    }
}

/// Opens the journal for `experiment`: from explicit `--checkpoint` /
/// `--resume` options when given, else from the `RHMD_CKPT` env var, else
/// `Ok(None)` (checkpointing off). Announces a resume on stderr either way.
///
/// # Errors
///
/// See [`CkptOptions::journal`] and [`journal_from_env`].
pub fn journal_with(
    options: Option<&CkptOptions>,
    experiment: &str,
    summary: &str,
) -> Result<Option<Journal>, RhmdError> {
    match options {
        None => journal_from_env(experiment, summary),
        Some(options) => {
            let journal = options.journal(experiment, summary)?;
            if journal.resumed_units() > 0 {
                eprintln!(
                    "[ckpt] {experiment}: resuming, {} completed unit(s) will be skipped",
                    journal.resumed_units()
                );
            }
            Ok(Some(journal))
        }
    }
}

/// Opens (create-or-resume) a journal under `$RHMD_CKPT/<experiment>` when
/// the env var is set; `Ok(None)` means checkpointing is simply off. Each
/// experiment gets its own subdirectory so one `RHMD_CKPT` serves a whole
/// `repro_all` run.
///
/// # Errors
///
/// See [`Journal::create`].
pub fn journal_from_env(experiment: &str, summary: &str) -> Result<Option<Journal>, RhmdError> {
    match dir_from_env() {
        None => Ok(None),
        Some(dir) => {
            let manifest = Manifest::new(experiment, summary);
            let journal =
                Journal::create(&dir.join(experiment), &manifest, Durable::from_env()?, 1)?;
            if journal.resumed_units() > 0 {
                eprintln!(
                    "[ckpt] {experiment}: resuming, {} completed unit(s) will be skipped",
                    journal.resumed_units()
                );
            }
            Ok(Some(journal))
        }
    }
}

/// Runs `compute` through the journal when one is open, or directly when
/// checkpointing is off — the one-liner experiment binaries use per work
/// unit.
///
/// # Errors
///
/// See [`Journal::unit`].
pub fn unit_or_compute<T: Serialize + Deserialize>(
    journal: &mut Option<Journal>,
    key: &str,
    compute: impl FnOnce() -> T,
) -> Result<T, RhmdError> {
    match journal.as_mut() {
        Some(journal) => journal.unit(key, compute).map(|(value, _)| value),
        None => Ok(compute()),
    }
}

/// A durable journal of completed work units plus the manifest guarding it.
///
/// The core API is [`Journal::unit`]: look the key up, return the recorded
/// value if the unit already completed, otherwise compute, record, and
/// return it. Values round-trip through JSON, so recorded `f64`s come back
/// bit-identical.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    journal_path: PathBuf,
    file: std::fs::File,
    offset: u64,
    completed: HashMap<String, String>,
    resumed_units: usize,
    pending: usize,
    checkpoint_every: usize,
    durable: Durable,
}

impl Journal {
    /// Opens (creating if needed) the checkpoint directory for `manifest`.
    ///
    /// A fresh directory gets the manifest written; an existing one is
    /// validated against `manifest` and its journal replayed, so rerunning
    /// with `--checkpoint` after a crash resumes automatically.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Io`] when the directory cannot be created or read;
    /// [`RhmdError::Config`] when an existing manifest disagrees with
    /// `manifest` (different experiment, schema version, or config hash) —
    /// the message names both configurations so the user can either rerun
    /// with the original flags or pick a fresh directory.
    pub fn create(
        dir: &Path,
        manifest: &Manifest,
        durable: Durable,
        checkpoint_every: usize,
    ) -> Result<Journal, RhmdError> {
        std::fs::create_dir_all(dir).map_err(|e| {
            RhmdError::io(dir.display().to_string(), format!("create checkpoint dir: {e}"))
        })?;
        let manifest_path = dir.join("manifest.json");
        if manifest_path.exists() {
            return Journal::resume(dir, manifest, durable, checkpoint_every);
        }
        let json = serde_json::to_string_pretty(manifest)
            .map_err(|e| RhmdError::config(format!("cannot serialize manifest: {e}")))?;
        durable.write_checksummed(&manifest_path, json.as_bytes())?;
        Journal::open_journal(dir, durable, checkpoint_every, HashMap::new(), 0)
    }

    /// Resumes from an existing checkpoint directory, validating its
    /// manifest against `expected` and replaying the journal.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Io`] when the directory has no readable manifest (the
    /// message says the path is not a checkpoint directory);
    /// [`RhmdError::Config`] on a manifest mismatch;
    /// [`RhmdError::Parse`] when the manifest is corrupt.
    pub fn resume(
        dir: &Path,
        expected: &Manifest,
        durable: Durable,
        checkpoint_every: usize,
    ) -> Result<Journal, RhmdError> {
        let manifest_path = dir.join("manifest.json");
        if !manifest_path.exists() {
            return Err(RhmdError::io(
                dir.display().to_string(),
                "not a checkpoint directory (no manifest.json); \
                 pass the directory a previous --checkpoint run created",
            ));
        }
        let bytes = durable.read_checksummed(&manifest_path)?;
        let text = String::from_utf8(bytes).map_err(|e| {
            RhmdError::parse(manifest_path.display().to_string(), e.to_string())
        })?;
        let found: Manifest = serde_json::from_str(&text)
            .map_err(|e| RhmdError::parse(manifest_path.display().to_string(), e.to_string()))?;
        if found.schema_version != expected.schema_version {
            return Err(RhmdError::config(format!(
                "checkpoint schema version {} is not supported (this build writes {}); \
                 start a fresh checkpoint directory",
                found.schema_version, expected.schema_version
            )));
        }
        if found.experiment != expected.experiment {
            return Err(RhmdError::config(format!(
                "checkpoint belongs to experiment '{}', not '{}'; pick the matching \
                 command or a fresh directory",
                found.experiment, expected.experiment
            )));
        }
        if found.config_hash != expected.config_hash {
            return Err(RhmdError::config(format!(
                "checkpoint was written by a different configuration\n  \
                 checkpoint: {}\n  this run:   {}\n\
                 rerun with the original flags, or start a fresh checkpoint directory",
                found.config_summary, expected.config_summary
            )));
        }
        let (completed, keep) = replay_journal(&dir.join("journal.jsonl"), &durable)?;
        let resumed = completed.len();
        let mut journal = Journal::open_journal(dir, durable, checkpoint_every, completed, keep)?;
        journal.resumed_units = resumed;
        Ok(journal)
    }

    fn open_journal(
        dir: &Path,
        durable: Durable,
        checkpoint_every: usize,
        completed: HashMap<String, String>,
        offset: u64,
    ) -> Result<Journal, RhmdError> {
        let journal_path = dir.join("journal.jsonl");
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&journal_path)
            .map_err(|e| {
                RhmdError::io(journal_path.display().to_string(), format!("open journal: {e}"))
            })?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            journal_path,
            file,
            offset,
            completed,
            resumed_units: 0,
            pending: 0,
            checkpoint_every: checkpoint_every.max(1),
            durable,
        })
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Completed units replayed from disk at open time.
    #[must_use]
    pub fn resumed_units(&self) -> usize {
        self.resumed_units
    }

    /// Total completed units (replayed + recorded this run).
    #[must_use]
    pub fn completed_units(&self) -> usize {
        self.completed.len()
    }

    /// Whether `key` is already recorded.
    #[must_use]
    pub fn is_done(&self, key: &str) -> bool {
        self.completed.contains_key(key)
    }

    /// Runs (or skips) one work unit: if `key` is already journaled, its
    /// recorded value is returned (`cached = true`) and `compute` never
    /// runs; otherwise `compute` runs, the value is journaled, and
    /// `cached = false`.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Parse`] when a recorded value no longer deserializes as
    /// `T` (a corrupted or hand-edited journal); [`RhmdError::Io`] when the
    /// journal cannot be appended durably.
    pub fn unit<T: Serialize + Deserialize>(
        &mut self,
        key: &str,
        compute: impl FnOnce() -> T,
    ) -> Result<(T, bool), RhmdError> {
        if let Some(json) = self.completed.get(key) {
            let value = serde_json::from_str(json).map_err(|e| {
                RhmdError::parse(
                    self.journal_path.display().to_string(),
                    format!("journaled unit '{key}' is unreadable: {e}"),
                )
            })?;
            rhmd_obs::incr("ckpt.units_resumed");
            return Ok((value, true));
        }
        let value = compute();
        let json = serde_json::to_string(&value)
            .map_err(|e| RhmdError::config(format!("cannot serialize unit '{key}': {e}")))?;
        self.record(key, &json)?;
        Ok((value, false))
    }

    fn record(&mut self, key: &str, value_json: &str) -> Result<(), RhmdError> {
        debug_assert!(
            !key.contains('\t') && !key.contains('\n'),
            "journal keys must not contain tabs or newlines"
        );
        let line = format!("{key}\t{:016x}\t{value_json}\n", fnv1a(value_json.as_bytes()));
        self.offset = self.durable.append_at(
            &self.journal_path,
            &mut self.file,
            self.offset,
            line.as_bytes(),
        )?;
        rhmd_obs::incr("ckpt.journal_appends");
        self.completed.insert(key.to_owned(), value_json.to_owned());
        self.pending += 1;
        if self.pending >= self.checkpoint_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces pending journal records to disk (also called automatically
    /// every `checkpoint_every` records).
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Io`] when the fsync fails persistently.
    pub fn sync(&mut self) -> Result<(), RhmdError> {
        self.durable.sync(&self.journal_path, &mut self.file)?;
        self.pending = 0;
        Ok(())
    }

    /// Saves a sequential-state snapshot (e.g. the evade–retrain game's
    /// inter-generation state) as `state.json`, checksummed and atomic.
    ///
    /// # Errors
    ///
    /// See [`Durable::write_checksummed`].
    pub fn save_state<T: Serialize>(&self, state: &T) -> Result<(), RhmdError> {
        let json = serde_json::to_string(state)
            .map_err(|e| RhmdError::config(format!("cannot serialize state snapshot: {e}")))?;
        self.durable.write_checksummed(&self.dir.join("state.json"), json.as_bytes())
    }

    /// Loads the `state.json` snapshot, if one exists.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Parse`] when the snapshot is corrupt or no longer
    /// matches `T`; [`RhmdError::Io`] when it cannot be read.
    pub fn load_state<T: Deserialize>(&self) -> Result<Option<T>, RhmdError> {
        let path = self.dir.join("state.json");
        if !path.exists() {
            return Ok(None);
        }
        let bytes = self.durable.read_checksummed(&path)?;
        let text = String::from_utf8(bytes)
            .map_err(|e| RhmdError::parse(path.display().to_string(), e.to_string()))?;
        serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| RhmdError::parse(path.display().to_string(), e.to_string()))
    }
}

/// Replays a journal file: completed units up to the first torn or corrupt
/// line (which a crash mid-append legitimately leaves), and the byte offset
/// appends should continue from. The torn tail is truncated away so the
/// next append starts clean.
fn replay_journal(
    path: &Path,
    durable: &Durable,
) -> Result<(HashMap<String, String>, u64), RhmdError> {
    if !path.exists() {
        return Ok((HashMap::new(), 0));
    }
    let text = durable.read_to_string(path)?;
    let mut completed = HashMap::new();
    let mut keep: u64 = 0;
    for line in text.split_inclusive('\n') {
        let Some(record) = parse_journal_line(line) else {
            eprintln!(
                "[ckpt] {}: discarding torn record after {} completed unit(s) \
                 (crash mid-append); the unit will be recomputed",
                path.display(),
                completed.len()
            );
            break;
        };
        completed.insert(record.0, record.1);
        keep += line.len() as u64;
    }
    if keep < text.len() as u64 {
        let mut file = std::fs::OpenOptions::new().write(true).open(path).map_err(|e| {
            RhmdError::io(path.display().to_string(), format!("open journal for repair: {e}"))
        })?;
        file.set_len(keep).map_err(|e| {
            RhmdError::io(path.display().to_string(), format!("truncate torn journal: {e}"))
        })?;
        let _ = file.seek(std::io::SeekFrom::Start(keep));
        file.sync_data().map_err(|e| {
            RhmdError::io(path.display().to_string(), format!("fsync repaired journal: {e}"))
        })?;
    }
    Ok((completed, keep))
}

/// Parses one complete, checksum-verified journal line into `(key, json)`.
fn parse_journal_line(line: &str) -> Option<(String, String)> {
    let body = line.strip_suffix('\n')?;
    let (key, rest) = body.split_once('\t')?;
    let (crc, value_json) = rest.split_once('\t')?;
    let want = u64::from_str_radix(crc, 16).ok()?;
    if fnv1a(value_json.as_bytes()) != want {
        return None;
    }
    // The checksum guards byte integrity; type checks happen at unit() time
    // where the caller knows the expected shape.
    Some((key.to_owned(), value_json.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rhmd-ckpt-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn units_skip_on_resume_and_round_trip_floats_exactly() {
        let dir = temp_dir("units");
        let manifest = Manifest::new("sweep", "scale=tiny;algos=lr");
        let mut journal = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
        let exact = 0.1 + 0.2; // famously not 0.3; must survive the round trip
        let (v, cached) = journal.unit("a", || vec![exact, f64::MIN_POSITIVE]).unwrap();
        assert!(!cached);
        assert_eq!(v, vec![exact, f64::MIN_POSITIVE]);
        journal.sync().unwrap();
        drop(journal);

        let mut journal = Journal::resume(&dir, &manifest, Durable::new(), 1).unwrap();
        assert_eq!(journal.resumed_units(), 1);
        let (v, cached) = journal
            .unit("a", || -> Vec<f64> { panic!("completed unit must not recompute") })
            .unwrap();
        assert!(cached);
        assert!(v[0].to_bits() == exact.to_bits() && v[1] == f64::MIN_POSITIVE);
        let (w, cached) = journal.unit("b", || vec![1.5]).unwrap();
        assert!(!cached && w == vec![1.5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_line_is_discarded_and_unit_recomputed() {
        let dir = temp_dir("torn");
        let manifest = Manifest::new("sweep", "cfg");
        let mut journal = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
        journal.unit("one", || 1u32).unwrap();
        journal.unit("two", || 2u32).unwrap();
        drop(journal);
        // Tear the last line mid-record, as a crash during append would.
        let path = dir.join("journal.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 3]).unwrap();

        let mut journal = Journal::resume(&dir, &manifest, Durable::new(), 1).unwrap();
        assert_eq!(journal.resumed_units(), 1, "torn unit must not count");
        assert!(journal.is_done("one") && !journal.is_done("two"));
        let (v, cached) = journal.unit("two", || 2u32).unwrap();
        assert!(!cached && v == 2);
        // The repaired journal now replays both units cleanly.
        drop(journal);
        let journal = Journal::resume(&dir, &manifest, Durable::new(), 1).unwrap();
        assert_eq!(journal.resumed_units(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_line_checksum_ends_replay() {
        let dir = temp_dir("crc");
        let manifest = Manifest::new("sweep", "cfg");
        let mut journal = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
        journal.unit("one", || 1u32).unwrap();
        journal.unit("two", || 2u32).unwrap();
        drop(journal);
        let path = dir.join("journal.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a digit inside the second record's value.
        let tampered = text.replacen("\t2\n", "\t3\n", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        let journal = Journal::resume(&dir, &manifest, Durable::new(), 1).unwrap();
        assert_eq!(journal.resumed_units(), 1, "tampered record must be dropped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_config_and_experiment_mismatch() {
        let dir = temp_dir("mismatch");
        let manifest = Manifest::new("sweep", "scale=tiny;algos=lr,dt");
        Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();

        let other = Manifest::new("sweep", "scale=small;algos=lr,dt");
        let err = Journal::resume(&dir, &other, Durable::new(), 1).unwrap_err();
        assert!(matches!(err, RhmdError::Config(_)), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("scale=tiny") && msg.contains("scale=small"), "{msg}");

        let game = Manifest::new("game", "scale=tiny;algos=lr,dt");
        let err = Journal::resume(&dir, &game, Durable::new(), 1).unwrap_err();
        assert!(err.to_string().contains("experiment 'sweep'"), "{err}");

        // create() on an existing mismatched dir refuses too.
        let err = Journal::create(&dir, &other, Durable::new(), 1).unwrap_err();
        assert!(matches!(err, RhmdError::Config(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_non_checkpoint_dir_is_actionable() {
        let dir = temp_dir("notckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let err =
            Journal::resume(&dir, &Manifest::new("sweep", "cfg"), Durable::new(), 1).unwrap_err();
        assert!(err.to_string().contains("not a checkpoint directory"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_snapshot_round_trips() {
        let dir = temp_dir("state");
        let manifest = Manifest::new("game", "cfg");
        let journal = Journal::create(&dir, &manifest, Durable::new(), 1).unwrap();
        assert_eq!(journal.load_state::<Vec<u32>>().unwrap(), None);
        journal.save_state(&vec![3u32, 1, 4]).unwrap();
        assert_eq!(journal.load_state::<Vec<u32>>().unwrap(), Some(vec![3, 1, 4]));
        std::fs::remove_dir_all(&dir).ok();
    }
}
