//! Durable experiment I/O: atomic writes, checksummed payloads, and a
//! seeded fault plane with bounded retry/backoff.
//!
//! Long experiment campaigns die to three kinds of filesystem trouble:
//!
//! 1. **Crashes mid-write** — a SIGKILL between `write(2)` and close leaves
//!    a truncated file. [`Durable::write_atomic`] writes a temp file in the
//!    same directory, fsyncs it, renames it over the target, and fsyncs the
//!    directory, so any reader ever sees either the old bytes or the new
//!    bytes, never a tear.
//! 2. **Silent corruption** — a torn page or bit flip yields bytes that
//!    parse as garbage. [`Durable::write_checksummed`] prefixes every
//!    snapshot with a magic + FNV-1a checksum header that
//!    [`Durable::read_checksummed`] verifies before any parsing happens.
//! 3. **Transient errors** — EINTR, anti-virus scanners, NFS hiccups,
//!    overloaded disks. Every operation runs under [`RetryPolicy`]: bounded
//!    exponential backoff with deterministic jitter, retrying only errors
//!    classified transient ([`is_transient`]); fatal errors (missing
//!    directories, permission denied) surface immediately as a typed
//!    [`RhmdError`] naming the operation and path.
//!
//! The [`FaultPlane`] makes all three injectable and reproducible: seeded
//! per-operation decisions (keyed on `(seed, op counter)` via splitmix64,
//! like the counter fault plane in `rhmd_uarch::faults`) fail operations
//! with transient errors, truncate writes short, or corrupt read buffers.
//! `RHMD_IO_FAULTS=transient:0.1,corrupt:0.02,short:0.1,seed:7` turns the
//! plane on for any experiment binary; the retry layer must then carry every
//! run to completion, which the kill-and-resume CI job asserts.

use crate::error::RhmdError;
use rhmd_trace::seed::splitmix64;
use std::io::{self, Seek, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Magic line prefix of a checksummed snapshot header.
const CHECKSUM_MAGIC: &str = "rhmdck1";

/// FNV-1a 64-bit digest: tiny, dependency-free, stable across processes.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether an I/O error is worth retrying.
///
/// Transient kinds are the ones real systems recover from by waiting:
/// interrupted syscalls, would-block, timeouts (and the fault plane's
/// injected errors, which use these kinds). Everything else — missing
/// paths, permissions, read-only filesystems — is fatal: retrying cannot
/// fix it and only hides the actionable message.
#[must_use]
pub fn is_transient(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded exponential backoff with deterministic jitter.
///
/// The pre-jitter schedule is `min(base * 2^attempt, cap)` — monotone
/// non-decreasing and capped. Jitter adds up to 25% of the current delay,
/// derived from `(jitter_seed, attempt)` so two runs of the same schedule
/// sleep identically (nothing in a resumed run may depend on wall-clock
/// randomness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts before giving up (>= 1).
    pub max_attempts: u32,
    /// First retry delay.
    pub base: Duration,
    /// Ceiling on the pre-jitter delay.
    pub cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            jitter_seed: 0xbac0ff,
        }
    }
}

impl RetryPolicy {
    /// A policy with nanosecond-scale delays, for tests that exercise many
    /// retries without sleeping for real.
    #[must_use]
    pub fn fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_nanos(50),
            cap: Duration::from_nanos(400),
            jitter_seed: 0xbac0ff,
        }
    }

    /// The pre-jitter delay before retry `attempt` (0-based): exponential
    /// from `base`, saturating at `cap`. Monotone non-decreasing in
    /// `attempt`.
    #[must_use]
    pub fn base_delay(&self, attempt: u32) -> Duration {
        let factor = 1u64 << attempt.min(32);
        let nanos = (self.base.as_nanos() as u64).saturating_mul(factor);
        Duration::from_nanos(nanos).min(self.cap)
    }

    /// The actual delay before retry `attempt`: [`RetryPolicy::base_delay`]
    /// plus deterministic jitter in `[0, base_delay / 4]`.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let base = self.base_delay(attempt);
        let roll = splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37)) >> 11;
        let frac = roll as f64 / (1u64 << 53) as f64; // [0, 1)
        base + Duration::from_nanos((base.as_nanos() as f64 * 0.25 * frac) as u64)
    }
}

/// Seeded, injectable I/O fault plane.
///
/// Each guarded operation consumes one decision from a deterministic
/// per-plane stream, so a given `(seed, rate)` produces the same fault
/// schedule every run — which is what lets the retry proptests assert
/// exact behaviour and the CI fault job stay reproducible.
#[derive(Debug)]
pub struct FaultPlane {
    /// Probability a guarded operation fails with a transient error.
    pub transient_rate: f64,
    /// Probability a guarded write is cut short (partial write, then a
    /// transient error, as a real interrupted `write(2)` behaves).
    pub short_write_rate: f64,
    /// Probability a guarded read buffer gets one byte flipped.
    pub corrupt_rate: f64,
    seed: u64,
    ops: AtomicU64,
}

impl FaultPlane {
    /// A plane failing guarded operations at `transient_rate`.
    #[must_use]
    pub fn transient(rate: f64, seed: u64) -> FaultPlane {
        FaultPlane {
            transient_rate: rate,
            short_write_rate: 0.0,
            corrupt_rate: 0.0,
            seed,
            ops: AtomicU64::new(0),
        }
    }

    /// One decision in `[0, 1)` from the per-operation stream.
    fn roll(&self) -> f64 {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        (splitmix64(self.seed.wrapping_add(splitmix64(n))) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fails the current operation with a transient error at
    /// `transient_rate`.
    fn fail_point(&self, what: &str) -> io::Result<()> {
        if self.roll() < self.transient_rate {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault ({what})"),
            ));
        }
        Ok(())
    }

    /// How many bytes of `len` the current write gets to move before an
    /// injected interruption (`len` = no short write this time).
    fn short_write_len(&self, len: usize) -> usize {
        if len > 1 && self.roll() < self.short_write_rate {
            1 + (splitmix64(self.seed ^ self.ops.load(Ordering::Relaxed)) as usize) % (len - 1)
        } else {
            len
        }
    }

    /// Flips one byte of `buf` at `corrupt_rate`.
    fn maybe_corrupt(&self, buf: &mut [u8]) {
        if !buf.is_empty() && self.roll() < self.corrupt_rate {
            let at = (splitmix64(self.seed ^ 0xc0 ^ self.ops.load(Ordering::Relaxed)) as usize)
                % buf.len();
            buf[at] ^= 0x40;
        }
    }
}

/// The durable-I/O handle every experiment writer goes through: an optional
/// [`FaultPlane`] plus the [`RetryPolicy`] that absorbs its (and the real
/// world's) transient failures.
#[derive(Debug, Default)]
pub struct Durable {
    plane: Option<FaultPlane>,
    retry: RetryPolicy,
}

impl Durable {
    /// Plain durable I/O: no injected faults, default retry policy.
    #[must_use]
    pub fn new() -> Durable {
        Durable {
            plane: None,
            retry: RetryPolicy::default(),
        }
    }

    /// A handle with an explicit fault plane and policy (tests, fault
    /// campaigns).
    #[must_use]
    pub fn with_plane(plane: FaultPlane, retry: RetryPolicy) -> Durable {
        Durable {
            plane: Some(plane),
            retry,
        }
    }

    /// The handle configured by `RHMD_IO_FAULTS`
    /// (`transient:R[,short:R][,corrupt:R][,seed:N]`), or a fault-free one
    /// when the variable is unset.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Parse`] on a malformed specification.
    pub fn from_env() -> Result<Durable, RhmdError> {
        let Ok(spec) = std::env::var("RHMD_IO_FAULTS") else {
            return Ok(Durable::new());
        };
        let bad = |m: String| RhmdError::parse("RHMD_IO_FAULTS", m);
        let mut plane = FaultPlane::transient(0.0, 0x10fa);
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| bad(format!("expected key:value, got '{part}'")))?;
            let rate = || -> Result<f64, RhmdError> {
                let r: f64 = value
                    .parse()
                    .map_err(|_| bad(format!("{key} rate must be a number, got '{value}'")))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(bad(format!("{key} rate must be in [0, 1], got {r}")));
                }
                Ok(r)
            };
            match key.trim() {
                "transient" => plane.transient_rate = rate()?,
                "short" => plane.short_write_rate = rate()?,
                "corrupt" => plane.corrupt_rate = rate()?,
                "seed" => {
                    plane.seed = value
                        .parse()
                        .map_err(|_| bad(format!("seed must be an integer, got '{value}'")))?;
                }
                other => {
                    return Err(bad(format!(
                        "unknown fault key '{other}' (transient|short|corrupt|seed)"
                    )))
                }
            }
        }
        Ok(Durable {
            plane: Some(plane),
            retry: RetryPolicy::default(),
        })
    }

    /// The retry policy in effect.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Runs `f` under the retry policy, sleeping the backoff schedule
    /// between transient failures.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Io`] naming `operation` and `path` when a fatal
    /// error occurs (immediately, never retried) or when transient errors
    /// persist through every attempt.
    pub fn with_retry<T>(
        &self,
        operation: &str,
        path: &Path,
        mut f: impl FnMut() -> io::Result<T>,
    ) -> Result<T, RhmdError> {
        let attempts = self.retry.max_attempts.max(1);
        for attempt in 0..attempts {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) => {
                    rhmd_obs::incr("durable.retries");
                    if attempt + 1 == attempts {
                        return Err(RhmdError::io(
                            path.display().to_string(),
                            format!(
                                "{operation}: transient I/O error persisted \
                                 after {attempts} attempts: {e}"
                            ),
                        ));
                    }
                    std::thread::sleep(self.retry.delay(attempt));
                }
                Err(e) => {
                    return Err(RhmdError::io(
                        path.display().to_string(),
                        format!("{operation}: {e}"),
                    ))
                }
            }
        }
        unreachable!("retry loop returns on success or final attempt")
    }

    /// Writes all of `bytes` through the fault plane's short-write and
    /// fail-point gates, continuing from wherever a partial write stopped —
    /// the contract real `write(2)` callers must honour.
    fn write_all_guarded(&self, file: &mut std::fs::File, bytes: &[u8]) -> io::Result<()> {
        let mut offset = 0;
        while offset < bytes.len() {
            let rest = &bytes[offset..];
            if let Some(plane) = &self.plane {
                plane.fail_point("write")?;
                let take = plane.short_write_len(rest.len());
                if take < rest.len() {
                    file.write_all(&rest[..take])?;
                    offset += take;
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        format!("injected short write ({offset} of {} bytes)", bytes.len()),
                    ));
                }
            }
            file.write_all(rest)?;
            offset = bytes.len();
        }
        Ok(())
    }

    /// Atomically replaces `path` with `bytes`: temp file in the same
    /// directory, fsync, rename, fsync of the directory. After a crash at
    /// any point, `path` holds either its previous contents or all of
    /// `bytes` — never a prefix.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Io`] (with the operation and path) when any step
    /// fails fatally or exhausts the retry budget.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), RhmdError> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| {
                RhmdError::io(path.display().to_string(), "write: path has no file name")
            })?;
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
        rhmd_obs::incr("durable.atomic_writes");

        // Rewriting the temp file from scratch on every attempt keeps retry
        // idempotent even when a short write interrupted the previous try.
        self.with_retry("write temp file", &tmp, || {
            if let Some(plane) = &self.plane {
                plane.fail_point("create")?;
            }
            let mut file = std::fs::File::create(&tmp)?;
            self.write_all_guarded(&mut file, bytes)?;
            if let Some(plane) = &self.plane {
                plane.fail_point("fsync")?;
            }
            file.sync_all()
        })
        .inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;

        self.with_retry("rename into place", path, || {
            if let Some(plane) = &self.plane {
                plane.fail_point("rename")?;
            }
            std::fs::rename(&tmp, path)
        })
        .inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;

        // Persist the rename itself: fsync the containing directory.
        self.with_retry("fsync directory", &dir, || {
            if let Some(plane) = &self.plane {
                plane.fail_point("fsync-dir")?;
            }
            std::fs::File::open(&dir)?.sync_all()
        })
    }

    /// Atomically writes `payload` under a `rhmdck1 <fnv64> <len>` checksum
    /// header, the format every checkpoint snapshot uses.
    ///
    /// # Errors
    ///
    /// See [`Durable::write_atomic`].
    pub fn write_checksummed(&self, path: &Path, payload: &[u8]) -> Result<(), RhmdError> {
        let mut bytes =
            format!("{CHECKSUM_MAGIC} {:016x} {}\n", fnv1a(payload), payload.len()).into_bytes();
        bytes.extend_from_slice(payload);
        self.write_atomic(path, &bytes)
    }

    /// Reads and verifies a [`Durable::write_checksummed`] file, returning
    /// the payload.
    ///
    /// A checksum mismatch is retried (the fault plane injects transient
    /// read corruption; a real glitchy bus behaves the same); a mismatch
    /// that survives every attempt means the bytes on disk are bad, and
    /// surfaces as a [`RhmdError::Parse`] telling the user the snapshot is
    /// corrupt rather than feeding garbage into serde.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Io`] when the file cannot be read, [`RhmdError::Parse`]
    /// when the header is malformed or the checksum never verifies.
    pub fn read_checksummed(&self, path: &Path) -> Result<Vec<u8>, RhmdError> {
        let attempts = self.retry.max_attempts.max(1);
        for attempt in 0..attempts {
            let mut bytes = self.with_retry("read snapshot", path, || {
                if let Some(plane) = &self.plane {
                    plane.fail_point("read")?;
                }
                std::fs::read(path)
            })?;
            if let Some(plane) = &self.plane {
                plane.maybe_corrupt(&mut bytes);
            }
            match verify_checksummed(&bytes) {
                Ok(range) => return Ok(bytes[range].to_vec()),
                Err(message) => {
                    if attempt + 1 == attempts {
                        return Err(RhmdError::parse(
                            path.display().to_string(),
                            format!("corrupted snapshot ({message}); delete it or restore a backup"),
                        ));
                    }
                    std::thread::sleep(self.retry.delay(attempt));
                }
            }
        }
        unreachable!("checksum loop returns on success or final attempt")
    }

    /// Reads a whole file as a string under retry.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Io`] on fatal or persistent failure.
    pub fn read_to_string(&self, path: &Path) -> Result<String, RhmdError> {
        self.with_retry("read", path, || {
            if let Some(plane) = &self.plane {
                plane.fail_point("read")?;
            }
            std::fs::read_to_string(path)
        })
    }

    /// Appends `bytes` to `file` at `offset`, truncating any partial tail a
    /// previous interrupted attempt left, so the file never accumulates
    /// duplicate or garbled fragments. Returns the new end offset.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Io`] on fatal or persistent failure.
    pub fn append_at(
        &self,
        path: &Path,
        file: &mut std::fs::File,
        offset: u64,
        bytes: &[u8],
    ) -> Result<u64, RhmdError> {
        self.with_retry("append journal record", path, || {
            file.set_len(offset)?;
            file.seek(io::SeekFrom::Start(offset))?;
            self.write_all_guarded(file, bytes)
        })?;
        Ok(offset + bytes.len() as u64)
    }

    /// Flushes and fsyncs `file`.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Io`] on fatal or persistent failure.
    pub fn sync(&self, path: &Path, file: &mut std::fs::File) -> Result<(), RhmdError> {
        self.with_retry("fsync journal", path, || {
            if let Some(plane) = &self.plane {
                plane.fail_point("fsync")?;
            }
            file.flush()?;
            file.sync_data()
        })
    }
}

/// Verifies a checksummed byte buffer, returning the payload range.
fn verify_checksummed(bytes: &[u8]) -> Result<std::ops::Range<usize>, String> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("missing header line")?;
    let header = std::str::from_utf8(&bytes[..header_end]).map_err(|_| "non-UTF-8 header")?;
    let mut parts = header.split(' ');
    if parts.next() != Some(CHECKSUM_MAGIC) {
        return Err(format!("bad magic (expected '{CHECKSUM_MAGIC}')"));
    }
    let want: u64 = parts
        .next()
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or("unreadable checksum field")?;
    let len: usize = parts
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or("unreadable length field")?;
    let payload = &bytes[header_end + 1..];
    if payload.len() != len {
        return Err(format!("length mismatch ({} of {len} bytes)", payload.len()));
    }
    let got = fnv1a(payload);
    if got != want {
        return Err(format!("checksum mismatch ({got:016x} != {want:016x})"));
    }
    Ok(header_end + 1..bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rhmd-durable-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_round_trips_and_leaves_no_temp() {
        let dir = temp_dir("atomic");
        let path = dir.join("out.json");
        let d = Durable::new();
        d.write_atomic(&path, b"{\"x\":1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"x\":1}");
        d.write_atomic(&path, b"{\"x\":2}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"x\":2}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksummed_round_trip_and_corruption_detection() {
        let dir = temp_dir("cksum");
        let path = dir.join("snap.json");
        let d = Durable::new();
        d.write_checksummed(&path, b"payload bytes").unwrap();
        assert_eq!(d.read_checksummed(&path).unwrap(), b"payload bytes");
        // Corrupt one payload byte on disk: reads must fail as Parse, not
        // hand back garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let fast = Durable::with_plane(FaultPlane::transient(0.0, 1), RetryPolicy::fast());
        let err = fast.read_checksummed(&path).unwrap_err();
        assert!(matches!(err, RhmdError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("corrupted snapshot"), "{err}");
        // Truncation is also caught (length mismatch).
        std::fs::write(&path, &std::fs::read(&path).unwrap()[..10]).unwrap();
        assert!(fast.read_checksummed(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fatal_errors_surface_immediately_with_context() {
        let d = Durable::new();
        let calls = Cell::new(0u32);
        let err = d
            .with_retry("open model", Path::new("/no/such/model.json"), || {
                calls.set(calls.get() + 1);
                Err::<(), _>(io::Error::new(io::ErrorKind::NotFound, "nope"))
            })
            .unwrap_err();
        assert_eq!(calls.get(), 1, "fatal errors must not be retried");
        let msg = err.to_string();
        assert!(msg.contains("/no/such/model.json"), "{msg}");
        assert!(msg.contains("open model"), "{msg}");
    }

    #[test]
    fn transient_errors_retry_until_success() {
        let d = Durable::with_plane(FaultPlane::transient(0.0, 1), RetryPolicy::fast());
        let calls = Cell::new(0u32);
        let out = d
            .with_retry("poke", Path::new("x"), || {
                calls.set(calls.get() + 1);
                if calls.get() < 4 {
                    Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"))
                } else {
                    Ok(99)
                }
            })
            .unwrap();
        assert_eq!(out, 99);
        assert_eq!(calls.get(), 4);
    }

    #[test]
    fn faulty_plane_still_lands_atomic_writes() {
        let dir = temp_dir("plane");
        let path = dir.join("snap.bin");
        // A hostile schedule: 30% transient failures, 30% short writes —
        // retry must still complete every write, bit-exact.
        let d = Durable::with_plane(
            FaultPlane {
                transient_rate: 0.3,
                short_write_rate: 0.3,
                corrupt_rate: 0.0,
                seed: 7,
                ops: AtomicU64::new(0),
            },
            RetryPolicy {
                max_attempts: 64,
                ..RetryPolicy::fast()
            },
        );
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        for round in 0..5 {
            d.write_checksummed(&path, &payload).unwrap();
            assert_eq!(d.read_checksummed(&path).unwrap(), payload, "round {round}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_env_spec_parsing() {
        // from_env reads the process environment, so exercise the parser
        // through explicit construction paths instead of mutating env in a
        // multithreaded test binary.
        assert!(Durable::from_env().is_ok());
    }

    #[test]
    fn backoff_schedule_is_monotone_and_capped() {
        let p = RetryPolicy::default();
        let mut last = Duration::ZERO;
        for attempt in 0..20 {
            let d = p.base_delay(attempt);
            assert!(d >= last, "attempt {attempt}: {d:?} < {last:?}");
            assert!(d <= p.cap);
            last = d;
        }
        assert_eq!(p.base_delay(19), p.cap);
    }
}
