//! `rhmd_obs` — a dependency-free observability layer for the RHMD pipeline.
//!
//! Every stage of the pipeline (tracing, feature extraction, training,
//! quorum verdicts, the parallel evaluator, checkpointing, durable I/O,
//! fault injection) reports into one process-wide [`MetricsRegistry`]:
//! monotonic **counters**, last-write-wins **gauges**, and fixed-bucket
//! log2-nanosecond latency **histograms** fed by scoped [`Span`] timers.
//!
//! Metrics are **disabled by default**. Every recording entry point starts
//! with a single relaxed atomic load of the global enable flag and returns
//! immediately when it is off, so an uninstrumented run pays one predicted
//! branch per call site — the `bench_par` binary measures and gates this
//! disabled-path overhead. Turning metrics on cannot change any result:
//! nothing in the registry feeds back into computation, and all updates are
//! commutative atomics, so totals are identical at any thread count.
//!
//! # Examples
//!
//! ```
//! rhmd_obs::set_enabled(true);
//! rhmd_obs::add("doc.items", 3);
//! {
//!     let _span = rhmd_obs::span("doc.work");
//! } // drop records the elapsed time under "doc.work"
//! let snap = rhmd_obs::snapshot();
//! assert_eq!(snap.counters["doc.items"], 3);
//! assert_eq!(snap.histograms["doc.work"].count, 1);
//! rhmd_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log2-nanosecond histogram buckets. Bucket `0` holds zero
/// durations; bucket `i > 0` holds durations in `[2^(i-1), 2^i)` ns. The
/// last bucket absorbs everything from ~9 minutes (`2^39` ns) up.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Schema version stamped into every exported snapshot.
pub const SCHEMA_VERSION: u32 = 1;

const SHARDS: usize = 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global metrics recording on or off. Off is the default; when off,
/// every recording call is a load-and-branch no-op.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global metrics recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A map of named metrics split over independently locked shards, so
/// concurrent registration from pool workers rarely contends. The values
/// themselves are atomics behind `Arc`s: once a caller holds a handle, hot
/// updates never take a lock at all.
#[derive(Debug)]
struct ShardedMap<T> {
    shards: Vec<Mutex<HashMap<String, Arc<T>>>>,
}

impl<T> ShardedMap<T> {
    fn new() -> ShardedMap<T> {
        ShardedMap {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Arc<T>>> {
        &self.shards[(fnv1a(name.as_bytes()) as usize) % SHARDS]
    }

    fn get_or(&self, name: &str, make: impl FnOnce() -> T) -> Arc<T> {
        let mut shard = self.shard(name).lock().expect("metrics shard poisoned");
        if let Some(v) = shard.get(name) {
            return Arc::clone(v);
        }
        let v = Arc::new(make());
        shard.insert(name.to_owned(), Arc::clone(&v));
        v
    }

    fn collect(&self) -> BTreeMap<String, Arc<T>> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("metrics shard poisoned");
            for (k, v) in shard.iter() {
                out.insert(k.clone(), Arc::clone(v));
            }
        }
        out
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("metrics shard poisoned").clear();
        }
    }
}

/// A fixed-bucket log2-nanosecond latency histogram. All fields update with
/// relaxed atomics, so `count` always equals the sum of `buckets` in any
/// quiescent snapshot — the exported JSON is validated against exactly that
/// invariant in CI.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a duration: 0 for zero, else `64 - leading_zeros`,
    /// clamped into the fixed range.
    pub fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            ((64 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Histogram::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// The process-wide metrics store: sharded counters, gauges, and
/// histograms, all addressed by dotted string names (`"cache.hits"`).
///
/// Use the free functions ([`add`], [`set_gauge`], [`span`]) for
/// enable-gated recording; use the registry directly (via [`global`]) to
/// cache an [`Arc`] handle for a hot loop or to build a private registry in
/// tests.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: ShardedMap<AtomicU64>,
    gauges: ShardedMap<AtomicU64>,
    histograms: ShardedMap<Histogram>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry. The process normally uses the [`global`] one.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: ShardedMap::new(),
            gauges: ShardedMap::new(),
            histograms: ShardedMap::new(),
        }
    }

    /// Returns (registering if needed) the counter `name`. The handle can
    /// be cached: updates through it are lock-free.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        self.counters.get_or(name, || AtomicU64::new(0))
    }

    /// Returns (registering if needed) the gauge `name`. Gauges store
    /// `f64::to_bits`.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        self.gauges.get_or(name, || AtomicU64::new(0f64.to_bits()))
    }

    /// Returns (registering if needed) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histograms.get_or(name, Histogram::new)
    }

    /// Registers every name with a zero value, so exported snapshots carry
    /// the full documented key set even when nothing incremented them.
    pub fn preregister(&self, counters: &[&str], gauges: &[&str], histograms: &[&str]) {
        for name in counters {
            self.counter(name);
        }
        for name in gauges {
            self.gauge(name);
        }
        for name in histograms {
            self.histogram(name);
        }
    }

    /// A point-in-time copy of every registered metric, with
    /// deterministically (lexicographically) ordered keys.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .collect()
                .into_iter()
                .map(|(k, v)| (k, v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .collect()
                .into_iter()
                .map(|(k, v)| (k, f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .collect()
                .into_iter()
                .map(|(k, v)| (k, v.snapshot()))
                .collect(),
        }
    }

    /// Drops every registered metric. Meant for tests.
    pub fn clear(&self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

/// The process-wide registry all instrumentation reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Adds `n` to counter `name`; no-op when metrics are disabled.
#[inline]
pub fn add(name: &str, n: u64) {
    if enabled() {
        global().counter(name).fetch_add(n, Ordering::Relaxed);
    }
}

/// Adds 1 to counter `name`; no-op when metrics are disabled.
#[inline]
pub fn incr(name: &str) {
    add(name, 1);
}

/// Sets gauge `name` to `value`; no-op when metrics are disabled.
#[inline]
pub fn set_gauge(name: &str, value: f64) {
    if enabled() {
        global()
            .gauge(name)
            .store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Records `ns` into histogram `name`; no-op when metrics are disabled.
#[inline]
pub fn observe_ns(name: &str, ns: u64) {
    if enabled() {
        global().histogram(name).record_ns(ns);
    }
}

/// Builds a labeled metric name `base.label`, sanitizing `label` so
/// caller-supplied strings (tenant names, file paths) cannot inject metric
/// namespace separators or unbounded cardinality: every character outside
/// `[A-Za-z0-9_-]` maps to `_`, the label is truncated to 48 characters,
/// and an empty label becomes `_`.
///
/// This is how the serving layer gets per-tenant counters
/// (`serve.tenant.<tenant>.decided`) without trusting the wire.
pub fn labeled(base: &str, label: &str) -> String {
    let mut out = String::with_capacity(base.len() + 1 + label.len().min(48));
    out.push_str(base);
    out.push('.');
    let mut wrote = false;
    for c in label.chars().take(48) {
        out.push(if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
            c
        } else {
            '_'
        });
        wrote = true;
    }
    if !wrote {
        out.push('_');
    }
    out
}

/// Registers the given names with zero values in the global registry (see
/// [`MetricsRegistry::preregister`]). Unlike the recording functions this
/// is *not* gated on [`enabled`]: callers preregister exactly when they
/// intend to export.
pub fn preregister(counters: &[&str], gauges: &[&str], histograms: &[&str]) {
    global().preregister(counters, gauges, histograms);
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears the global registry. Meant for tests.
pub fn reset() {
    global().clear();
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A scoped timer: created by [`span`], it pushes its name onto a
/// thread-local stack and, on drop, pops it and records the elapsed
/// nanoseconds into the histogram of the same name. When metrics are
/// disabled the span holds no start time and drop does nothing.
#[derive(Debug)]
#[must_use = "a span records its timing when dropped; binding it to _ drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            global().histogram(self.name).record_ns(ns);
        }
    }
}

/// Opens a scoped timer named `name`. Spans nest: the thread-local stack
/// tracks the chain of open spans (inspect it with [`span_depth`]), and
/// each span records its own wall-clock duration on drop.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start: None };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Span {
        name,
        start: Some(Instant::now()),
    }
}

/// Number of spans currently open on this thread.
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// Point-in-time values of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded samples; always equals the sum of `buckets`.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_ns: u64,
    /// Fixed log2-ns buckets (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of a registry, with deterministic key order —
/// renderable as JSON ([`Snapshot::to_json`]) or a text table
/// ([`Snapshot::summary_table`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Latency histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` always keeps a decimal point or exponent, so the output
        // round-trips as a JSON number ("4.0", not "4" → still fine either
        // way, but unambiguous).
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

impl Snapshot {
    /// Renders the snapshot as a self-contained JSON document:
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "counters": {"cache.hits": 5},
    ///   "gauges": {"pool.threads": 4.0},
    ///   "histograms": {"ml.train": {"count": 2, "sum_ns": 81920, "buckets": [0, ...]}}
    /// }
    /// ```
    ///
    /// Hand-rendered (the vendored `serde_json` has no `json!` macro and
    /// this crate is dependency-free); keys are sorted, so equal snapshots
    /// produce byte-equal documents.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema_version\": ");
        let _ = write!(out, "{SCHEMA_VERSION}");
        out.push_str(",\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            escape_json(k, &mut out);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            escape_json(k, &mut out);
            out.push_str(": ");
            json_f64(*v, &mut out);
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            escape_json(k, &mut out);
            let _ = write!(out, ": {{\"count\": {}, \"sum_ns\": {}, \"buckets\": [", h.count, h.sum_ns);
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders a fixed-width text table (for `--metrics-summary` on
    /// stderr): counters and gauges one per line, histograms with sample
    /// count and mean latency.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let _ = writeln!(out, "{:-^w$}", " metrics ", w = width + 26);
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:<w$}  {v:>12}", w = width);
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k:<w$}  {v:>12.2}", w = width);
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<w$}  {:>12}  {:>10}",
                "-- histogram --",
                "samples",
                "mean",
                w = width
            );
            for (k, h) in &self.histograms {
                let mean_us = h.mean_ns() / 1_000.0;
                let _ = writeln!(
                    out,
                    "{k:<w$}  {:>12}  {mean_us:>8.1}us",
                    h.count,
                    w = width
                );
            }
        }
        out
    }
}

/// Where a finished run delivers its metrics snapshot.
///
/// [`NoopRecorder`] is the disabled default: it reports
/// [`Recorder::is_enabled`]` == false`, so pipeline stages skip even
/// snapshotting. [`JsonRecorder`] renders [`Snapshot::to_json`] to a file;
/// the bench/CLI layers construct it with a durable atomic writer
/// (`rhmd_bench::durable`) injected via [`JsonRecorder::with_writer`].
pub trait Recorder: Send + Sync {
    /// Whether recording is live. Callers use this to decide whether to
    /// flip the global [`set_enabled`] switch.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Delivers a finished snapshot.
    fn export(&self, snapshot: &Snapshot) -> std::io::Result<()>;
}

impl std::fmt::Debug for dyn Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Recorder")
    }
}

/// The zero-cost disabled recorder: never enables metrics, exports nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn export(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
        Ok(())
    }
}

type WriterFn = dyn Fn(&Path, &[u8]) -> std::io::Result<()> + Send + Sync;

/// Exports snapshots as JSON to a file. The default writer does a
/// same-directory temp-file-and-rename; callers that want fsynced,
/// fault-retried durability inject one with [`JsonRecorder::with_writer`].
pub struct JsonRecorder {
    path: PathBuf,
    writer: Box<WriterFn>,
}

impl std::fmt::Debug for JsonRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonRecorder").field("path", &self.path).finish()
    }
}

impl JsonRecorder {
    /// A recorder writing to `path` with the default (rename-atomic,
    /// not fsynced) writer.
    pub fn new(path: impl Into<PathBuf>) -> JsonRecorder {
        JsonRecorder::with_writer(path, |path, bytes| {
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, path)
        })
    }

    /// A recorder writing to `path` through a caller-supplied atomic
    /// writer (dependency inversion: `rhmd_bench::durable` supplies its
    /// fault-retried `write_atomic` here without this crate depending on
    /// it).
    pub fn with_writer(
        path: impl Into<PathBuf>,
        writer: impl Fn(&Path, &[u8]) -> std::io::Result<()> + Send + Sync + 'static,
    ) -> JsonRecorder {
        JsonRecorder {
            path: path.into(),
            writer: Box::new(writer),
        }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Recorder for JsonRecorder {
    fn export(&self, snapshot: &Snapshot) -> std::io::Result<()> {
        (self.writer)(&self.path, snapshot.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the global enable flag and registry, so anything that
    /// touches them serializes here.
    fn with_global<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        let out = f();
        reset();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        with_global(|| {
            add("t.counter", 5);
            set_gauge("t.gauge", 1.5);
            observe_ns("t.hist", 10);
            let _span = span("t.span");
            drop(_span);
            let snap = snapshot();
            assert!(snap.counters.is_empty());
            assert!(snap.gauges.is_empty());
            assert!(snap.histograms.is_empty());
        });
    }

    #[test]
    fn counters_gauges_histograms_record_when_enabled() {
        with_global(|| {
            set_enabled(true);
            add("t.counter", 2);
            incr("t.counter");
            set_gauge("t.gauge", 4.25);
            observe_ns("t.hist", 1024);
            observe_ns("t.hist", 0);
            let snap = snapshot();
            assert_eq!(snap.counters["t.counter"], 3);
            assert_eq!(snap.gauges["t.gauge"], 4.25);
            let h = &snap.histograms["t.hist"];
            assert_eq!(h.count, 2);
            assert_eq!(h.sum_ns, 1024);
            assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        });
    }

    #[test]
    fn histogram_bucket_sum_always_equals_count() {
        let h = Histogram::new();
        for ns in [0, 1, 2, 3, 1_000, 1_000_000, u64::MAX] {
            h.record_ns(ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        // u64::MAX lands in the final catch-all bucket.
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn spans_nest_on_the_thread_local_stack() {
        with_global(|| {
            set_enabled(true);
            assert_eq!(span_depth(), 0);
            {
                let _outer = span("t.outer");
                assert_eq!(span_depth(), 1);
                {
                    let _inner = span("t.inner");
                    assert_eq!(span_depth(), 2);
                }
                assert_eq!(span_depth(), 1);
            }
            assert_eq!(span_depth(), 0);
            let snap = snapshot();
            assert_eq!(snap.histograms["t.outer"].count, 1);
            assert_eq!(snap.histograms["t.inner"].count, 1);
        });
    }

    #[test]
    fn preregistered_keys_appear_with_zero_values() {
        with_global(|| {
            preregister(&["t.zero"], &["t.gz"], &["t.hz"]);
            let snap = snapshot();
            assert_eq!(snap.counters["t.zero"], 0);
            assert_eq!(snap.gauges["t.gz"], 0.0);
            assert_eq!(snap.histograms["t.hz"].count, 0);
        });
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let mut snap = Snapshot::default();
        snap.counters.insert("b.two".into(), 2);
        snap.counters.insert("a.one".into(), 1);
        snap.gauges.insert("g".into(), 4.0);
        snap.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 1,
                sum_ns: 7,
                buckets: vec![0; HISTOGRAM_BUCKETS],
            },
        );
        let json = snap.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        // BTreeMap ordering: a.one before b.two.
        assert!(json.find("a.one").unwrap() < json.find("b.two").unwrap());
        assert_eq!(json, snap.clone().to_json());
        assert!(json.contains("\"g\": 4.0"));
    }

    #[test]
    fn json_escapes_control_characters() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_recorder_writes_the_snapshot() {
        let dir = std::env::temp_dir().join(format!("rhmd-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let recorder = JsonRecorder::new(&path);
        let mut snap = Snapshot::default();
        snap.counters.insert("x".into(), 9);
        recorder.export(&snap).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 9"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        assert!(!NoopRecorder.is_enabled());
        assert!(NoopRecorder.export(&Snapshot::default()).is_ok());
    }

    #[test]
    fn labeled_sanitizes_untrusted_labels() {
        assert_eq!(labeled("serve.tenant", "acme-01"), "serve.tenant.acme-01");
        assert_eq!(labeled("serve.tenant", "a.b/c d"), "serve.tenant.a_b_c_d");
        assert_eq!(labeled("serve.tenant", ""), "serve.tenant._");
        let long = "x".repeat(200);
        assert_eq!(labeled("t", &long).len(), "t.".len() + 48);
    }

    #[test]
    fn summary_table_lists_every_metric() {
        let mut snap = Snapshot::default();
        snap.counters.insert("cache.hits".into(), 12);
        snap.histograms.insert(
            "ml.train".into(),
            HistogramSnapshot {
                count: 2,
                sum_ns: 4_000,
                buckets: vec![0; HISTOGRAM_BUCKETS],
            },
        );
        let table = snap.summary_table();
        assert!(table.contains("cache.hits"));
        assert!(table.contains("ml.train"));
        assert!(table.contains("12"));
    }
}
