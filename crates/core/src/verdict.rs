//! Program-level verdict policies.
//!
//! A detector emits one decision per window; deployment needs one verdict
//! per *program*. The paper raises accuracy "by averaging the decisions
//! across multiple intervals" (§8.2) — majority vote. Majority is brittle
//! for randomized pools, though: if an attacker fully evades one of `k`
//! base detectors, the expected flag rate drops by `1/k` and can sink below
//! ½ even though the remaining detectors still fire on every window they
//! judge. A *calibrated* policy instead thresholds the flag rate just above
//! what benign programs produce, so any sustained excess of flagged windows
//! convicts — the natural operating point for a deployed HMD.

use crate::hmd::{Detector, ProgramVerdict};
use rhmd_data::TracedCorpus;
use serde::{Deserialize, Serialize};

/// A threshold over a program's window flag rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerdictPolicy {
    threshold: f64,
}

impl VerdictPolicy {
    /// The paper's majority vote: malware if at least half the windows flag.
    pub fn majority() -> VerdictPolicy {
        VerdictPolicy { threshold: 0.5 }
    }

    /// An explicit flag-rate threshold in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn fixed(threshold: f64) -> VerdictPolicy {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        VerdictPolicy { threshold }
    }

    /// Calibrates the threshold on benign programs: the verdict fires when a
    /// program's flag rate exceeds the `(1 - fp_budget)` quantile of benign
    /// flag rates (plus a small margin), bounding the program-level false
    /// positive rate by `fp_budget` on the calibration set.
    ///
    /// # Panics
    ///
    /// Panics if `benign_indices` is empty or `fp_budget` is outside
    /// `(0, 1)`.
    pub fn calibrated(
        detector: &mut dyn Detector,
        traced: &TracedCorpus,
        benign_indices: &[usize],
        fp_budget: f64,
    ) -> VerdictPolicy {
        assert!(!benign_indices.is_empty(), "need benign calibration programs");
        assert!((0.0..1.0).contains(&fp_budget) && fp_budget > 0.0, "fp budget in (0,1)");
        let mut rates: Vec<f64> = benign_indices
            .iter()
            .map(|&i| {
                let stream = detector.label_subwindows(traced.subwindows(i));
                ProgramVerdict::from_decisions(&stream).flag_rate()
            })
            .collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = (((1.0 - fp_budget) * rates.len() as f64) as usize).min(rates.len() - 1);
        VerdictPolicy {
            threshold: (rates[idx] + 0.02).min(0.99),
        }
    }

    /// The flag-rate threshold in effect.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Applies the policy to a verdict.
    pub fn is_malware(&self, verdict: &ProgramVerdict) -> bool {
        verdict.flag_rate() > self.threshold
    }

    /// Convenience: runs `detector` over a trace and applies the policy.
    pub fn judge(
        &self,
        detector: &mut dyn Detector,
        subwindows: &[rhmd_features::window::RawWindow],
    ) -> bool {
        let stream = detector.label_subwindows(subwindows);
        self.is_malware(&ProgramVerdict::from_decisions(&stream))
    }
}

impl Default for VerdictPolicy {
    fn default() -> VerdictPolicy {
        VerdictPolicy::majority()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmd::Hmd;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, Hmd) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        (traced, splits, hmd)
    }

    #[test]
    fn majority_matches_program_verdict() {
        let policy = VerdictPolicy::majority();
        let v = ProgramVerdict::from_decisions(&[true, true, false]);
        assert!(policy.is_malware(&v));
        let v2 = ProgramVerdict::from_decisions(&[true, false, false, false]);
        assert!(!policy.is_malware(&v2));
    }

    #[test]
    fn calibration_bounds_benign_false_positives() {
        let (traced, splits, hmd) = fixture();
        let labels = traced.corpus().labels();
        let benign_train: Vec<usize> = splits
            .victim_train
            .iter()
            .copied()
            .filter(|&i| !labels[i])
            .collect();
        let mut detector = hmd.clone();
        let policy = VerdictPolicy::calibrated(&mut detector, &traced, &benign_train, 0.15);

        // On held-out benign programs the violation rate stays moderate.
        let benign_test: Vec<usize> = splits
            .attacker_test
            .iter()
            .copied()
            .filter(|&i| !labels[i])
            .collect();
        let fp = benign_test
            .iter()
            .filter(|&&i| policy.judge(&mut detector, traced.subwindows(i)))
            .count() as f64
            / benign_test.len().max(1) as f64;
        assert!(fp <= 0.5, "calibrated fp rate {fp}");
    }

    #[test]
    fn calibrated_is_more_sensitive_than_majority_when_benign_is_quiet() {
        let (traced, splits, hmd) = fixture();
        let labels = traced.corpus().labels();
        let benign_train: Vec<usize> = splits
            .victim_train
            .iter()
            .copied()
            .filter(|&i| !labels[i])
            .collect();
        let mut detector = hmd.clone();
        let policy = VerdictPolicy::calibrated(&mut detector, &traced, &benign_train, 0.1);
        // A 40%-flagged program is missed by majority but can be convicted
        // by a calibrated threshold below 0.4.
        let v = ProgramVerdict {
            flagged: 4,
            total: 10,
        };
        assert!(!VerdictPolicy::majority().is_malware(&v));
        if policy.threshold() < 0.38 {
            assert!(policy.is_malware(&v));
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn fixed_validates_range() {
        let _ = VerdictPolicy::fixed(1.5);
    }
}
