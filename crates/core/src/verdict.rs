//! Program-level verdict policies.
//!
//! A detector emits one decision per window; deployment needs one verdict
//! per *program*. The paper raises accuracy "by averaging the decisions
//! across multiple intervals" (§8.2) — majority vote. Majority is brittle
//! for randomized pools, though: if an attacker fully evades one of `k`
//! base detectors, the expected flag rate drops by `1/k` and can sink below
//! ½ even though the remaining detectors still fire on every window they
//! judge. A *calibrated* policy instead thresholds the flag rate just above
//! what benign programs produce, so any sustained excess of flagged windows
//! convicts — the natural operating point for a deployed HMD.

use crate::error::RhmdError;
use crate::hmd::{BlackBox, ProgramVerdict, QuorumVerdict};
use rhmd_data::TracedCorpus;
use serde::{Deserialize, Serialize};

/// Outcome of judging a program whose window stream may be partially
/// corrupted: either a decision, or an explicit abstention when too few
/// windows survived to vote.
///
/// Abstention is the graceful-degradation path: a deployment can fall back
/// to a slower software scan instead of trusting a verdict derived from
/// almost no evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradedVerdict {
    /// Enough windows voted; `true` means malware.
    Decided(bool),
    /// Coverage fell below the floor — no trustworthy verdict.
    Abstained,
}

impl DegradedVerdict {
    /// `true` only for a positive decision (abstentions are not flags).
    pub fn is_malware(&self) -> bool {
        matches!(self, DegradedVerdict::Decided(true))
    }

    /// Resolves an abstention to a fallback decision.
    pub fn unwrap_or(self, fallback: bool) -> bool {
        match self {
            DegradedVerdict::Decided(d) => d,
            DegradedVerdict::Abstained => fallback,
        }
    }
}

/// A threshold over a program's window flag rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerdictPolicy {
    threshold: f64,
}

impl VerdictPolicy {
    /// The paper's majority vote: malware if at least half the windows flag.
    pub fn majority() -> VerdictPolicy {
        VerdictPolicy { threshold: 0.5 }
    }

    /// An explicit flag-rate threshold in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Config`] if `threshold` is outside `[0, 1]` or
    /// not finite.
    pub fn fixed(threshold: f64) -> Result<VerdictPolicy, RhmdError> {
        if !threshold.is_finite() || !(0.0..=1.0).contains(&threshold) {
            return Err(RhmdError::config(format!(
                "verdict threshold must be in [0, 1], got {threshold}"
            )));
        }
        Ok(VerdictPolicy { threshold })
    }

    /// Calibrates the threshold on benign programs: the verdict fires when a
    /// program's flag rate exceeds the `(1 - fp_budget)` quantile of benign
    /// flag rates (plus a small margin), bounding the program-level false
    /// positive rate by `fp_budget` on the calibration set.
    ///
    /// # Errors
    ///
    /// Returns [`RhmdError::Calibration`] if `benign_indices` is empty or
    /// `fp_budget` is outside `(0, 1)`.
    pub fn calibrated(
        detector: &mut dyn BlackBox,
        traced: &TracedCorpus,
        benign_indices: &[usize],
        fp_budget: f64,
    ) -> Result<VerdictPolicy, RhmdError> {
        if benign_indices.is_empty() {
            return Err(RhmdError::Calibration(
                "no benign calibration programs given".to_string(),
            ));
        }
        if !fp_budget.is_finite() || fp_budget <= 0.0 || fp_budget >= 1.0 {
            return Err(RhmdError::Calibration(format!(
                "false-positive budget must be in (0, 1), got {fp_budget}"
            )));
        }
        let mut rates: Vec<f64> = benign_indices
            .iter()
            .map(|&i| {
                let stream = detector.label_subwindows(traced.subwindows(i));
                ProgramVerdict::from_decisions(&stream).flag_rate()
            })
            .collect();
        rates.sort_by(|a, b| a.total_cmp(b));
        let idx = (((1.0 - fp_budget) * rates.len() as f64) as usize).min(rates.len() - 1);
        Ok(VerdictPolicy {
            threshold: (rates[idx] + 0.02).min(0.99),
        })
    }

    /// The flag-rate threshold in effect.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Applies the policy to a verdict.
    pub fn is_malware(&self, verdict: &ProgramVerdict) -> bool {
        verdict.flag_rate() > self.threshold
    }

    /// Convenience: runs `detector` over a trace and applies the policy.
    pub fn judge(
        &self,
        detector: &mut dyn BlackBox,
        subwindows: &[rhmd_features::window::RawWindow],
    ) -> bool {
        let stream = detector.label_subwindows(subwindows);
        self.is_malware(&ProgramVerdict::from_decisions(&stream))
    }

    /// Applies the policy to a quorum verdict with degraded-mode fallback.
    ///
    /// The flag rate is computed over *voted* windows only — abstentions
    /// (corrupted or lost windows) neither convict nor acquit. When no
    /// windows voted at all, or coverage falls below `min_coverage`, the
    /// result is [`DegradedVerdict::Abstained`] so callers can escalate
    /// instead of trusting a verdict built on too little evidence.
    ///
    /// Boundary behavior, pinned by tests:
    ///
    /// * **The coverage floor is inclusive.** The abstain check is strict
    ///   `coverage() < min_coverage`, so a quorum at *exactly* the floor
    ///   (e.g. 2 voted of 4 windows with `min_coverage = 0.5`) still
    ///   decides. `min_coverage = 0.0` therefore only abstains on
    ///   zero-voter quorums.
    /// * **Ties acquit.** The decision is strict `flag_rate() >
    ///   threshold`: a flag rate exactly at the threshold (a 50/50 split
    ///   under [`VerdictPolicy::majority`]) is *benign*. Note this is the
    ///   opposite tie rule from [`QuorumVerdict::is_malware`], whose
    ///   `2 * flagged >= voted` convicts ties — callers mixing the two
    ///   paths must not assume they agree on knife-edge programs.
    pub fn judge_quorum(&self, quorum: &QuorumVerdict, min_coverage: f64) -> DegradedVerdict {
        if quorum.voted == 0 || quorum.coverage() < min_coverage {
            rhmd_obs::incr("core.verdict.abstained");
            return DegradedVerdict::Abstained;
        }
        rhmd_obs::incr("core.verdict.decided");
        DegradedVerdict::Decided(quorum.flag_rate() > self.threshold)
    }
}

impl Default for VerdictPolicy {
    fn default() -> VerdictPolicy {
        VerdictPolicy::majority()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmd::Hmd;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, Hmd) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        (traced, splits, hmd)
    }

    #[test]
    fn majority_matches_program_verdict() {
        let policy = VerdictPolicy::majority();
        let v = ProgramVerdict::from_decisions(&[true, true, false]);
        assert!(policy.is_malware(&v));
        let v2 = ProgramVerdict::from_decisions(&[true, false, false, false]);
        assert!(!policy.is_malware(&v2));
    }

    #[test]
    fn calibration_bounds_benign_false_positives() {
        let (traced, splits, hmd) = fixture();
        let labels = traced.corpus().labels();
        let benign_train: Vec<usize> = splits
            .victim_train
            .iter()
            .copied()
            .filter(|&i| !labels[i])
            .collect();
        let mut detector = hmd.clone();
        let policy =
            VerdictPolicy::calibrated(&mut detector, &traced, &benign_train, 0.15).unwrap();

        // On held-out benign programs the violation rate stays moderate.
        let benign_test: Vec<usize> = splits
            .attacker_test
            .iter()
            .copied()
            .filter(|&i| !labels[i])
            .collect();
        let fp = benign_test
            .iter()
            .filter(|&&i| policy.judge(&mut detector, traced.subwindows(i)))
            .count() as f64
            / benign_test.len().max(1) as f64;
        assert!(fp <= 0.5, "calibrated fp rate {fp}");
    }

    #[test]
    fn calibrated_is_more_sensitive_than_majority_when_benign_is_quiet() {
        let (traced, splits, hmd) = fixture();
        let labels = traced.corpus().labels();
        let benign_train: Vec<usize> = splits
            .victim_train
            .iter()
            .copied()
            .filter(|&i| !labels[i])
            .collect();
        let mut detector = hmd.clone();
        let policy =
            VerdictPolicy::calibrated(&mut detector, &traced, &benign_train, 0.1).unwrap();
        // A 40%-flagged program is missed by majority but can be convicted
        // by a calibrated threshold below 0.4.
        let v = ProgramVerdict {
            flagged: 4,
            total: 10,
        };
        assert!(!VerdictPolicy::majority().is_malware(&v));
        if policy.threshold() < 0.38 {
            assert!(policy.is_malware(&v));
        }
    }

    #[test]
    fn fixed_validates_range() {
        assert!(VerdictPolicy::fixed(0.3).is_ok());
        let err = VerdictPolicy::fixed(1.5).unwrap_err();
        assert!(matches!(err, RhmdError::Config(_)));
        assert!(err.to_string().contains("[0, 1]"));
        assert!(VerdictPolicy::fixed(f64::NAN).is_err());
    }

    #[test]
    fn calibration_rejects_bad_inputs() {
        let (traced, _, hmd) = fixture();
        let mut detector = hmd.clone();
        let empty = VerdictPolicy::calibrated(&mut detector, &traced, &[], 0.1);
        assert!(matches!(empty, Err(RhmdError::Calibration(_))));
        let bad_budget = VerdictPolicy::calibrated(&mut detector, &traced, &[0], 1.0);
        assert!(matches!(bad_budget, Err(RhmdError::Calibration(_))));
    }

    #[test]
    fn quorum_judgement_abstains_on_thin_coverage() {
        let policy = VerdictPolicy::majority();
        // 3 of 4 surviving windows flagged: decided malware.
        let healthy = QuorumVerdict::from_votes(&[Some(true), Some(true), Some(true), Some(false)]);
        assert_eq!(
            policy.judge_quorum(&healthy, 0.5),
            DegradedVerdict::Decided(true)
        );
        // Only 1 of 4 windows voted: coverage 0.25 < 0.5 floor → abstain.
        let thin = QuorumVerdict::from_votes(&[Some(true), None, None, None]);
        assert_eq!(policy.judge_quorum(&thin, 0.5), DegradedVerdict::Abstained);
        assert!(!policy.judge_quorum(&thin, 0.5).is_malware());
        assert!(policy.judge_quorum(&thin, 0.5).unwrap_or(true));
        // Everything lost: abstain regardless of the floor.
        let lost = QuorumVerdict::from_votes(&[None, None]);
        assert_eq!(policy.judge_quorum(&lost, 0.0), DegradedVerdict::Abstained);
    }

    #[test]
    fn quorum_decides_at_exactly_min_coverage() {
        let policy = VerdictPolicy::majority();
        // 2 voted of 4 windows: coverage is exactly 0.5.
        let edge = QuorumVerdict::from_votes(&[Some(true), Some(true), None, None]);
        assert!((edge.coverage() - 0.5).abs() < 1e-12);
        // The floor is inclusive: exactly at it, the quorum still decides.
        assert_eq!(
            policy.judge_quorum(&edge, 0.5),
            DegradedVerdict::Decided(true)
        );
        // One epsilon above the floor, it abstains.
        assert_eq!(policy.judge_quorum(&edge, 0.5 + 1e-9), DegradedVerdict::Abstained);
        // A zero floor only abstains on zero-voter quorums.
        assert_eq!(
            policy.judge_quorum(&edge, 0.0),
            DegradedVerdict::Decided(true)
        );
    }

    #[test]
    fn flag_rate_exactly_at_threshold_acquits() {
        let policy = VerdictPolicy::majority();
        // A 50/50 split sits exactly on the majority threshold.
        let tie = QuorumVerdict::from_votes(&[Some(true), Some(false)]);
        assert!((tie.flag_rate() - 0.5).abs() < 1e-12);
        // judge_quorum is strict `>`: the tie acquits ...
        assert_eq!(policy.judge_quorum(&tie, 0.0), DegradedVerdict::Decided(false));
        // ... while the quorum's own majority rule (`2 * flagged >= voted`)
        // convicts the same tie. The divergence is intentional and pinned.
        assert!(tie.is_malware());
        // One extra flag tips judge_quorum over the strict threshold too.
        let over = QuorumVerdict::from_votes(&[Some(true), Some(true), Some(false)]);
        assert_eq!(policy.judge_quorum(&over, 0.0), DegradedVerdict::Decided(true));
    }
}
