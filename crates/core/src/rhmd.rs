//! Resilient HMDs (paper §7): a pool of diverse base detectors with
//! stochastic, unpredictable switching between them.

use crate::detector::{Detector, StreamRng};
use crate::hmd::{BlackBox, Hmd, QuorumVerdict};
use rhmd_data::TracedCorpus;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_features::window::{aggregate_with_gaps, RawWindow, SUBWINDOW};
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::isa::Opcode;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A randomized ensemble of base detectors.
///
/// At every detection epoch the RHMD draws one base detector (uniformly, or
/// by the configured probabilities), collects features over *that*
/// detector's period, and emits its decision. The attacker observing the
/// decision stream cannot tell which detector produced which decision, which
/// is what makes reverse-engineering provably lossy (paper §8, Theorem 1).
///
/// # Examples
///
/// ```no_run
/// use rhmd_core::hmd::BlackBox;
/// use rhmd_core::rhmd::ResilientHmd;
/// # fn doc(detectors: Vec<rhmd_core::hmd::Hmd>, subs: &[rhmd_features::RawWindow]) {
/// let mut rhmd = ResilientHmd::new(detectors, 42);
/// let decisions = rhmd.label_subwindows(subs);
/// # }
/// ```
pub struct ResilientHmd {
    detectors: Vec<Hmd>,
    probabilities: Vec<f64>,
    rng: SmallRng,
    seed: u64,
}

impl ResilientHmd {
    /// Creates an RHMD switching uniformly among `detectors`.
    ///
    /// # Panics
    ///
    /// Panics if `detectors` is empty.
    pub fn new(detectors: Vec<Hmd>, seed: u64) -> ResilientHmd {
        let n = detectors.len();
        ResilientHmd::with_probabilities(detectors, vec![1.0 / n as f64; n], seed)
    }

    /// Creates an RHMD with explicit selection probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `detectors` is empty, lengths differ, or probabilities are
    /// not a distribution.
    pub fn with_probabilities(
        detectors: Vec<Hmd>,
        probabilities: Vec<f64>,
        seed: u64,
    ) -> ResilientHmd {
        assert!(!detectors.is_empty(), "RHMD needs at least one detector");
        assert_eq!(
            detectors.len(),
            probabilities.len(),
            "one probability per detector"
        );
        assert!(
            probabilities.iter().all(|&p| p >= 0.0)
                && (probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "probabilities must form a distribution"
        );
        ResilientHmd {
            detectors,
            probabilities,
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The base detectors.
    pub fn detectors(&self) -> &[Hmd] {
        &self.detectors
    }

    /// The selection probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Restarts the switching RNG so a fresh query sequence is reproducible.
    pub fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }

    fn draw_from(probabilities: &[f64], rng: &mut SmallRng) -> usize {
        let mut u = rng.gen::<f64>();
        for (i, &p) in probabilities.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        probabilities.len() - 1
    }
}

impl ResilientHmd {
    /// Walks a trace emitting `(vote, subwindows_consumed)` pairs.
    ///
    /// A vote of `None` marks an epoch whose window was truncated by a gap
    /// or whose features failed the sanity check — the epoch is *skipped*
    /// (the cursor still advances) rather than aborting the walk, so one
    /// corrupted window in the middle of a trace does not silence every
    /// detector downstream of it.
    ///
    /// `min_fill` is the minimum fraction of the detector's period an
    /// epoch's window must cover to vote. `1.0` reproduces the strict
    /// behavior on clean streams while still accepting the *over*-full
    /// windows an interrupt-coalescing fault produces (dropped reads merge
    /// into the next surviving one, so those windows span extra
    /// instructions and their rate features renormalize).
    fn walk(
        &mut self,
        subwindows: &[RawWindow],
        min_fill: f64,
        skip_gaps: bool,
    ) -> Vec<(Option<bool>, usize)> {
        Self::walk_with(
            &self.detectors,
            &self.probabilities,
            &mut self.rng,
            subwindows,
            min_fill,
            skip_gaps,
        )
    }

    /// The walk body, parameterized over an explicit RNG so per-program
    /// switching streams can be derived without mutating shared state (the
    /// requirement for order-independent — and therefore parallel —
    /// evaluation).
    fn walk_with(
        detectors: &[Hmd],
        probabilities: &[f64],
        rng: &mut SmallRng,
        subwindows: &[RawWindow],
        min_fill: f64,
        skip_gaps: bool,
    ) -> Vec<(Option<bool>, usize)> {
        // Pass 1: draw the switching stream and aggregate each epoch's
        // window. Detector draws, the cursor, and every break condition
        // depend only on the RNG and window fill — never on scores — so
        // scoring can be deferred and batched per detector.
        let mut meta: Vec<(usize, bool, usize)> = Vec::new();
        let mut pending: Vec<Vec<RawWindow>> = vec![Vec::new(); detectors.len()];
        let mut cursor = 0usize;
        loop {
            let idx = Self::draw_from(probabilities, rng);
            let detector = &detectors[idx];
            let per = (detector.spec().period / SUBWINDOW) as usize;
            if cursor + per > subwindows.len() {
                break;
            }
            let chunk = &subwindows[cursor..cursor + per];
            let mut windows = aggregate_with_gaps(chunk, detector.spec().period, min_fill);
            if windows.len() != 1 && !skip_gaps {
                break; // truncated tail of a clean stream: end of usable trace
            }
            if windows.len() == 1 {
                pending[idx].push(windows.pop().expect("exactly one window"));
                meta.push((idx, true, per));
            } else {
                meta.push((idx, false, per)); // below the fill floor: abstain
            }
            cursor += per;
        }
        // Pass 2: each detector scores its epochs through the flat batch
        // path; votes are reassembled in epoch order.
        batch_walk_votes(detectors, &meta, &pending)
    }

    /// Walks a trace and pools every epoch into a [`QuorumVerdict`],
    /// counting corrupted epochs as abstentions instead of votes. Epochs
    /// whose window covers less than `min_fill` of the drawn detector's
    /// period abstain.
    pub fn quorum_verdict(&mut self, subwindows: &[RawWindow], min_fill: f64) -> QuorumVerdict {
        let votes: Vec<Option<bool>> = self
            .walk(subwindows, min_fill, true)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        QuorumVerdict::from_votes(&votes)
    }

    /// Like [`ResilientHmd::quorum_verdict`], but drawing the switching
    /// stream from an explicit `stream_seed` instead of the pool's shared
    /// RNG. A fresh pool walked serially after `reset()` produces the same
    /// verdict as this method with `stream_seed == self.seed()`.
    #[deprecated(
        since = "0.1.0",
        note = "use `Detector::quorum` with an explicit `StreamRng` instead"
    )]
    pub fn quorum_verdict_seeded(
        &self,
        subwindows: &[RawWindow],
        min_fill: f64,
        stream_seed: u64,
    ) -> QuorumVerdict {
        Detector::quorum(self, subwindows, min_fill, &mut StreamRng::from_seed(stream_seed))
    }

    /// Seeded, shared-state-free counterpart of
    /// [`BlackBox::label_subwindows`] (same expansion to subwindow
    /// granularity), for order-independent parallel evaluation.
    #[deprecated(
        since = "0.1.0",
        note = "use `Detector::label_stream` with an explicit `StreamRng` instead"
    )]
    pub fn label_subwindows_seeded(
        &self,
        subwindows: &[RawWindow],
        stream_seed: u64,
    ) -> Vec<bool> {
        Detector::label_stream(self, subwindows, &mut StreamRng::from_seed(stream_seed))
    }

    /// Seeded, shared-state-free counterpart of [`BlackBox::decisions`].
    #[deprecated(
        since = "0.1.0",
        note = "use `Detector::epoch_decisions` with an explicit `StreamRng` instead"
    )]
    pub fn decisions_seeded(&self, subwindows: &[RawWindow], stream_seed: u64) -> Vec<bool> {
        Detector::epoch_decisions(self, subwindows, &mut StreamRng::from_seed(stream_seed))
    }
}

impl Detector for ResilientHmd {
    fn name(&self) -> String {
        self.describe()
    }

    /// Draws the switching stream from the caller's `rng`: `&self` only,
    /// so two threads can judge different programs concurrently, and the
    /// result for a program depends only on its subwindows and seed —
    /// never on which other programs were judged before it.
    fn label_stream(&self, subwindows: &[RawWindow], rng: &mut StreamRng) -> Vec<bool> {
        let mut out = Vec::with_capacity(subwindows.len());
        for (vote, per) in Self::walk_with(
            &self.detectors,
            &self.probabilities,
            rng.small(),
            subwindows,
            1.0,
            false,
        ) {
            if let Some(decision) = vote {
                out.extend(std::iter::repeat_n(decision, per));
            }
        }
        out
    }

    fn epoch_decisions(&self, subwindows: &[RawWindow], rng: &mut StreamRng) -> Vec<bool> {
        Self::walk_with(
            &self.detectors,
            &self.probabilities,
            rng.small(),
            subwindows,
            1.0,
            false,
        )
        .into_iter()
        .filter_map(|(d, _)| d)
        .collect()
    }

    fn quorum(
        &self,
        subwindows: &[RawWindow],
        min_fill: f64,
        rng: &mut StreamRng,
    ) -> QuorumVerdict {
        let votes: Vec<Option<bool>> = Self::walk_with(
            &self.detectors,
            &self.probabilities,
            rng.small(),
            subwindows,
            min_fill,
            true,
        )
        .into_iter()
        .map(|(v, _)| v)
        .collect();
        QuorumVerdict::from_votes(&votes)
    }
}

impl BlackBox for ResilientHmd {
    fn label_subwindows(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        let mut out = Vec::with_capacity(subwindows.len());
        for (vote, per) in self.walk(subwindows, 1.0, false) {
            if let Some(decision) = vote {
                out.extend(std::iter::repeat_n(decision, per));
            }
        }
        out
    }

    fn decisions(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        self.walk(subwindows, 1.0, false)
            .into_iter()
            .filter_map(|(d, _)| d)
            .collect()
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.detectors.iter().map(|d| d.describe()).collect();
        format!("RHMD{{{}}}", parts.join(", "))
    }
}

impl fmt::Debug for ResilientHmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResilientHmd")
            .field("detectors", &self.describe())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Builds the feature specs for a pool of `kinds` × `periods` base
/// detectors (paper §7's construction: two or three features, optionally at
/// 10K and 5K periods).
pub fn pool_specs(kinds: &[FeatureKind], periods: &[u32], opcodes: &[Opcode]) -> Vec<FeatureSpec> {
    let mut specs = Vec::with_capacity(kinds.len() * periods.len());
    for &period in periods {
        for &kind in kinds {
            specs.push(FeatureSpec::new(kind, period, opcodes.to_vec()));
        }
    }
    specs
}

/// Trains one base detector per spec and assembles an RHMD.
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn build_pool(
    algorithm: Algorithm,
    specs: Vec<FeatureSpec>,
    trainer: &TrainerConfig,
    traced: &TracedCorpus,
    train_indices: &[usize],
    seed: u64,
) -> ResilientHmd {
    assert!(!specs.is_empty(), "pool needs at least one spec");
    let detectors = specs
        .into_iter()
        .map(|spec| Hmd::train(algorithm, spec, trainer, traced, train_indices))
        .collect();
    ResilientHmd::new(detectors, seed)
}

/// Trains a *stochastic* defender pool: the same construction as
/// [`build_pool`], but every base detector's LR/SVM/NN model is quantized
/// with the given config — normally [`rhmd_ml::Rounding::Stochastic`], which
/// reproduces Stochastic-HMDs' computation-level randomness in software.
/// The rounding seed is defender-private: scores stay byte-reproducible for
/// the defender (rounding is a pure function of seed, row, and feature), but
/// an attacker querying the pool sees a decision boundary that jitters per
/// input on top of the detector switching, making the reverse-engineered
/// surrogate strictly noisier than against a deterministic pool.
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn build_stochastic_pool(
    algorithm: Algorithm,
    specs: Vec<FeatureSpec>,
    trainer: &TrainerConfig,
    quant: rhmd_ml::QuantConfig,
    traced: &TracedCorpus,
    train_indices: &[usize],
    seed: u64,
) -> ResilientHmd {
    let trainer = TrainerConfig {
        quant: Some(quant),
        ..*trainer
    };
    build_pool(algorithm, specs, &trainer, traced, train_indices, seed)
}

/// Non-stationary RHMD (paper §8.3, future work): a large candidate pool of
/// detectors of which only a random *subset* is active at any time; the
/// active subset is re-drawn periodically. Even an attacker who knows the
/// full candidate set cannot iteratively evade the active detectors, because
/// the decision boundary itself moves.
pub struct NonStationaryRhmd {
    candidates: Vec<Hmd>,
    active: Vec<usize>,
    active_size: usize,
    /// Number of detection epochs between subset re-draws.
    redraw_every: u32,
    epochs_since_redraw: u32,
    rng: SmallRng,
    seed: u64,
}

impl NonStationaryRhmd {
    /// Creates a non-stationary pool.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty, `active_size` is zero or exceeds the
    /// candidate count, or `redraw_every` is zero.
    pub fn new(
        candidates: Vec<Hmd>,
        active_size: usize,
        redraw_every: u32,
        seed: u64,
    ) -> NonStationaryRhmd {
        assert!(!candidates.is_empty(), "need at least one candidate");
        assert!(
            active_size >= 1 && active_size <= candidates.len(),
            "active subset size out of range"
        );
        assert!(redraw_every > 0, "redraw interval must be positive");
        let mut pool = NonStationaryRhmd {
            candidates,
            active: Vec::new(),
            active_size,
            redraw_every,
            epochs_since_redraw: 0,
            rng: SmallRng::seed_from_u64(seed),
            seed,
        };
        pool.redraw();
        pool
    }

    /// The full candidate pool.
    pub fn candidates(&self) -> &[Hmd] {
        &self.candidates
    }

    /// Indices of the currently active subset.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Restarts the RNG and re-draws the initial subset.
    pub fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
        self.epochs_since_redraw = 0;
        self.redraw();
    }

    fn redraw(&mut self) {
        self.active = draw_active(&mut self.rng, self.candidates.len(), self.active_size);
    }

    /// The walk body, parameterized over an explicit RNG: replays exactly
    /// what a freshly constructed pool with the same seed produces (the
    /// constructor's initial subset draw included), without mutating shared
    /// state — the requirement for order-independent parallel evaluation.
    ///
    /// With `skip_gaps`, epochs whose window falls below the fill floor
    /// abstain and the cursor advances; such epochs do not advance the
    /// redraw clock (only voted-on epochs age the active subset, matching
    /// the stateful walk on clean streams).
    fn walk_seeded(
        &self,
        subwindows: &[RawWindow],
        min_fill: f64,
        skip_gaps: bool,
        rng: &mut SmallRng,
    ) -> Vec<(Option<bool>, usize)> {
        // Pass 1: replay the draw/redraw stream and collect each epoch's
        // window. The redraw clock advances only on epochs whose window
        // aggregated cleanly — a fact known before scoring — so draws never
        // depend on scores and scoring can be batched per candidate.
        let mut active = draw_active(rng, self.candidates.len(), self.active_size);
        let mut epochs_since_redraw = 0u32;
        let mut meta: Vec<(usize, bool, usize)> = Vec::new();
        let mut pending: Vec<Vec<RawWindow>> = vec![Vec::new(); self.candidates.len()];
        let mut cursor = 0usize;
        loop {
            if epochs_since_redraw >= self.redraw_every {
                active = draw_active(rng, self.candidates.len(), self.active_size);
                epochs_since_redraw = 0;
            }
            let pick = active[rng.gen_range(0..active.len())];
            let detector = &self.candidates[pick];
            let per = (detector.spec().period / SUBWINDOW) as usize;
            if cursor + per > subwindows.len() {
                break;
            }
            let mut windows = aggregate_with_gaps(
                &subwindows[cursor..cursor + per],
                detector.spec().period,
                min_fill,
            );
            if windows.len() != 1 {
                if !skip_gaps {
                    break; // truncated tail of a clean stream
                }
                meta.push((pick, false, per));
                cursor += per;
                continue;
            }
            epochs_since_redraw += 1;
            pending[pick].push(windows.pop().expect("exactly one window"));
            meta.push((pick, true, per));
            cursor += per;
        }
        // Pass 2: batch-score per candidate, reassemble in epoch order.
        batch_walk_votes(&self.candidates, &meta, &pending)
    }

    /// Advances one epoch. Outer `None` means the stream is exhausted or
    /// truncated; an inner `None` vote marks an epoch whose features failed
    /// the sanity check, which is skipped rather than terminating the walk.
    fn step(&mut self, subwindows: &[RawWindow], cursor: usize) -> Option<(Option<bool>, usize)> {
        if self.epochs_since_redraw >= self.redraw_every {
            self.redraw();
            self.epochs_since_redraw = 0;
        }
        let pick = self.active[self.rng.gen_range(0..self.active.len())];
        let detector = &self.candidates[pick];
        let per = (detector.spec().period / SUBWINDOW) as usize;
        if cursor + per > subwindows.len() {
            return None;
        }
        let windows =
            aggregate_with_gaps(&subwindows[cursor..cursor + per], detector.spec().period, 1.0);
        if windows.len() != 1 {
            return None; // truncated tail of a clean stream
        }
        self.epochs_since_redraw += 1;
        Some((detector.classify_window_checked(&windows[0]), per))
    }
}

impl BlackBox for NonStationaryRhmd {
    fn label_subwindows(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        let mut out = Vec::with_capacity(subwindows.len());
        let mut cursor = 0usize;
        while let Some((vote, per)) = self.step(subwindows, cursor) {
            if let Some(decision) = vote {
                out.extend(std::iter::repeat_n(decision, per));
            }
            cursor += per;
        }
        out
    }

    fn decisions(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        let mut out = Vec::new();
        let mut cursor = 0usize;
        while let Some((vote, per)) = self.step(subwindows, cursor) {
            if let Some(decision) = vote {
                out.push(decision);
            }
            cursor += per;
        }
        out
    }

    fn describe(&self) -> String {
        format!(
            "NonStationaryRHMD{{{} of {} candidates, redraw every {} epochs}}",
            self.active_size,
            self.candidates.len(),
            self.redraw_every
        )
    }
}

impl Detector for NonStationaryRhmd {
    fn name(&self) -> String {
        self.describe()
    }

    /// Seeded replay of the full walk, re-drawing the active subset from
    /// the caller's `rng` exactly as a freshly constructed pool would.
    fn label_stream(&self, subwindows: &[RawWindow], rng: &mut StreamRng) -> Vec<bool> {
        let mut out = Vec::with_capacity(subwindows.len());
        for (vote, per) in self.walk_seeded(subwindows, 1.0, false, rng.small()) {
            if let Some(decision) = vote {
                out.extend(std::iter::repeat_n(decision, per));
            }
        }
        out
    }

    fn epoch_decisions(&self, subwindows: &[RawWindow], rng: &mut StreamRng) -> Vec<bool> {
        self.walk_seeded(subwindows, 1.0, false, rng.small())
            .into_iter()
            .filter_map(|(d, _)| d)
            .collect()
    }

    fn quorum(
        &self,
        subwindows: &[RawWindow],
        min_fill: f64,
        rng: &mut StreamRng,
    ) -> QuorumVerdict {
        let votes: Vec<Option<bool>> = self
            .walk_seeded(subwindows, min_fill, true, rng.small())
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        QuorumVerdict::from_votes(&votes)
    }
}

/// Scores a drawn epoch stream through each detector's flat batch path and
/// reassembles `(vote, subwindows_consumed)` pairs in epoch order.
///
/// `meta` carries one `(detector index, has_window, subwindows_consumed)`
/// triple per epoch; `pending[d]` holds detector `d`'s windows in epoch
/// order. Epochs without a window abstain. Votes are bit-identical to
/// scoring each epoch inline because the batch path shares the per-row
/// kernels.
fn batch_walk_votes(
    detectors: &[Hmd],
    meta: &[(usize, bool, usize)],
    pending: &[Vec<RawWindow>],
) -> Vec<(Option<bool>, usize)> {
    let mut votes: Vec<std::vec::IntoIter<Option<bool>>> = pending
        .iter()
        .zip(detectors)
        .map(|(windows, d)| d.classify_windows_checked(windows).into_iter())
        .collect();
    meta.iter()
        .map(|&(idx, has_window, per)| {
            let vote = if has_window {
                votes[idx].next().expect("one vote per batched window")
            } else {
                None
            };
            (vote, per)
        })
        .collect()
}

/// Partial Fisher-Yates over candidate indices: the subset-draw primitive
/// shared by the stateful pool and the seeded walk.
fn draw_active(rng: &mut SmallRng, candidates: usize, active_size: usize) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..candidates).collect();
    for i in 0..active_size {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    indices.truncate(active_size);
    indices
}

impl fmt::Debug for NonStationaryRhmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NonStationaryRhmd")
            .field("pool", &self.describe())
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmd::ProgramVerdict;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        (traced, splits)
    }

    fn two_detector_pool(traced: &TracedCorpus, train: &[usize], seed: u64) -> ResilientHmd {
        let specs = pool_specs(
            &[FeatureKind::Memory, FeatureKind::Architectural],
            &[5_000],
            &[],
        );
        build_pool(
            Algorithm::Lr,
            specs,
            &TrainerConfig::default(),
            traced,
            train,
            seed,
        )
    }

    #[test]
    fn pool_specs_cross_product() {
        let specs = pool_specs(
            &[FeatureKind::Memory, FeatureKind::Instructions],
            &[5_000, 10_000],
            &[Opcode::Xor],
        );
        assert_eq!(specs.len(), 4);
        let labels: Vec<String> = specs.iter().map(FeatureSpec::label).collect();
        assert!(labels.contains(&"Memory@5k".to_owned()));
        assert!(labels.contains(&"Instructions@10k".to_owned()));
    }

    #[test]
    fn label_stream_covers_complete_epochs() {
        let (traced, splits) = fixture();
        let mut rhmd = two_detector_pool(&traced, &splits.victim_train, 1);
        let subs = traced.subwindows(0);
        let stream = rhmd.label_subwindows(subs);
        assert!(!stream.is_empty());
        assert!(stream.len() <= subs.len());
    }

    #[test]
    fn switching_is_stochastic_but_seed_deterministic() {
        let (traced, splits) = fixture();
        let subs = traced.subwindows(0);
        let mut a = two_detector_pool(&traced, &splits.victim_train, 7);
        let mut b = two_detector_pool(&traced, &splits.victim_train, 7);
        assert_eq!(a.label_subwindows(subs), b.label_subwindows(subs));
        // Reset restores the stream.
        let first = {
            a.reset();
            a.label_subwindows(subs)
        };
        a.reset();
        assert_eq!(a.label_subwindows(subs), first);
    }

    #[test]
    #[allow(deprecated)] // the `*_seeded` forwarders stay bit-compatible for one release
    fn seeded_walks_match_fresh_serial_walks() {
        let (traced, splits) = fixture();
        let mut rhmd = two_detector_pool(&traced, &splits.victim_train, 0x5eed);
        let subs = traced.subwindows(0);
        // Seeded with the construction seed, the immutable variants replay
        // exactly what a freshly reset pool produces.
        rhmd.reset();
        let serial_labels = rhmd.label_subwindows(subs);
        assert_eq!(rhmd.label_subwindows_seeded(subs, 0x5eed), serial_labels);
        rhmd.reset();
        let serial_decisions = rhmd.decisions(subs);
        assert_eq!(rhmd.decisions_seeded(subs, 0x5eed), serial_decisions);
        rhmd.reset();
        let serial_quorum = rhmd.quorum_verdict(subs, 1.0);
        assert_eq!(rhmd.quorum_verdict_seeded(subs, 1.0, 0x5eed), serial_quorum);
        // The trait path is the same walk: bit-identical to the forwarders.
        assert_eq!(
            rhmd.label_stream(subs, &mut StreamRng::from_seed(0x5eed)),
            serial_labels
        );
        assert_eq!(
            rhmd.epoch_decisions(subs, &mut StreamRng::from_seed(0x5eed)),
            serial_decisions
        );
        assert_eq!(
            rhmd.quorum(subs, 1.0, &mut StreamRng::from_seed(0x5eed)),
            serial_quorum
        );
        // And they are order-free: judging another program first changes
        // nothing, unlike the shared-RNG path.
        let _ = rhmd.quorum_verdict_seeded(traced.subwindows(1), 1.0, 7);
        assert_eq!(rhmd.quorum_verdict_seeded(subs, 1.0, 0x5eed), serial_quorum);
        // Repeated seeded calls are pure functions of (subwindows, seed).
        assert_eq!(
            rhmd.label_subwindows_seeded(subs, 1),
            rhmd.label_subwindows_seeded(subs, 1)
        );
    }

    #[test]
    fn non_stationary_seeded_walk_matches_fresh_pool() {
        let (traced, splits) = fixture();
        let kinds = [FeatureKind::Memory, FeatureKind::Architectural];
        let candidates: Vec<Hmd> = pool_specs(&kinds, &[5_000, 10_000], &[])
            .into_iter()
            .map(|spec| {
                Hmd::train(
                    Algorithm::Lr,
                    spec,
                    &TrainerConfig::default(),
                    &traced,
                    &splits.victim_train,
                )
            })
            .collect();
        let subs = traced.subwindows(0);
        for seed in [0u64, 42, 0x5eed] {
            let mut pool = NonStationaryRhmd::new(candidates.clone(), 2, 2, seed);
            let stateful = pool.label_subwindows(subs);
            assert_eq!(
                pool.label_stream(subs, &mut StreamRng::from_seed(seed)),
                stateful,
                "seed {seed}: trait walk diverged from fresh stateful walk"
            );
            pool.reset();
            let decisions = pool.decisions(subs);
            assert_eq!(
                pool.epoch_decisions(subs, &mut StreamRng::from_seed(seed)),
                decisions
            );
        }
    }

    #[test]
    fn stochastic_pool_is_seed_deterministic_and_detects() {
        let (traced, splits) = fixture();
        let specs = || {
            pool_specs(
                &[FeatureKind::Memory, FeatureKind::Architectural],
                &[5_000],
                &[],
            )
        };
        let quant = rhmd_ml::QuantConfig::stochastic(rhmd_ml::QuantBits::Int16, 0xd1ce);
        let build = || {
            build_stochastic_pool(
                Algorithm::Lr,
                specs(),
                &TrainerConfig::default(),
                quant,
                &traced,
                &splits.victim_train,
                9,
            )
        };
        let subs = traced.subwindows(0);
        let mut a = build();
        let mut b = build();
        // Stochastic rounding is seeded: two identically built pools emit
        // byte-identical decision streams.
        assert_eq!(a.label_subwindows(subs), b.label_subwindows(subs));
        // And the pool still detects: program accuracy beats chance.
        let labels = traced.corpus().labels();
        a.reset();
        let mut correct = 0usize;
        let mut total = 0usize;
        for &i in &splits.attacker_test {
            let stream = a.label_subwindows(traced.subwindows(i));
            let verdict = ProgramVerdict::from_decisions(&stream);
            if verdict.is_malware() == labels[i] {
                correct += 1;
            }
            total += 1;
        }
        assert!(
            correct as f64 / total as f64 > 0.6,
            "stochastic pool program accuracy {correct}/{total}"
        );
    }

    #[test]
    fn rhmd_detection_beats_chance() {
        let (traced, splits) = fixture();
        let mut rhmd = two_detector_pool(&traced, &splits.victim_train, 3);
        let labels = traced.corpus().labels();
        let mut correct = 0usize;
        let mut total = 0usize;
        for &i in &splits.attacker_test {
            let stream = rhmd.label_subwindows(traced.subwindows(i));
            let verdict = ProgramVerdict::from_decisions(&stream);
            if verdict.is_malware() == labels[i] {
                correct += 1;
            }
            total += 1;
        }
        assert!(
            correct as f64 / total as f64 > 0.6,
            "program accuracy {correct}/{total}"
        );
    }

    #[test]
    fn mixed_periods_consume_variable_epochs() {
        let (traced, splits) = fixture();
        let specs = pool_specs(
            &[FeatureKind::Memory, FeatureKind::Architectural],
            &[5_000, 10_000],
            &[],
        );
        let mut rhmd = build_pool(
            Algorithm::Lr,
            specs,
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
            5,
        );
        assert_eq!(rhmd.detectors().len(), 4);
        let stream = rhmd.label_subwindows(traced.subwindows(1));
        assert!(!stream.is_empty());
    }

    #[test]
    fn non_stationary_pool_runs_and_redraws() {
        let (traced, splits) = fixture();
        let kinds = [FeatureKind::Memory, FeatureKind::Architectural, FeatureKind::Instructions];
        let candidates: Vec<Hmd> = pool_specs(&kinds, &[5_000, 10_000], &[Opcode::Xor, Opcode::Fpu])
            .into_iter()
            .map(|spec| {
                Hmd::train(
                    Algorithm::Lr,
                    spec,
                    &TrainerConfig::default(),
                    &traced,
                    &splits.victim_train,
                )
            })
            .collect();
        let mut pool = NonStationaryRhmd::new(candidates, 3, 2, 42);
        assert_eq!(pool.active().len(), 3);
        let first_active = pool.active().to_vec();
        let subs = traced.subwindows(0);
        let stream = pool.label_subwindows(subs);
        assert!(!stream.is_empty());
        // After several epochs the active subset should have been re-drawn.
        assert!(
            pool.active() != first_active.as_slice() || {
                // Redraw can coincidentally pick the same subset; force more
                // epochs and check the RNG advanced.
                let more = pool.decisions(subs);
                !more.is_empty()
            }
        );
        // Determinism via reset.
        pool.reset();
        let replay = pool.label_subwindows(subs);
        pool.reset();
        assert_eq!(pool.label_subwindows(subs), replay);
    }

    #[test]
    fn corrupted_epochs_are_skipped_not_fatal() {
        use rhmd_features::window::apply_faults;
        use rhmd_uarch::faults::{FaultConfig, FaultModel};

        let (traced, splits) = fixture();
        let subs = traced.subwindows(0).to_vec();
        let mut rhmd = two_detector_pool(&traced, &splits.victim_train, 11);

        // Dropped reads coalesce into over-full windows: shorter stream,
        // but the surviving epochs still vote.
        let drops = FaultModel::new(FaultConfig::dropping(0.3), 0xfa17);
        let dropped = apply_faults(&subs, &drops);
        assert!(dropped.len() < subs.len(), "drops must coalesce reads");
        let q = rhmd.quorum_verdict(&dropped, 1.0);
        assert!(q.voted > 0, "walk must vote on coalesced windows");

        // A lost mid-stream window drags its epoch below the fill floor:
        // that epoch abstains, epochs on either side keep voting.
        let mut corrupted = subs.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] = rhmd_features::window::RawWindow::default();
        rhmd.reset();
        let q = rhmd.quorum_verdict(&corrupted, 1.0);
        assert!(q.abstained > 0, "garbage windows should force abstentions");
        assert!(q.voted > 0, "walk must continue past corrupted epochs");

        // A clean stream matches decisions().
        rhmd.reset();
        let clean = rhmd.quorum_verdict(&subs, 1.0);
        rhmd.reset();
        let plain = rhmd.decisions(&subs);
        assert_eq!(clean.voted, plain.len());
    }

    #[test]
    #[should_panic(expected = "active subset size")]
    fn non_stationary_validates_subset_size() {
        let (traced, splits) = fixture();
        let pool = two_detector_pool(&traced, &splits.victim_train, 1);
        let _ = NonStationaryRhmd::new(pool.detectors().to_vec(), 5, 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one detector")]
    fn empty_pool_rejected() {
        let _ = ResilientHmd::new(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn bad_probabilities_rejected() {
        let (traced, splits) = fixture();
        let pool = two_detector_pool(&traced, &splits.victim_train, 1);
        let detectors = pool.detectors().to_vec();
        let _ = ResilientHmd::with_probabilities(detectors, vec![0.9, 0.9], 0);
    }
}
