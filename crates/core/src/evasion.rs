//! Developing evasive malware (paper §5): turning a (reverse-engineered)
//! detector model into an instruction-injection plan, and measuring how well
//! the rewritten malware hides.

use crate::hmd::{BlackBox, Hmd, ProgramVerdict};
use rhmd_data::{parallel_map, TracedCorpus};
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_features::window::MEM_BINS;
use rhmd_ml::linear::LogisticRegression;
use rhmd_ml::mlp::Mlp;
use rhmd_ml::svm::LinearSvm;
use rhmd_trace::inject::{apply, InjectionPlan, Placement};
use rhmd_trace::isa::Opcode;
use rhmd_trace::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the payload instructions are chosen (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Uniformly random injectable opcodes — the control experiment (Fig 6).
    Random,
    /// Repeat the single most negative-weight feature's instruction
    /// (Figs 8a/8b).
    LeastWeight,
    /// Sample among all negative-weight instructions with probability
    /// proportional to |weight| (Fig 10).
    Weighted,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Random => f.write_str("random"),
            Strategy::LeastWeight => f.write_str("least-weight"),
            Strategy::Weighted => f.write_str("weighted"),
        }
    }
}

/// Per-dimension linear(ized) weights of a detector model, in raw feature
/// space.
///
/// `None` when the model exposes no usable weight structure (e.g. a decision
/// tree).
pub fn extract_weights(hmd: &Hmd) -> Option<Vec<f64>> {
    extract_weights_at(hmd, None)
}

/// Like [`extract_weights`], but linearizes non-linear models *around a
/// reference point* (typically the attacker's malware centroid) instead of
/// using the paper's global weight-collapsing heuristic. The local gradient
/// gives a far better evasive direction against NN victims, whose decision
/// surfaces are non-monotone.
pub fn extract_weights_at(hmd: &Hmd, reference: Option<&[f64]>) -> Option<Vec<f64>> {
    let any = hmd.model().as_any();
    if let Some(lr) = any.downcast_ref::<LogisticRegression>() {
        return Some(lr.input_space_weights().0);
    }
    if let Some(svm) = any.downcast_ref::<LinearSvm>() {
        return Some(svm.input_space_weights().0);
    }
    if let Some(nn) = any.downcast_ref::<Mlp>() {
        return Some(match reference {
            // Local linearization at the malware centroid.
            Some(point) => nn.input_gradient(point),
            // The paper's heuristic: collapse the network into one weight
            // per input by summing products along all paths (§5).
            None => nn.collapsed_input_weights(),
        });
    }
    None
}

/// The weights of a spec's components, split per feature kind.
///
/// Multi-kind (combined) specs concatenate dimensions; this view recovers
/// which slice belongs to which kind so a strategy can target each.
#[derive(Debug, Clone)]
pub struct WeightView<'a> {
    spec: &'a FeatureSpec,
    weights: &'a [f64],
}

impl<'a> WeightView<'a> {
    /// Creates a view.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not match the spec's dimensionality.
    pub fn new(spec: &'a FeatureSpec, weights: &'a [f64]) -> WeightView<'a> {
        assert_eq!(weights.len(), spec.dims(), "weights do not match spec dims");
        WeightView { spec, weights }
    }

    fn kind_slice(&self, wanted: FeatureKind) -> Option<&'a [f64]> {
        let mut offset = 0usize;
        for kind in &self.spec.kinds {
            let len = match kind {
                FeatureKind::Instructions => self.spec.opcodes.len(),
                FeatureKind::Memory => MEM_BINS,
                FeatureKind::Architectural => rhmd_uarch::events::COUNTER_DIMS,
            };
            if *kind == wanted {
                return Some(&self.weights[offset..offset + len]);
            }
            offset += len;
        }
        None
    }

    /// `(opcode, weight)` pairs of the Instructions component, if present.
    pub fn opcode_weights(&self) -> Option<Vec<(Opcode, f64)>> {
        let slice = self.kind_slice(FeatureKind::Instructions)?;
        Some(
            self.spec
                .opcodes
                .iter()
                .copied()
                .zip(slice.iter().copied())
                .collect(),
        )
    }

    /// `(delta_bin, weight)` pairs of the Memory component, if present.
    pub fn memory_bin_weights(&self) -> Option<Vec<(usize, f64)>> {
        let slice = self.kind_slice(FeatureKind::Memory)?;
        Some(slice.iter().copied().enumerate().collect())
    }
}

/// Everything needed to build payloads against one detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvasionConfig {
    /// Payload-selection strategy.
    pub strategy: Strategy,
    /// Instructions injected per site.
    pub count: usize,
    /// Block-level or function-level placement.
    pub placement: Placement,
    /// RNG seed (random / weighted strategies).
    pub seed: u64,
}

impl EvasionConfig {
    /// Least-weight block-level injection of `count` instructions — the
    /// paper's headline attack.
    pub fn least_weight(count: usize) -> EvasionConfig {
        EvasionConfig {
            strategy: Strategy::LeastWeight,
            count,
            placement: Placement::EveryBlock,
            seed: 0xe7a5,
        }
    }
}

/// Builds an injection plan against `model_hmd` (usually the attacker's
/// reverse-engineered surrogate).
///
/// The payload targets whatever feature kinds the surrogate observes:
///
/// * **Instructions** — inject negative-weight opcodes;
/// * **Memory** — inject loads/stores whose scratch stride lands in the most
///   negative-weight delta bin;
/// * **Architectural** — fall back to `nop` dilution (the paper notes these
///   effects "may not be directly controllable").
///
/// With no usable weights (decision-tree model) or the `Random` strategy,
/// payloads are uniformly random injectable opcodes.
pub fn plan_evasion(model_hmd: &Hmd, config: &EvasionConfig) -> InjectionPlan {
    plan_evasion_at(model_hmd, config, None)
}

/// Like [`plan_evasion`], linearizing non-linear surrogates around
/// `reference` (see [`extract_weights_at`]).
pub fn plan_evasion_at(
    model_hmd: &Hmd,
    config: &EvasionConfig,
    reference: Option<&[f64]>,
) -> InjectionPlan {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let weights = extract_weights_at(model_hmd, reference);
    let spec = model_hmd.spec();

    let mut payload: Vec<Opcode> = Vec::with_capacity(config.count);
    let mut mem_delta = 64u32;

    let injectable: Vec<Opcode> = Opcode::ALL
        .iter()
        .copied()
        .filter(|op| op.is_injectable())
        .collect();

    match (&weights, config.strategy) {
        (Some(w), Strategy::LeastWeight | Strategy::Weighted) => {
            let view = WeightView::new(spec, w);
            // Memory component: steer the scratch stride into the most
            // negative bin. Bin b >= 1 covers [2^(b-1), 2^b).
            if let Some(bins) = view.memory_bin_weights() {
                if let Some(&(bin, w)) = bins
                    .iter()
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                {
                    if w < 0.0 {
                        mem_delta = if bin == 0 { 0 } else { 1u32 << (bin - 1).min(30) };
                    }
                }
            }
            if let Some(op_weights) = view.opcode_weights() {
                let negatives: Vec<(Opcode, f64)> = op_weights
                    .iter()
                    .copied()
                    .filter(|&(op, w)| w < 0.0 && op.is_injectable())
                    .collect();
                if negatives.is_empty() {
                    // Nothing pulls toward benign: dilute with nops.
                    payload.extend(std::iter::repeat_n(Opcode::Nop, config.count));
                } else {
                    match config.strategy {
                        Strategy::LeastWeight => {
                            let (op, _) = negatives
                                .iter()
                                .copied()
                                .min_by(|a, b| a.1.total_cmp(&b.1))
                                .expect("non-empty");
                            payload.extend(std::iter::repeat_n(op, config.count));
                        }
                        Strategy::Weighted => {
                            let total: f64 = negatives.iter().map(|(_, w)| w.abs()).sum();
                            for _ in 0..config.count {
                                let mut u = rng.gen::<f64>() * total;
                                let mut chosen = negatives[0].0;
                                for &(op, w) in &negatives {
                                    if u < w.abs() {
                                        chosen = op;
                                        break;
                                    }
                                    u -= w.abs();
                                }
                                payload.push(chosen);
                            }
                        }
                        Strategy::Random => unreachable!(),
                    }
                }
            } else if view.memory_bin_weights().is_some() {
                // Memory-only detector: payload is loads into the steered
                // scratch stride.
                payload.extend(std::iter::repeat_n(Opcode::Load, config.count));
            } else {
                // Architectural-only detector: dilute event rates.
                payload.extend(std::iter::repeat_n(Opcode::Nop, config.count));
            }
        }
        _ => {
            // Random strategy or opaque model: fresh random opcodes at every
            // site (the paper's Fig 6 control).
            let _ = &mut rng;
            return InjectionPlan::random(
                injectable,
                config.count,
                config.placement,
                config.seed,
            )
            .with_mem_delta(mem_delta);
        }
    }

    InjectionPlan::new(payload, config.placement).with_mem_delta(mem_delta)
}

/// Static, dynamic, and time cost of applying a plan to a program
/// (paper Fig 9; the paper's overheads are execution-time based, which the
/// `time_overhead` field models through [`rhmd_uarch::timing::TimingModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Text growth relative to the original binary.
    pub static_overhead: f64,
    /// Executed-instruction growth relative to the original stream.
    pub dynamic_overhead: f64,
    /// Estimated execution-time growth (cycle model over the event
    /// counters).
    pub time_overhead: f64,
}

/// Rewrites `program` and measures all three overheads by executing both
/// versions to the same amount of *original* work through the core model.
pub fn measure_overhead(
    program: &Program,
    plan: &InjectionPlan,
    limits: rhmd_trace::exec::ExecLimits,
) -> OverheadReport {
    let (modified, static_overhead) = apply(program, plan);
    let budget = limits.max_instructions.min(1 << 40);
    let bounded = rhmd_trace::exec::ExecLimits::original_instructions(budget);

    let run = |p: &Program| {
        let mut core = rhmd_uarch::CoreModel::new(rhmd_uarch::CoreConfig::default());
        let summary = p.execute(bounded, &mut core);
        (summary, core.drain_counters())
    };
    let (_, base_counters) = run(program);
    let (summary, mod_counters) = run(&modified);
    let timing = rhmd_uarch::timing::TimingModel::default();
    OverheadReport {
        static_overhead: static_overhead.ratio(),
        dynamic_overhead: summary.dynamic_overhead(),
        time_overhead: timing.time_overhead(&base_counters, &mod_counters),
    }
}

/// Outcome of an evasion campaign over the initially-detected malware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvasionTrial {
    /// Malware programs the victim detected before modification (the
    /// denominator; the paper evaluates evasion on exactly this set).
    pub initially_detected: usize,
    /// Of those, how many the victim still detects after injection.
    pub detected_after: usize,
    /// Mean static overhead across rewritten programs.
    pub mean_static_overhead: f64,
    /// Mean dynamic overhead across rewritten programs.
    pub mean_dynamic_overhead: f64,
}

impl EvasionTrial {
    /// Post-injection detection rate over the initially-detected set
    /// (1.0 when nothing was initially detected — nothing to evade).
    pub fn detection_rate(&self) -> f64 {
        if self.initially_detected == 0 {
            1.0
        } else {
            self.detected_after as f64 / self.initially_detected as f64
        }
    }
}

/// Rewrites every initially-detected malware program in `malware_indices`
/// with `plan` and re-queries `victim` (paper Figs 6, 8, 10, 16).
///
/// Modified programs are re-traced with an instruction budget scaled by the
/// plan's static inflation, so the malware still executes (at least) its
/// original workload.
pub fn evade_corpus(
    victim: &mut dyn BlackBox,
    traced: &TracedCorpus,
    malware_indices: &[usize],
    plan: &InjectionPlan,
) -> EvasionTrial {
    // 1. Which malware does the victim detect unmodified?
    let detected: Vec<usize> = malware_indices
        .iter()
        .copied()
        .filter(|&i| {
            let stream = victim.label_subwindows(traced.subwindows(i));
            ProgramVerdict::from_decisions(&stream).is_malware()
        })
        .collect();

    if detected.is_empty() {
        return EvasionTrial {
            initially_detected: 0,
            detected_after: 0,
            mean_static_overhead: 0.0,
            mean_dynamic_overhead: 0.0,
        };
    }

    // 2. Rewrite and re-trace them (parallel: tracing dominates).
    let programs: Vec<&Program> = detected.iter().map(|&i| traced.corpus().program(i)).collect();
    let rewritten = parallel_map(&programs, |p| {
        let (modified, static_overhead) = apply(p, plan);
        let factor = 1.05 + static_overhead.ratio();
        let mut sink = rhmd_trace::exec::CountingSink::default();
        let limits = rhmd_trace::exec::ExecLimits {
            max_instructions: (traced.limits().max_instructions as f64 * factor) as u64,
            ..traced.limits()
        };
        let mut acc = rhmd_features::window::WindowAccumulator::new(
            rhmd_uarch::CoreModel::new(traced.core_config()),
        );
        let summary = modified.execute_observed(limits, &mut [&mut acc, &mut sink]);
        (acc.finish(), static_overhead.ratio(), summary.dynamic_overhead())
    });

    // 3. Re-query the victim.
    let mut detected_after = 0usize;
    let mut static_sum = 0.0;
    let mut dynamic_sum = 0.0;
    for (subs, st, dy) in &rewritten {
        let stream = victim.label_subwindows(subs);
        if ProgramVerdict::from_decisions(&stream).is_malware() {
            detected_after += 1;
        }
        static_sum += st;
        dynamic_sum += dy;
    }
    let n = rewritten.len() as f64;
    EvasionTrial {
        initially_detected: detected.len(),
        detected_after,
        mean_static_overhead: static_sum / n,
        mean_dynamic_overhead: dynamic_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, Vec<Opcode>) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let labels = traced.corpus().labels();
        let mal: Vec<_> = splits
            .victim_train
            .iter()
            .filter(|&&i| labels[i])
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect();
        let ben: Vec<_> = splits
            .victim_train
            .iter()
            .filter(|&&i| !labels[i])
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect();
        let opcodes = rhmd_features::select::select_top_delta_opcodes(&mal, &ben, 12);
        (traced, splits, opcodes)
    }

    fn instr_spec(opcodes: &[Opcode]) -> FeatureSpec {
        FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes.to_vec())
    }

    #[test]
    fn weights_extracted_for_linear_models() {
        let (traced, splits, opcodes) = fixture();
        let spec = instr_spec(&opcodes);
        for algo in [Algorithm::Lr, Algorithm::Svm, Algorithm::Nn] {
            let hmd = Hmd::train(
                algo,
                spec.clone(),
                &TrainerConfig::default(),
                &traced,
                &splits.victim_train,
            );
            let w = extract_weights(&hmd).expect("weights for linear-ish model");
            assert_eq!(w.len(), spec.dims());
        }
        let dt = Hmd::train(
            Algorithm::Dt,
            spec,
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        assert!(extract_weights(&dt).is_none());
    }

    #[test]
    fn least_weight_payload_repeats_one_opcode() {
        let (traced, splits, opcodes) = fixture();
        let hmd = Hmd::train(
            Algorithm::Lr,
            instr_spec(&opcodes),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let plan = plan_evasion(&hmd, &EvasionConfig::least_weight(3));
        assert_eq!(plan.payload_len(), 3);
        assert!(plan.payload().windows(2).all(|w| w[0] == w[1]));
        // The chosen opcode must carry negative weight.
        let w = extract_weights(&hmd).unwrap();
        let view = WeightView::new(hmd.spec(), &w);
        let op_weights = view.opcode_weights().unwrap();
        let chosen = plan.payload()[0];
        let weight = op_weights
            .iter()
            .find(|(op, _)| *op == chosen)
            .map(|(_, w)| *w);
        if let Some(weight) = weight {
            assert!(weight < 0.0, "chosen opcode weight {weight}");
        }
    }

    #[test]
    fn evasion_reduces_detection_against_lr() {
        let (traced, splits, opcodes) = fixture();
        let spec = instr_spec(&opcodes);
        let mut victim = Hmd::train(
            Algorithm::Lr,
            spec,
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let labels = traced.corpus().labels();
        let malware: Vec<usize> = splits
            .attacker_test
            .iter()
            .copied()
            .filter(|&i| labels[i])
            .collect();
        let plan = {
            let hmd_clone = victim.clone();
            plan_evasion(&hmd_clone, &EvasionConfig::least_weight(3))
        };
        let trial = evade_corpus(&mut victim, &traced, &malware, &plan);
        assert!(trial.initially_detected > 0, "victim detects nothing");
        assert!(
            trial.detection_rate() < 0.8,
            "evasion did not help: {:?}",
            trial
        );
        assert!(trial.mean_dynamic_overhead > 0.0);
    }

    #[test]
    fn random_payload_is_diverse_and_harmless() {
        let (traced, splits, opcodes) = fixture();
        let mut victim = Hmd::train(
            Algorithm::Lr,
            instr_spec(&opcodes),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let labels = traced.corpus().labels();
        let malware: Vec<usize> = splits
            .attacker_test
            .iter()
            .copied()
            .filter(|&i| labels[i])
            .collect();
        // Paper Fig 6: random injection is the weak control. A single
        // seed's outcome over 4 malware samples is a coin flip, so
        // average over a seed sweep and compare against the targeted
        // least-weight attack, which reliably evades this victim.
        let seeds = [0u64, 1, 2, 3, 4, 5, 6, 7];
        let mut total_rate = 0.0;
        for &seed in &seeds {
            let plan = plan_evasion(
                &victim.clone(),
                &EvasionConfig {
                    strategy: Strategy::Random,
                    count: 2,
                    placement: Placement::EveryBlock,
                    seed,
                },
            );
            let trial = evade_corpus(&mut victim, &traced, &malware, &plan);
            assert!(trial.mean_static_overhead > 0.0);
            assert!(trial.mean_dynamic_overhead > 0.0);
            total_rate += trial.detection_rate();
        }
        let random_rate = total_rate / seeds.len() as f64;
        let targeted_plan = plan_evasion(&victim.clone(), &EvasionConfig::least_weight(2));
        let targeted = evade_corpus(&mut victim, &traced, &malware, &targeted_plan);
        assert!(
            random_rate > targeted.detection_rate() + 0.2,
            "random injection should evade far less than targeted: \
             random {random_rate}, targeted {}",
            targeted.detection_rate()
        );
    }

    #[test]
    fn overhead_grows_with_payload() {
        let (traced, _, opcodes) = fixture();
        let program = traced.corpus().program(0);
        let spec = instr_spec(&opcodes);
        let _ = spec;
        let plan1 = InjectionPlan::new(vec![Opcode::Nop], Placement::EveryBlock);
        let plan5 = InjectionPlan::new(vec![Opcode::Nop; 5], Placement::EveryBlock);
        let o1 = measure_overhead(program, &plan1, traced.limits());
        let o5 = measure_overhead(program, &plan5, traced.limits());
        assert!(o5.static_overhead > o1.static_overhead);
        assert!(o5.dynamic_overhead > o1.dynamic_overhead);
        assert!(o1.static_overhead > 0.05 && o1.static_overhead < 0.6);
    }
}
