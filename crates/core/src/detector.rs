//! The unified, defender-side [`Detector`] trait.
//!
//! Every detector family in this crate — the deterministic
//! [`Hmd`](crate::hmd::Hmd) and
//! [`EnsembleHmd`](crate::ensemble::EnsembleHmd), the randomized
//! [`ResilientHmd`](crate::rhmd::ResilientHmd), and the
//! [`NonStationaryRhmd`](crate::rhmd::NonStationaryRhmd) — historically
//! grew its own near-duplicate method family (`label_subwindows`,
//! `decisions`, `quorum_verdict`, plus the `*_seeded` variants the
//! parallel evaluator needs). This module collapses all of them behind one
//! trait whose randomness is an *explicit parameter*: every call takes a
//! caller-seeded [`StreamRng`], so
//!
//! * deterministic detectors simply ignore it,
//! * randomized detectors draw their switching stream from it, and
//! * callers control reproducibility — the same `(subwindows, seed)` pair
//!   always yields the same output, regardless of call order or thread
//!   count. That property is what lets the parallel evaluator fan programs
//!   out without sharing RNG state.
//!
//! The old inherent `*_seeded` methods remain as thin deprecated
//! forwarders for one release.
//!
//! # Examples
//!
//! ```no_run
//! use rhmd_core::detector::{Detector, StreamRng};
//! # fn doc(rhmd: rhmd_core::rhmd::ResilientHmd, subs: &[rhmd_features::RawWindow]) {
//! let detector: &dyn Detector = &rhmd;
//! let mut rng = StreamRng::from_seed(0x5eed);
//! let labels = detector.label_stream(subs, &mut rng);
//! # }
//! ```

use crate::hmd::QuorumVerdict;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rhmd_features::window::RawWindow;
use std::fmt;

/// An explicitly seeded per-stream RNG, passed by the caller into every
/// [`Detector`] call (the splitmix-style discipline used across the
/// codebase: derive one seed per program, construct one `StreamRng` per
/// query stream).
///
/// Wraps the same `SmallRng::seed_from_u64` construction the historical
/// `*_seeded` methods used, so trait-path results are bit-identical to
/// them.
pub struct StreamRng {
    rng: SmallRng,
}

impl StreamRng {
    /// A stream RNG seeded with `stream_seed`.
    pub fn from_seed(stream_seed: u64) -> StreamRng {
        StreamRng {
            rng: SmallRng::seed_from_u64(stream_seed),
        }
    }

    /// The underlying RNG, for detector implementations.
    pub fn small(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

impl fmt::Debug for StreamRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StreamRng")
    }
}

/// The single detection API all four detector families implement.
///
/// All methods take `&self` plus an explicit [`StreamRng`]: state that the
/// legacy API hid inside `&mut self` (the switching RNG of randomized
/// detectors) is now owned by the caller, which makes every call a pure
/// function of `(detector, subwindows, rng seed)` — the contract the
/// parallel evaluator and the checkpoint/resume machinery rely on for
/// bit-identical results at any thread count.
///
/// Deterministic detectors ([`Hmd`], `EnsembleHmd`) ignore the RNG
/// entirely; for them every method is trivially seed-independent.
///
/// [`Hmd`]: crate::hmd::Hmd
pub trait Detector {
    /// Short human-readable description for reports (e.g. `LR[Arch@10k]`).
    fn name(&self) -> String;

    /// Per-subwindow decision stream for one traced program: each
    /// detection epoch's decision is replicated across the subwindows it
    /// covers, truncated at the last complete epoch.
    fn label_stream(&self, subwindows: &[RawWindow], rng: &mut StreamRng) -> Vec<bool>;

    /// One decision per detection epoch (collection window), without
    /// subwindow expansion.
    fn epoch_decisions(&self, subwindows: &[RawWindow], rng: &mut StreamRng) -> Vec<bool>;

    /// Program-level quorum verdict over a possibly degraded trace:
    /// epochs whose window covers less than `min_fill` of the period, or
    /// whose features fail the sanity check, abstain instead of voting.
    fn quorum(&self, subwindows: &[RawWindow], min_fill: f64, rng: &mut StreamRng)
        -> QuorumVerdict;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_rng_is_deterministic_per_seed() {
        use rand::Rng;
        let mut a = StreamRng::from_seed(42);
        let mut b = StreamRng::from_seed(42);
        let va: Vec<u64> = (0..8).map(|_| a.small().gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.small().gen()).collect();
        assert_eq!(va, vb);
        let mut c = StreamRng::from_seed(43);
        let vc: Vec<u64> = (0..8).map(|_| c.small().gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn stream_rng_matches_legacy_construction() {
        use rand::Rng;
        let mut legacy = SmallRng::seed_from_u64(7);
        let mut stream = StreamRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(legacy.gen::<f64>(), stream.small().gen::<f64>());
        }
    }
}
