//! Minimal-overhead evasion planning.
//!
//! The paper's threat model (§2) makes overhead the attacker's budget:
//! malware monetized per unit of work cannot afford arbitrary slowdown.
//! This module models the attacker's natural optimization — *the smallest
//! payload that the surrogate predicts will cross the boundary* — by
//! analytically predicting the post-injection Instructions feature vector
//! instead of paying for a full rewrite + re-trace per candidate payload.

use crate::evasion::{plan_evasion_at, EvasionConfig, Strategy};
use crate::hmd::Hmd;
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_trace::inject::{InjectionPlan, Placement};
use serde::{Deserialize, Serialize};

/// Predicted post-injection Instructions feature vector.
///
/// Block-level injection of `count` instructions into blocks of mean
/// dynamic length `block_len` dilutes every original frequency by
/// `1 - f` and adds `f · payload_share` to each injected opcode, where
/// `f = count / (count + block_len)` is the injected fraction of the
/// committed stream.
///
/// # Panics
///
/// Panics if the spec's first kind is not Instructions or dimensions
/// mismatch.
pub fn predict_injected_vector(
    spec: &FeatureSpec,
    original: &[f64],
    payload: &[rhmd_trace::Opcode],
    block_len: f64,
) -> Vec<f64> {
    assert_eq!(
        spec.kinds.first(),
        Some(&FeatureKind::Instructions),
        "analytic prediction covers the Instructions feature"
    );
    assert_eq!(original.len(), spec.dims(), "vector does not match spec");
    if payload.is_empty() {
        return original.to_vec();
    }
    let f = payload.len() as f64 / (payload.len() as f64 + block_len.max(1.0));
    let mut predicted: Vec<f64> = original.iter().map(|v| v * (1.0 - f)).collect();
    let share = f / payload.len() as f64;
    for op in payload {
        if let Some(pos) = spec.opcodes.iter().position(|o| o == op) {
            predicted[pos] += share;
        }
    }
    predicted
}

/// Outcome of the minimal-payload search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinimalEvasion {
    /// Smallest per-block payload predicted to evade, if any within budget.
    pub count: Option<usize>,
    /// The plan at that count (least-weight strategy).
    pub plan: Option<InjectionPlan>,
    /// Predicted dynamic overhead `count / block_len` at the chosen count.
    pub predicted_overhead: f64,
    /// Fraction of malware windows the surrogate predicts benign at the
    /// chosen count.
    pub predicted_evasion: f64,
}

/// Searches payload sizes `1..=max_count` for the smallest one whose
/// predicted post-injection windows the surrogate classifies benign at
/// rate ≥ `target` (the program-level majority needs just over 0.5).
///
/// `malware_windows` are the attacker's own malware feature vectors under
/// the surrogate's spec; `block_len` the mean dynamic basic-block length of
/// the malware (observable by the attacker from its own binaries).
pub fn minimal_evasion(
    surrogate: &Hmd,
    malware_windows: &[Vec<f64>],
    reference: Option<&[f64]>,
    block_len: f64,
    max_count: usize,
    target: f64,
) -> MinimalEvasion {
    let spec = surrogate.spec();
    for count in 1..=max_count {
        let plan = plan_evasion_at(
            surrogate,
            &EvasionConfig {
                strategy: Strategy::LeastWeight,
                count,
                placement: Placement::EveryBlock,
                seed: 0x0b1,
            },
            reference,
        );
        let benign = malware_windows
            .iter()
            .filter(|w| {
                let predicted = predict_injected_vector(spec, w, plan.payload(), block_len);
                !surrogate.model().predict(&predicted)
            })
            .count();
        let rate = benign as f64 / malware_windows.len().max(1) as f64;
        if rate >= target {
            return MinimalEvasion {
                count: Some(count),
                predicted_overhead: count as f64 / block_len.max(1.0),
                predicted_evasion: rate,
                plan: Some(plan),
            };
        }
    }
    MinimalEvasion {
        count: None,
        plan: None,
        predicted_overhead: max_count as f64 / block_len.max(1.0),
        predicted_evasion: 0.0,
    }
}

/// Mean dynamic basic-block length of a program (committed instructions per
/// block entered), measured from one bounded execution.
pub fn mean_block_len(program: &rhmd_trace::Program) -> f64 {
    let mut sink = rhmd_trace::exec::CountingSink::default();
    let summary = program.execute(
        rhmd_trace::exec::ExecLimits::instructions(20_000),
        &mut sink,
    );
    if summary.blocks == 0 {
        1.0
    } else {
        summary.instructions as f64 / summary.blocks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::select::select_top_delta_opcodes;
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_trace::isa::Opcode;
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, FeatureSpec) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let labels = traced.corpus().labels();
        let mal: Vec<_> = splits
            .victim_train
            .iter()
            .filter(|&&i| labels[i])
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect();
        let ben: Vec<_> = splits
            .victim_train
            .iter()
            .filter(|&&i| !labels[i])
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect();
        let spec = FeatureSpec::new(
            FeatureKind::Instructions,
            5_000,
            select_top_delta_opcodes(&mal, &ben, 12),
        );
        (traced, splits, spec)
    }

    #[test]
    fn prediction_preserves_normalization() {
        let spec = FeatureSpec::new(
            FeatureKind::Instructions,
            10_000,
            vec![Opcode::Add, Opcode::Xor],
        );
        let original = vec![0.3, 0.1];
        let predicted = predict_injected_vector(&spec, &original, &[Opcode::Add], 9.0);
        // f = 1/10: frequencies shrink by 0.9, Add gains the full share.
        assert!((predicted[0] - (0.27 + 0.1)).abs() < 1e-12);
        assert!((predicted[1] - 0.09).abs() < 1e-12);
    }

    #[test]
    fn empty_payload_is_identity() {
        let spec = FeatureSpec::new(FeatureKind::Instructions, 10_000, vec![Opcode::Add]);
        let original = vec![0.4];
        assert_eq!(
            predict_injected_vector(&spec, &original, &[], 8.0),
            original
        );
    }

    #[test]
    fn minimal_count_exists_and_is_small_for_lr() {
        let (traced, splits, spec) = fixture();
        let mut victim = Hmd::train(
            Algorithm::Lr,
            spec.clone(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let surrogate = crate::reveng::reverse_engineer(
            &mut victim,
            &traced,
            &splits.attacker_train,
            spec.clone(),
            Algorithm::Lr,
            &TrainerConfig::with_seed(1),
        );
        let labels = traced.corpus().labels();
        let windows: Vec<Vec<f64>> = splits
            .attacker_train
            .iter()
            .filter(|&&i| labels[i])
            .flat_map(|&i| traced.program_vectors(i, &spec))
            .collect();
        let block_len = mean_block_len(traced.corpus().program(0));
        let result = minimal_evasion(&surrogate, &windows, None, block_len, 10, 0.6);
        let count = result.count.expect("LR should be evadable within 10");
        assert!(count <= 5, "minimal count {count}");
        assert!(result.predicted_overhead < 1.0);
        assert!(result.predicted_evasion >= 0.6);
    }

    #[test]
    fn mean_block_len_is_plausible() {
        let (traced, _, _) = fixture();
        let len = mean_block_len(traced.corpus().program(0));
        assert!((2.0..30.0).contains(&len), "block len {len}");
    }
}
