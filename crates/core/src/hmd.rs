//! Baseline hardware malware detectors (HMDs) and the black-box query
//! interface attackers see.

use rhmd_data::TracedCorpus;
use rhmd_features::vector::FeatureSpec;
use rhmd_features::window::{aggregate, aggregate_with_gaps, RawWindow, SUBWINDOW};
use rhmd_ml::matrix::FeatureMatrix;
use rhmd_ml::model::{Classifier, Dataset};
use rhmd_ml::trainer::{train, Algorithm, TrainerConfig};
use std::fmt;

/// Largest plausible magnitude for any healthy feature component. Every
/// projection is a frequency, normalized histogram mass, or per-instruction
/// rate, all of order one; values beyond this bound only arise from
/// corrupted counters, and a detector abstains rather than vote on them.
pub const ABSTAIN_BOUND: f64 = 1e3;

/// The black-box interface the attacker can query (paper §2: "the attacker
/// has access to a machine with a similar detector"). Formerly named
/// `Detector`; that name now refers to the defender-side
/// [`crate::detector::Detector`] trait.
///
/// A detector consumes a program's trace and emits a stream of binary
/// decisions, reported at [`SUBWINDOW`] granularity so detectors with
/// different (or randomized) collection periods are comparable: a decision
/// made over one collection window is replicated across all the subwindows
/// it covers. The stream is truncated at the last complete collection
/// window.
///
/// Decisions are label-only: no confidence is exposed, matching the paper's
/// threat model (§9.2).
pub trait BlackBox {
    /// Per-subwindow decision stream for one traced program.
    ///
    /// Takes `&mut self` because randomized detectors consume RNG state.
    fn label_subwindows(&mut self, subwindows: &[RawWindow]) -> Vec<bool>;

    /// One decision per detection epoch (collection window), without
    /// subwindow expansion — the granularity at which the attacker actually
    /// observes the detector's output.
    fn decisions(&mut self, subwindows: &[RawWindow]) -> Vec<bool>;

    /// Short description for reports.
    fn describe(&self) -> String;
}

/// Program-level verdict from a decision stream: the paper raises
/// window-level accuracy "by averaging the decisions across multiple
/// intervals" (§8.2), i.e. majority vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProgramVerdict {
    /// Decisions that flagged malware.
    pub flagged: usize,
    /// Total decisions.
    pub total: usize,
}

impl ProgramVerdict {
    /// Builds a verdict from a decision stream.
    pub fn from_decisions(decisions: &[bool]) -> ProgramVerdict {
        ProgramVerdict {
            flagged: decisions.iter().filter(|&&d| d).count(),
            total: decisions.len(),
        }
    }

    /// Fraction of windows flagged (0.0 for empty streams).
    pub fn flag_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.flagged as f64 / self.total as f64
        }
    }

    /// Majority-vote malware verdict.
    pub fn is_malware(&self) -> bool {
        2 * self.flagged >= self.total.max(1)
    }
}

/// Program-level verdict over a vote stream that may contain abstentions:
/// windows a detector declined to judge (corrupted features, empty windows)
/// count toward coverage but never toward the vote, so a degraded stream
/// cannot silently mis-vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QuorumVerdict {
    /// Votes that flagged malware.
    pub flagged: usize,
    /// Windows that produced a vote (flagged or clean).
    pub voted: usize,
    /// Windows the detector abstained on.
    pub abstained: usize,
}

impl QuorumVerdict {
    /// Builds a quorum verdict from per-window votes (`None` = abstain).
    pub fn from_votes(votes: &[Option<bool>]) -> QuorumVerdict {
        let mut v = QuorumVerdict {
            flagged: 0,
            voted: 0,
            abstained: 0,
        };
        for vote in votes {
            match vote {
                Some(true) => {
                    v.flagged += 1;
                    v.voted += 1;
                }
                Some(false) => v.voted += 1,
                None => v.abstained += 1,
            }
        }
        rhmd_obs::add("core.windows.voted", v.voted as u64);
        rhmd_obs::add("core.windows.abstained", v.abstained as u64);
        v
    }

    /// Total windows examined (voted + abstained).
    pub fn total(&self) -> usize {
        self.voted + self.abstained
    }

    /// Fraction of examined windows that produced a vote (1.0 for empty
    /// streams — nothing was degraded).
    pub fn coverage(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.voted as f64 / self.total() as f64
        }
    }

    /// Fraction of *voting* windows that flagged (0.0 with no votes).
    pub fn flag_rate(&self) -> f64 {
        if self.voted == 0 {
            0.0
        } else {
            self.flagged as f64 / self.voted as f64
        }
    }

    /// Majority vote over the voting windows only.
    pub fn is_malware(&self) -> bool {
        2 * self.flagged >= self.voted.max(1)
    }

    /// Collapses to a plain [`ProgramVerdict`] over the voting windows.
    pub fn to_program_verdict(&self) -> ProgramVerdict {
        ProgramVerdict {
            flagged: self.flagged,
            total: self.voted,
        }
    }
}

/// A trained baseline HMD: one feature spec + one classifier.
///
/// # Examples
///
/// ```no_run
/// use rhmd_core::hmd::Hmd;
/// use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
/// use rhmd_features::{FeatureKind, FeatureSpec};
/// use rhmd_ml::{Algorithm, TrainerConfig};
/// use rhmd_uarch::CoreConfig;
///
/// let config = CorpusConfig::tiny();
/// let corpus = Corpus::build(&config);
/// let splits = Splits::new(&corpus, config.seed);
/// let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
/// let spec = FeatureSpec::new(FeatureKind::Architectural, 10_000, vec![]);
/// let hmd = Hmd::train(
///     Algorithm::Lr,
///     spec,
///     &TrainerConfig::default(),
///     &traced,
///     &splits.victim_train,
/// );
/// let verdict = hmd.verdict(traced.subwindows(0));
/// println!("{}", verdict.flag_rate());
/// ```
#[derive(Clone)]
pub struct Hmd {
    spec: FeatureSpec,
    algorithm: Algorithm,
    model: Box<dyn Classifier>,
}

impl Hmd {
    /// Trains an HMD on the window dataset of `indices` in `traced`.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty.
    pub fn train(
        algorithm: Algorithm,
        spec: FeatureSpec,
        trainer: &TrainerConfig,
        traced: &TracedCorpus,
        indices: &[usize],
    ) -> Hmd {
        let data = traced.window_dataset(indices, &spec);
        Hmd::train_on_dataset(algorithm, spec, trainer, &data)
    }

    /// Trains an HMD on an already-projected dataset (used by retraining
    /// experiments that mix in evasive windows).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or its dimensionality mismatches `spec`.
    pub fn train_on_dataset(
        algorithm: Algorithm,
        spec: FeatureSpec,
        trainer: &TrainerConfig,
        data: &Dataset,
    ) -> Hmd {
        assert_eq!(data.dims(), spec.dims(), "dataset does not match spec");
        let model = train(algorithm, trainer, data);
        Hmd {
            spec,
            algorithm,
            model,
        }
    }

    /// Assembles an HMD from an already-trained classifier (used by model
    /// persistence and by custom detector constructions).
    ///
    /// # Panics
    ///
    /// Panics if nothing guarantees the model matches the spec — callers are
    /// trusted; prefer [`Hmd::train`] where possible.
    pub fn from_parts(
        spec: FeatureSpec,
        algorithm: Algorithm,
        model: Box<dyn Classifier>,
    ) -> Hmd {
        Hmd {
            spec,
            algorithm,
            model,
        }
    }

    /// The feature spec this detector observes.
    pub fn spec(&self) -> &FeatureSpec {
        &self.spec
    }

    /// The training algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The underlying classifier (for weight extraction by evasion code).
    pub fn model(&self) -> &dyn Classifier {
        self.model.as_ref()
    }

    /// Decision for one already-aggregated collection window.
    pub fn classify_window(&self, window: &RawWindow) -> bool {
        self.model.predict(&self.spec.project(window))
    }

    /// Decision with abstention: `None` when the window is empty or its
    /// projection carries a component beyond [`ABSTAIN_BOUND`] — the
    /// signature of corrupted counters — so callers can skip this detector's
    /// vote instead of recording a meaningless one.
    pub fn classify_window_checked(&self, window: &RawWindow) -> Option<bool> {
        if window.instructions == 0 {
            return None;
        }
        let v = self.spec.project(window);
        if v.iter().any(|x| !x.is_finite() || x.abs() > ABSTAIN_BOUND) {
            return None;
        }
        Some(self.model.predict(&v))
    }

    /// Batch decisions for a slice of already-aggregated collection
    /// windows: all windows are projected into one flat [`FeatureMatrix`]
    /// and scored through [`Classifier::score_batch`], bit-identically to
    /// calling [`Hmd::classify_window`] per window.
    pub fn classify_windows(&self, windows: &[RawWindow]) -> Vec<bool> {
        let dims = self.spec.dims();
        if dims == 0 {
            return windows.iter().map(|w| self.classify_window(w)).collect();
        }
        let mut flat = Vec::with_capacity(windows.len() * dims);
        for w in windows {
            self.spec.project_into(w, &mut flat);
        }
        let xs = FeatureMatrix::from_flat(dims, flat);
        let mut scores = vec![0.0; xs.len()];
        self.model.score_batch(&xs, &mut scores);
        let threshold = self.model.threshold();
        scores.into_iter().map(|s| s >= threshold).collect()
    }

    /// Batch counterpart of [`Hmd::classify_window_checked`]: abstaining
    /// windows are filtered out first, the rest score through one flat
    /// matrix, and votes are scattered back in window order.
    pub fn classify_windows_checked(&self, windows: &[RawWindow]) -> Vec<Option<bool>> {
        let dims = self.spec.dims();
        let mut votes: Vec<Option<bool>> = vec![None; windows.len()];
        if dims == 0 {
            for (vote, w) in votes.iter_mut().zip(windows) {
                *vote = self.classify_window_checked(w);
            }
            return votes;
        }
        let mut flat = Vec::with_capacity(windows.len() * dims);
        let mut voters = Vec::with_capacity(windows.len());
        let mut row = Vec::with_capacity(dims);
        for (i, w) in windows.iter().enumerate() {
            if w.instructions == 0 {
                continue;
            }
            row.clear();
            self.spec.project_into(w, &mut row);
            if row.iter().any(|x| !x.is_finite() || x.abs() > ABSTAIN_BOUND) {
                continue;
            }
            flat.extend_from_slice(&row);
            voters.push(i);
        }
        let xs = FeatureMatrix::from_flat(dims, flat);
        let mut scores = vec![0.0; xs.len()];
        self.model.score_batch(&xs, &mut scores);
        let threshold = self.model.threshold();
        for (&i, s) in voters.iter().zip(scores) {
            votes[i] = Some(s >= threshold);
        }
        votes
    }

    /// Per-collection-window votes over a possibly degraded trace:
    /// aggregation tolerates dropped/coalesced subwindows down to
    /// `min_fill` of the period, and corrupted windows abstain.
    pub fn decide_windows_checked(
        &self,
        subwindows: &[RawWindow],
        min_fill: f64,
    ) -> Vec<Option<bool>> {
        let windows = aggregate_with_gaps(subwindows, self.spec.period, min_fill);
        self.classify_windows_checked(&windows)
    }

    /// Program-level quorum verdict over a possibly degraded trace.
    pub fn quorum_verdict(&self, subwindows: &[RawWindow], min_fill: f64) -> QuorumVerdict {
        QuorumVerdict::from_votes(&self.decide_windows_checked(subwindows, min_fill))
    }

    /// Per-collection-window decisions for a program trace, scored through
    /// the batch path.
    pub fn decide_windows(&self, subwindows: &[RawWindow]) -> Vec<bool> {
        let windows = aggregate(subwindows, self.spec.period);
        self.classify_windows(&windows)
    }

    /// Program-level verdict by majority vote over collection windows.
    pub fn verdict(&self, subwindows: &[RawWindow]) -> ProgramVerdict {
        ProgramVerdict::from_decisions(&self.decide_windows(subwindows))
    }
}

impl BlackBox for Hmd {
    fn label_subwindows(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        let per = (self.spec.period / SUBWINDOW) as usize;
        let mut out = Vec::with_capacity(subwindows.len());
        for decision in Hmd::decide_windows(self, subwindows) {
            out.extend(std::iter::repeat_n(decision, per));
        }
        out
    }

    fn decisions(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        Hmd::decide_windows(self, subwindows)
    }

    fn describe(&self) -> String {
        format!("{}[{}]", self.algorithm, self.spec.label())
    }
}

impl crate::detector::Detector for Hmd {
    fn name(&self) -> String {
        format!("{}[{}]", self.algorithm, self.spec.label())
    }

    /// Deterministic: the RNG is ignored.
    fn label_stream(
        &self,
        subwindows: &[RawWindow],
        _rng: &mut crate::detector::StreamRng,
    ) -> Vec<bool> {
        let per = (self.spec.period / SUBWINDOW) as usize;
        let mut out = Vec::with_capacity(subwindows.len());
        for decision in self.decide_windows(subwindows) {
            out.extend(std::iter::repeat_n(decision, per));
        }
        out
    }

    fn epoch_decisions(
        &self,
        subwindows: &[RawWindow],
        _rng: &mut crate::detector::StreamRng,
    ) -> Vec<bool> {
        self.decide_windows(subwindows)
    }

    fn quorum(
        &self,
        subwindows: &[RawWindow],
        min_fill: f64,
        _rng: &mut crate::detector::StreamRng,
    ) -> QuorumVerdict {
        self.quorum_verdict(subwindows, min_fill)
    }
}

impl fmt::Debug for Hmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hmd")
            .field("spec", &self.spec.label())
            .field("algorithm", &self.algorithm)
            .finish_non_exhaustive()
    }
}

/// Labels an attacker's windows (at `attacker_period`) with a victim's
/// decision stream, by majority over the covered subwindows — how the
/// attacker transfers black-box query results onto its own training rows
/// (paper Fig 1a).
///
/// Windows extending beyond the victim's decision coverage are dropped;
/// returns one label per *complete* attacker window.
///
/// # Panics
///
/// Panics if `attacker_period` is not a positive multiple of [`SUBWINDOW`].
pub fn transfer_labels(victim_stream: &[bool], attacker_period: u32) -> Vec<bool> {
    assert!(
        attacker_period > 0 && attacker_period.is_multiple_of(SUBWINDOW),
        "attacker period must be a positive multiple of {SUBWINDOW}"
    );
    let per = (attacker_period / SUBWINDOW) as usize;
    victim_stream
        .chunks(per)
        .filter(|c| c.len() == per)
        .map(|c| 2 * c.iter().filter(|&&d| d).count() >= per)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_features::vector::FeatureKind;
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        (traced, splits)
    }

    fn arch_spec() -> FeatureSpec {
        FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![])
    }

    #[test]
    fn trained_hmd_beats_chance() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Lr,
            arch_spec(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let mut correct = 0usize;
        let mut total = 0usize;
        for &i in &splits.attacker_test {
            let verdict = hmd.verdict(traced.subwindows(i));
            if verdict.is_malware() == traced.corpus().program(i).class.label() {
                correct += 1;
            }
            total += 1;
        }
        assert!(
            correct as f64 / total as f64 > 0.65,
            "program accuracy {correct}/{total}"
        );
    }

    #[test]
    fn subwindow_labels_cover_complete_windows() {
        let (traced, splits) = fixture();
        let mut hmd = Hmd::train(
            Algorithm::Lr,
            arch_spec(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let subs = traced.subwindows(0);
        let labels = hmd.label_subwindows(subs);
        let per = (5_000 / SUBWINDOW) as usize;
        assert_eq!(labels.len() % per, 0);
        assert!(labels.len() <= subs.len());
        // Replication: each window's subwindow labels agree.
        for chunk in labels.chunks(per) {
            assert!(chunk.iter().all(|&d| d == chunk[0]));
        }
    }

    #[test]
    fn verdict_majority_logic() {
        let v = ProgramVerdict::from_decisions(&[true, true, false]);
        assert!(v.is_malware());
        assert!((v.flag_rate() - 2.0 / 3.0).abs() < 1e-12);
        let v2 = ProgramVerdict::from_decisions(&[true, false, false]);
        assert!(!v2.is_malware());
        assert!(!ProgramVerdict::from_decisions(&[]).is_malware());
    }

    #[test]
    fn quorum_verdict_ignores_abstentions() {
        let q = QuorumVerdict::from_votes(&[Some(true), None, Some(true), Some(false), None]);
        assert_eq!(q.flagged, 2);
        assert_eq!(q.voted, 3);
        assert_eq!(q.abstained, 2);
        assert!((q.coverage() - 0.6).abs() < 1e-12);
        assert!((q.flag_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(q.is_malware());
        assert_eq!(q.to_program_verdict().total, 3);
        // All-abstained stream: no vote, full degradation visible.
        let empty = QuorumVerdict::from_votes(&[None, None]);
        assert_eq!(empty.coverage(), 0.0);
        assert!(!empty.is_malware());
    }

    #[test]
    fn checked_classification_abstains_on_corruption() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Lr,
            arch_spec(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        // Clean windows vote identically to the unchecked path.
        let windows = aggregate(traced.subwindows(0), 5_000);
        for w in &windows {
            assert_eq!(hmd.classify_window_checked(w), Some(hmd.classify_window(w)));
        }
        // An empty window abstains.
        assert_eq!(hmd.classify_window_checked(&RawWindow::default()), None);
        // A wildly out-of-range rate abstains.
        let mut corrupt = windows[0].clone();
        corrupt.counters.instructions = 1;
        corrupt.counters.l2_misses = u64::MAX / 2;
        assert_eq!(hmd.classify_window_checked(&corrupt), None);
    }

    #[test]
    fn checked_decisions_match_plain_on_clean_traces() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Lr,
            arch_spec(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let subs = traced.subwindows(2);
        let plain = hmd.decide_windows(subs);
        let checked: Vec<bool> = hmd
            .decide_windows_checked(subs, 1.0)
            .into_iter()
            .map(|v| v.expect("clean trace must not abstain"))
            .collect();
        assert_eq!(plain, checked);
    }

    #[test]
    fn transfer_labels_majority() {
        // Victim stream at 1K granularity; attacker at 2K: pairs.
        let stream = [true, true, false, true, false, false, true];
        let labels = transfer_labels(&stream, 2_000);
        assert_eq!(labels, vec![true, true, false]); // trailing odd element dropped
    }

    #[test]
    fn describe_mentions_spec() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Nn,
            arch_spec(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train[..4],
        );
        assert_eq!(hmd.describe(), "NN[Architectural@5k]");
    }
}
