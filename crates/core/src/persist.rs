//! Model persistence: trained detectors round-trip through JSON so a
//! detector trained once can be attacked, deployed, audited, or hot-reloaded
//! into the resident service later.
//!
//! Lives in `rhmd-core` (rather than the CLI) so every deployment surface —
//! the CLI, the `rhmd serve` daemon, and the bench binaries — shares one
//! format. Writes take an injectable writer so callers can supply a durable
//! (fsynced, fault-retried) atomic writer without this crate depending on
//! I/O policy; the default writer is a same-directory temp-file-and-rename.

use crate::error::RhmdError;
use crate::hmd::Hmd;
use rhmd_features::vector::FeatureSpec;
use rhmd_ml::model::Classifier;
use rhmd_ml::trainer::Algorithm;
use rhmd_ml::{
    DecisionTree, LinearSvm, LogisticRegression, Mlp, QuantizedLinear, QuantizedMlp, RandomForest,
};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A concrete, serializable snapshot of any trained model family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SavedModel {
    /// Logistic regression.
    Lr(LogisticRegression),
    /// Decision tree.
    Dt(DecisionTree),
    /// Linear SVM.
    Svm(LinearSvm),
    /// One-hidden-layer perceptron.
    Nn(Mlp),
    /// Random forest.
    Rf(RandomForest),
    /// Quantized LR or SVM (the family is recorded inside the model).
    QLinear(QuantizedLinear),
    /// Quantized perceptron.
    QNn(QuantizedMlp),
}

impl SavedModel {
    fn from_classifier(algorithm: Algorithm, model: &dyn Classifier) -> Option<SavedModel> {
        let any = model.as_any();
        // Quantized LR/SVM/NN report their base family through
        // `Classifier::algorithm`, so try the quantized concrete types
        // before the exact ones.
        if let Some(q) = any.downcast_ref::<QuantizedLinear>() {
            return Some(SavedModel::QLinear(q.clone()));
        }
        if let Some(q) = any.downcast_ref::<QuantizedMlp>() {
            return Some(SavedModel::QNn(q.clone()));
        }
        Some(match algorithm {
            Algorithm::Lr => SavedModel::Lr(any.downcast_ref::<LogisticRegression>()?.clone()),
            Algorithm::Dt => SavedModel::Dt(any.downcast_ref::<DecisionTree>()?.clone()),
            Algorithm::Svm => SavedModel::Svm(any.downcast_ref::<LinearSvm>()?.clone()),
            Algorithm::Nn => SavedModel::Nn(any.downcast_ref::<Mlp>()?.clone()),
            Algorithm::Rf => SavedModel::Rf(any.downcast_ref::<RandomForest>()?.clone()),
        })
    }

    fn into_classifier(self) -> Box<dyn Classifier> {
        match self {
            SavedModel::Lr(m) => Box::new(m),
            SavedModel::Dt(m) => Box::new(m),
            SavedModel::Svm(m) => Box::new(m),
            SavedModel::Nn(m) => Box::new(m),
            SavedModel::Rf(m) => Box::new(m),
            SavedModel::QLinear(m) => Box::new(m),
            SavedModel::QNn(m) => Box::new(m),
        }
    }

    fn algorithm(&self) -> Algorithm {
        match self {
            SavedModel::Lr(_) => Algorithm::Lr,
            SavedModel::Dt(_) => Algorithm::Dt,
            SavedModel::Svm(_) => Algorithm::Svm,
            SavedModel::Nn(_) => Algorithm::Nn,
            SavedModel::Rf(_) => Algorithm::Rf,
            SavedModel::QLinear(m) => m.base_algorithm(),
            SavedModel::QNn(_) => Algorithm::Nn,
        }
    }
}

/// A persisted HMD: feature definition + trained model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedHmd {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The feature spec the model observes.
    pub spec: FeatureSpec,
    /// The trained model.
    pub model: SavedModel,
}

/// Current persistence format version.
pub const FORMAT_VERSION: u32 = 1;

/// Snapshots an HMD.
///
/// # Errors
///
/// Returns [`RhmdError::Model`] if the model's concrete type does not match
/// its declared algorithm (never the case for `Hmd`s trained by this crate).
pub fn snapshot(hmd: &Hmd) -> Result<SavedHmd, RhmdError> {
    let model = SavedModel::from_classifier(hmd.algorithm(), hmd.model())
        .ok_or_else(|| RhmdError::model(format!("cannot snapshot a {} model", hmd.algorithm())))?;
    Ok(SavedHmd {
        version: FORMAT_VERSION,
        spec: hmd.spec().clone(),
        model,
    })
}

/// Reconstructs an HMD from a snapshot.
pub fn restore(saved: SavedHmd) -> Hmd {
    let algorithm = saved.model.algorithm();
    Hmd::from_parts(saved.spec, algorithm, saved.model.into_classifier())
}

/// Saves an HMD as pretty JSON through a caller-supplied writer (dependency
/// inversion: `rhmd_bench::durable` supplies its fsynced, fault-retried
/// `write_atomic` here without this crate depending on it).
///
/// # Errors
///
/// Returns [`RhmdError::Model`] on snapshot or serialization failure and
/// whatever the writer returns when the bytes cannot land.
pub fn save_hmd_with(
    hmd: &Hmd,
    path: &Path,
    writer: impl FnOnce(&Path, &[u8]) -> Result<(), RhmdError>,
) -> Result<(), RhmdError> {
    let saved = snapshot(hmd)?;
    let json = serde_json::to_string_pretty(&saved)
        .map_err(|e| RhmdError::model(format!("serializing model: {e}")))?;
    writer(path, json.as_bytes())
}

/// Saves an HMD as pretty JSON with the default rename-atomic (not fsynced)
/// writer: the bytes land in a sibling temp file and are renamed over
/// `path`, so a crash mid-save can never leave a truncated model file.
///
/// # Errors
///
/// Returns [`RhmdError::Model`] on snapshot or serialization failure and
/// [`RhmdError::Io`] when the file cannot be written.
pub fn save_hmd(hmd: &Hmd, path: &Path) -> Result<(), RhmdError> {
    save_hmd_with(hmd, path, |path, bytes| {
        let io = |e: std::io::Error| {
            RhmdError::io(path.display().to_string(), format!("cannot write: {e}"))
        };
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, bytes).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    })
}

/// Loads an HMD from JSON.
///
/// # Errors
///
/// Returns [`RhmdError::Io`] when the file cannot be read (e.g. a missing
/// model file), [`RhmdError::Parse`] on malformed JSON, and
/// [`RhmdError::Version`] on a format-version mismatch.
pub fn load_hmd(path: &Path) -> Result<Hmd, RhmdError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| RhmdError::io(path.display().to_string(), format!("cannot read: {e}")))?;
    let saved: SavedHmd = serde_json::from_str(&json)
        .map_err(|e| RhmdError::parse(path.display().to_string(), e.to_string()))?;
    if saved.version != FORMAT_VERSION {
        return Err(RhmdError::Version {
            found: saved.version,
            expected: FORMAT_VERSION,
        });
    }
    Ok(restore(saved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::vector::FeatureKind;
    use rhmd_ml::trainer::TrainerConfig;
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        (traced, splits)
    }

    #[test]
    fn snapshot_restore_preserves_decisions() {
        let (traced, splits) = fixture();
        for algorithm in Algorithm::ALL {
            let hmd = Hmd::train(
                algorithm,
                FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
                &TrainerConfig::default(),
                &traced,
                &splits.victim_train,
            );
            let restored = restore(snapshot(&hmd).unwrap());
            for i in 0..5 {
                let subs = traced.subwindows(i);
                assert_eq!(
                    hmd.decide_windows(subs),
                    restored.decide_windows(subs),
                    "{algorithm} decisions changed across round-trip"
                );
            }
        }
    }

    #[test]
    fn quantized_snapshot_round_trips_decisions() {
        let (traced, splits) = fixture();
        let config = TrainerConfig {
            quant: Some(rhmd_ml::QuantConfig::stochastic(rhmd_ml::QuantBits::Int16, 0xd5)),
            ..TrainerConfig::default()
        };
        for algorithm in [Algorithm::Lr, Algorithm::Svm, Algorithm::Nn] {
            let hmd = Hmd::train(
                algorithm,
                FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]),
                &config,
                &traced,
                &splits.victim_train,
            );
            let restored = restore(snapshot(&hmd).unwrap());
            assert_eq!(restored.algorithm(), algorithm);
            for i in 0..5 {
                let subs = traced.subwindows(i);
                assert_eq!(
                    hmd.decide_windows(subs),
                    restored.decide_windows(subs),
                    "quantized {algorithm} decisions changed across round-trip"
                );
            }
        }
    }

    #[test]
    fn default_writer_round_trips_and_leaves_no_temp_files() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let dir = std::env::temp_dir().join("rhmd-core-persist-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_hmd(&hmd, &path).unwrap();
        save_hmd(&hmd, &path).unwrap(); // overwrite is atomic too
        let loaded = load_hmd(&path).unwrap();
        assert_eq!(loaded.spec(), hmd.spec());
        assert_eq!(loaded.algorithm(), hmd.algorithm());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != "model.json")
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (traced, splits) = fixture();
        let hmd = Hmd::train(
            Algorithm::Dt,
            FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let mut saved = snapshot(&hmd).unwrap();
        saved.version = 99;
        let dir = std::env::temp_dir().join("rhmd-core-persist-test-version");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-version.json");
        std::fs::write(&path, serde_json::to_string(&saved).unwrap()).unwrap();
        let err = load_hmd(&path).unwrap_err();
        assert_eq!(
            err,
            RhmdError::Version {
                found: 99,
                expected: FORMAT_VERSION
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
