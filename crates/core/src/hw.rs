//! Hardware cost model for online RHMD detection (paper §7).
//!
//! The paper implements the detectors in Verilog on the AO486 open-source
//! x86 core and reports, for a three-detector / shared-period configuration,
//! **1.72% area** and **0.78% power** overhead after FPGA synthesis. We
//! cannot re-synthesize, so this module reproduces the *accounting*: which
//! structures exist, which are shared across base detectors, and how the
//! totals scale with pool size and feature dimensionality. Unit costs are
//! calibrated so the paper's configuration lands on the paper's numbers;
//! every other configuration is then a prediction of the model.

use rhmd_features::vector::{FeatureKind, FeatureSpec};
use serde::{Deserialize, Serialize};

/// FPGA resource estimate, in Cyclone-IV-style logic elements and memory
/// bits, plus dynamic power.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Combinational + register logic elements.
    pub logic_elements: f64,
    /// Embedded memory bits (weight storage).
    pub memory_bits: f64,
    /// Dynamic power, milliwatts.
    pub power_mw: f64,
}

impl ResourceEstimate {
    /// Adds two estimates component-wise.
    #[must_use]
    pub fn plus(self, other: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            logic_elements: self.logic_elements + other.logic_elements,
            memory_bits: self.memory_bits + other.memory_bits,
            power_mw: self.power_mw + other.power_mw,
        }
    }
}

/// The AO486 baseline core (per the opencores project synthesis reports:
/// roughly 30K LEs on a Cyclone IV, with the SoC drawing on the order of
/// half a watt).
pub const AO486_BASELINE: ResourceEstimate = ResourceEstimate {
    logic_elements: 30_000.0,
    memory_bits: 1_048_576.0,
    power_mw: 500.0,
};

/// Fixed-point width of detector weights and feature accumulators.
pub const WEIGHT_BITS: f64 = 16.0;

/// Unit costs of the detector datapath, calibrated against the paper's
/// three-detector configuration (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitCosts {
    /// LEs per feature-collection channel (counter + update logic). One
    /// channel per feature dimension being collected.
    pub les_per_channel: f64,
    /// LEs for the shared MAC datapath + decision FSM.
    pub les_mac_datapath: f64,
    /// LEs of per-detector control (period counter, weight-bank select).
    pub les_per_detector: f64,
    /// Dynamic power per LE, milliwatts (toggling commit-stage logic).
    pub mw_per_le: f64,
    /// Dynamic power per memory kilobit.
    pub mw_per_kbit: f64,
}

impl Default for UnitCosts {
    fn default() -> UnitCosts {
        UnitCosts {
            les_per_channel: 7.6,
            les_mac_datapath: 130.0,
            les_per_detector: 12.0,
            mw_per_le: 0.0062,
            mw_per_kbit: 0.12,
        }
    }
}

/// Collection channels required by one feature kind.
fn channels(kind: FeatureKind, opcode_count: usize) -> usize {
    match kind {
        FeatureKind::Instructions => opcode_count,
        FeatureKind::Memory => rhmd_features::window::MEM_BINS,
        FeatureKind::Architectural => rhmd_uarch::events::COUNTER_DIMS,
    }
}

/// Estimates the hardware added by a pool of base detectors.
///
/// Sharing mirrors the paper: feature-collection channels are shared by
/// every detector observing that feature kind (detectors differing only in
/// period share everything but their weight bank — "the different weight
/// for the two detectors must be kept separately, but the collection logic
/// and the detector evaluation logic is shared", §7), and one MAC datapath
/// serves the whole pool.
pub fn pool_cost(specs: &[FeatureSpec], costs: &UnitCosts) -> ResourceEstimate {
    if specs.is_empty() {
        return ResourceEstimate::default();
    }
    // Shared collection channels: union over feature kinds present.
    let mut kinds: Vec<(FeatureKind, usize)> = Vec::new();
    for spec in specs {
        for &kind in &spec.kinds {
            let ch = channels(kind, spec.opcodes.len());
            if let Some(entry) = kinds.iter_mut().find(|(k, _)| *k == kind) {
                entry.1 = entry.1.max(ch);
            } else {
                kinds.push((kind, ch));
            }
        }
    }
    let collection_les: f64 = kinds
        .iter()
        .map(|&(_, ch)| ch as f64 * costs.les_per_channel)
        .sum();

    // Per-detector weight banks: dims + bias at WEIGHT_BITS each.
    let memory_bits: f64 = specs
        .iter()
        .map(|s| (s.dims() as f64 + 1.0) * WEIGHT_BITS)
        .sum();

    let logic_elements = collection_les
        + costs.les_mac_datapath
        + specs.len() as f64 * costs.les_per_detector;
    let power_mw =
        logic_elements * costs.mw_per_le + memory_bits / 1024.0 * costs.mw_per_kbit;
    ResourceEstimate {
        logic_elements,
        memory_bits,
        power_mw,
    }
}

/// Area / power overhead of a detector pool relative to the AO486 baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwOverhead {
    /// Added logic as a percentage of baseline logic.
    pub area_pct: f64,
    /// Added power as a percentage of baseline power.
    pub power_pct: f64,
}

/// Computes the overhead of `specs` against [`AO486_BASELINE`].
pub fn overhead(specs: &[FeatureSpec], costs: &UnitCosts) -> HwOverhead {
    let cost = pool_cost(specs, costs);
    HwOverhead {
        area_pct: 100.0 * cost.logic_elements / AO486_BASELINE.logic_elements,
        power_pct: 100.0 * cost.power_mw / AO486_BASELINE.power_mw,
    }
}

/// The paper's synthesized configuration: three detectors, one per feature,
/// same period (§7).
pub fn paper_configuration(opcode_count: usize, period: u32) -> Vec<FeatureSpec> {
    FeatureKind::ALL
        .iter()
        .map(|&kind| {
            FeatureSpec::new(
                kind,
                period,
                (0..opcode_count)
                    .map(rhmd_trace::isa::Opcode::from_index)
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_reported_overheads() {
        let specs = paper_configuration(16, 10_000);
        let o = overhead(&specs, &UnitCosts::default());
        assert!(
            (o.area_pct - 1.72).abs() < 0.15,
            "area {:.3}% (paper: 1.72%)",
            o.area_pct
        );
        assert!(
            (o.power_pct - 0.78).abs() < 0.15,
            "power {:.3}% (paper: 0.78%)",
            o.power_pct
        );
    }

    #[test]
    fn period_diversity_is_nearly_free() {
        // Six detectors (3 features × 2 periods) share collection channels
        // with the three-detector pool; only weight banks grow.
        let three = paper_configuration(16, 10_000);
        let mut six = paper_configuration(16, 10_000);
        six.extend(paper_configuration(16, 5_000));
        let c3 = pool_cost(&three, &UnitCosts::default());
        let c6 = pool_cost(&six, &UnitCosts::default());
        assert!((c6.memory_bits - 2.0 * c3.memory_bits).abs() < 1e-9);
        let logic_growth = (c6.logic_elements - c3.logic_elements) / c3.logic_elements;
        assert!(logic_growth < 0.10, "logic growth {logic_growth}");
    }

    #[test]
    fn cost_scales_with_dimensions() {
        let small = paper_configuration(8, 10_000);
        let large = paper_configuration(32, 10_000);
        let cs = pool_cost(&small, &UnitCosts::default());
        let cl = pool_cost(&large, &UnitCosts::default());
        assert!(cl.logic_elements > cs.logic_elements);
        assert!(cl.memory_bits > cs.memory_bits);
    }

    #[test]
    fn empty_pool_costs_nothing() {
        let c = pool_cost(&[], &UnitCosts::default());
        assert_eq!(c, ResourceEstimate::default());
    }

    #[test]
    fn estimates_add() {
        let a = ResourceEstimate {
            logic_elements: 1.0,
            memory_bits: 2.0,
            power_mw: 3.0,
        };
        let b = a.plus(a);
        assert_eq!(b.logic_elements, 2.0);
        assert_eq!(b.power_mw, 6.0);
    }
}
