//! Empirical instantiation of the paper's PAC-learnability analysis (§8).
//!
//! Theorem 1 bounds the best achievable error of any attacker learning the
//! randomized detector's decision distribution `Q_p`:
//!
//! ```text
//! min_i Σ_{j≠i} p_j · Δ_{i,j}   ≤   e_{p,H}   ≤   2 · max_i e(h_i)
//! ```
//!
//! where `Δ_{i,j}` is the disagreement probability of base detectors `i` and
//! `j`, `p` the selection distribution, and `e(h_i)` the base detectors'
//! errors. This module measures all three quantities on the synthetic
//! corpus so experiments can check that reverse-engineering error lands
//! inside the predicted band.

use crate::hmd::{BlackBox, Hmd};
use rhmd_data::TracedCorpus;
use serde::{Deserialize, Serialize};

/// Per-subwindow decision streams of each base detector over a program set.
fn decision_streams(
    detectors: &[Hmd],
    traced: &TracedCorpus,
    indices: &[usize],
) -> Vec<Vec<bool>> {
    detectors
        .iter()
        .map(|d| {
            let mut det = d.clone();
            let mut stream = Vec::new();
            for &i in indices {
                stream.extend(det.label_subwindows(traced.subwindows(i)));
            }
            stream
        })
        .collect()
}

/// Pairwise disagreement matrix `Δ_{i,j}` of the base detectors, measured at
/// subwindow granularity over the given programs.
///
/// Streams are truncated to the shortest detector's coverage so every
/// comparison is apples-to-apples.
pub fn disagreement_matrix(
    detectors: &[Hmd],
    traced: &TracedCorpus,
    indices: &[usize],
) -> Vec<Vec<f64>> {
    let streams = decision_streams(detectors, traced, indices);
    let len = streams.iter().map(Vec::len).min().unwrap_or(0);
    let n = detectors.len();
    let mut delta = vec![vec![0.0; n]; n];
    if len == 0 {
        return delta;
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let disagreements = streams[i][..len]
                .iter()
                .zip(&streams[j][..len])
                .filter(|(a, b)| a != b)
                .count();
            let d = disagreements as f64 / len as f64;
            delta[i][j] = d;
            delta[j][i] = d;
        }
    }
    delta
}

/// Ground-truth error `e(h_i)` of each base detector at subwindow
/// granularity over the given programs.
pub fn base_errors(detectors: &[Hmd], traced: &TracedCorpus, indices: &[usize]) -> Vec<f64> {
    let labels = traced.corpus().labels();
    detectors
        .iter()
        .map(|d| {
            let mut det = d.clone();
            let mut wrong = 0usize;
            let mut total = 0usize;
            for &i in indices {
                let stream = det.label_subwindows(traced.subwindows(i));
                wrong += stream.iter().filter(|&&dec| dec != labels[i]).count();
                total += stream.len();
            }
            if total == 0 {
                0.0
            } else {
                wrong as f64 / total as f64
            }
        })
        .collect()
}

/// The Theorem 1 band for the attacker's achievable error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Theorem1Band {
    /// `min_i Σ_{j≠i} p_j · Δ_{i,j}` — no surrogate can do better than this.
    pub lower: f64,
    /// `2 · max_i e(h_i)` — a surrogate at least this good always exists.
    pub upper: f64,
}

/// Computes the Theorem 1 band from a disagreement matrix, selection
/// probabilities, and base-detector errors.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or `probabilities` is not a
/// distribution.
pub fn theorem1_band(
    delta: &[Vec<f64>],
    probabilities: &[f64],
    errors: &[f64],
) -> Theorem1Band {
    let n = delta.len();
    assert!(n > 0, "need at least one detector");
    assert_eq!(probabilities.len(), n, "one probability per detector");
    assert_eq!(errors.len(), n, "one error per detector");
    assert!(
        (probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9,
        "probabilities must sum to 1"
    );
    let lower = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| probabilities[j] * delta[i][j])
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min);
    let upper = 2.0 * errors.iter().copied().fold(0.0, f64::max);
    Theorem1Band { lower, upper }
}

/// The RHMD's baseline (no-attack) error: `Σ_i p_i · e(h_i)` — the paper's
/// observation that randomization costs the average of the base detectors'
/// accuracies (§7).
pub fn pool_baseline_error(probabilities: &[f64], errors: &[f64]) -> f64 {
    probabilities
        .iter()
        .zip(errors)
        .map(|(p, e)| p * e)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, Vec<Hmd>) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let detectors: Vec<Hmd> = [FeatureKind::Memory, FeatureKind::Architectural]
            .into_iter()
            .map(|kind| {
                Hmd::train(
                    Algorithm::Lr,
                    FeatureSpec::new(kind, 5_000, vec![]),
                    &TrainerConfig::default(),
                    &traced,
                    &splits.victim_train,
                )
            })
            .collect();
        (traced, splits, detectors)
    }

    #[test]
    fn disagreement_is_symmetric_with_zero_diagonal() {
        let (traced, splits, detectors) = fixture();
        let delta = disagreement_matrix(&detectors, &traced, &splits.attacker_test);
        for (i, row) in delta.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, delta[j][i]);
                assert!((0.0..=1.0).contains(cell));
            }
        }
    }

    #[test]
    fn diverse_detectors_disagree() {
        let (traced, splits, detectors) = fixture();
        let delta = disagreement_matrix(&detectors, &traced, &splits.attacker_test);
        assert!(delta[0][1] > 0.01, "diverse detectors should disagree: {delta:?}");
    }

    #[test]
    fn identical_detectors_never_disagree() {
        let (traced, splits, detectors) = fixture();
        let twins = vec![detectors[0].clone(), detectors[0].clone()];
        let delta = disagreement_matrix(&twins, &traced, &splits.attacker_test);
        assert_eq!(delta[0][1], 0.0);
    }

    #[test]
    fn band_orders_correctly() {
        let (traced, splits, detectors) = fixture();
        let delta = disagreement_matrix(&detectors, &traced, &splits.attacker_test);
        let errors = base_errors(&detectors, &traced, &splits.attacker_test);
        let p = vec![0.5, 0.5];
        let band = theorem1_band(&delta, &p, &errors);
        assert!(band.lower >= 0.0);
        assert!(band.upper >= band.lower, "band {band:?}");
        let baseline = pool_baseline_error(&p, &errors);
        assert!((0.0..=1.0).contains(&baseline));
    }

    #[test]
    fn paper_worked_example() {
        // Paper §8.2: randomizing two classifiers of error 0.2 and 0.1 with
        // p = (0.5, 0.5) puts e_{p,H} in [0.15, 0.4]. Disagreement of the
        // two is at least |0.2-0.1| = 0.1 and at most 0.3; take 0.3 for the
        // worked bound.
        let delta = vec![vec![0.0, 0.3], vec![0.3, 0.0]];
        let errors = vec![0.2, 0.1];
        let band = theorem1_band(&delta, &[0.5, 0.5], &errors);
        assert!((band.lower - 0.15).abs() < 1e-12);
        assert!((band.upper - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn band_rejects_bad_distribution() {
        let delta = vec![vec![0.0]];
        let _ = theorem1_band(&delta, &[0.5], &[0.1]);
    }
}
