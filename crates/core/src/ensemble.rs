//! Deterministic ensemble HMDs — the related-work baseline the paper
//! contrasts RHMD against (§9.1, citing Khasawneh et al., RAID 2015).
//!
//! "Superficially, ensemble learning is similar to RHMD since it combines
//! the output of multiple diverse detectors through a combiner function such
//! as majority voting [...] However, since ensemble classifiers are
//! deterministic, they can be reverse engineered and evaded." This module
//! implements that baseline so the claim can be tested head-to-head.

use crate::hmd::{BlackBox, Hmd, QuorumVerdict};
use rhmd_features::window::{aggregate, aggregate_with_gaps, RawWindow, SUBWINDOW};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the base detectors' window decisions are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Combiner {
    /// Flag when at least half the base detectors flag.
    Majority,
    /// Flag when any base detector flags (high sensitivity, low
    /// specificity).
    Or,
    /// Flag only when every base detector flags.
    And,
}

impl Combiner {
    fn combine(self, votes: usize, total: usize) -> bool {
        match self {
            Combiner::Majority => 2 * votes >= total,
            Combiner::Or => votes > 0,
            Combiner::And => votes == total,
        }
    }
}

impl fmt::Display for Combiner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Combiner::Majority => f.write_str("majority"),
            Combiner::Or => f.write_str("or"),
            Combiner::And => f.write_str("and"),
        }
    }
}

/// A deterministic ensemble: every base detector evaluates every epoch, and
/// a fixed combiner merges their votes. Unlike [`crate::rhmd::ResilientHmd`]
/// there is no randomness — identical traces always produce identical
/// decisions, which is exactly what makes it reverse-engineerable.
///
/// All base detectors share one collection period (the epoch length).
pub struct EnsembleHmd {
    detectors: Vec<Hmd>,
    combiner: Combiner,
    period: u32,
}

impl EnsembleHmd {
    /// Creates an ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `detectors` is empty or their collection periods differ
    /// (deterministic ensembles vote per shared epoch).
    pub fn new(detectors: Vec<Hmd>, combiner: Combiner) -> EnsembleHmd {
        assert!(!detectors.is_empty(), "ensemble needs at least one detector");
        let period = detectors[0].spec().period;
        assert!(
            detectors.iter().all(|d| d.spec().period == period),
            "ensemble base detectors must share a collection period"
        );
        EnsembleHmd {
            detectors,
            combiner,
            period,
        }
    }

    /// The base detectors.
    pub fn detectors(&self) -> &[Hmd] {
        &self.detectors
    }

    /// The combiner function.
    pub fn combiner(&self) -> Combiner {
        self.combiner
    }

    /// Per-epoch combined decisions. Windows are aggregated once and each
    /// base detector scores the whole epoch stream through its batch path.
    pub fn decide_windows(&self, subwindows: &[RawWindow]) -> Vec<bool> {
        let windows = aggregate(subwindows, self.period);
        let per_detector: Vec<Vec<bool>> = self
            .detectors
            .iter()
            .map(|d| d.classify_windows(&windows))
            .collect();
        (0..windows.len())
            .map(|i| {
                let votes = per_detector.iter().filter(|flags| flags[i]).count();
                self.combiner.combine(votes, self.detectors.len())
            })
            .collect()
    }

    /// Fault-tolerant variant of [`EnsembleHmd::decide_windows`]: windows
    /// are recovered gap-tolerantly (keeping those at least `min_fill`
    /// full), each base detector abstains on windows whose features fail
    /// the sanity check, and an epoch abstains only when *every* base
    /// detector does — so one corrupted counter channel degrades the vote
    /// instead of poisoning it.
    pub fn quorum_verdict(&self, subwindows: &[RawWindow], min_fill: f64) -> QuorumVerdict {
        let windows = aggregate_with_gaps(subwindows, self.period, min_fill);
        let per_detector: Vec<Vec<Option<bool>>> = self
            .detectors
            .iter()
            .map(|d| d.classify_windows_checked(&windows))
            .collect();
        let votes: Vec<Option<bool>> = (0..windows.len())
            .map(|i| {
                let cast: Vec<bool> = per_detector.iter().filter_map(|v| v[i]).collect();
                if cast.is_empty() {
                    None
                } else {
                    let flags = cast.iter().filter(|&&v| v).count();
                    Some(self.combiner.combine(flags, cast.len()))
                }
            })
            .collect();
        QuorumVerdict::from_votes(&votes)
    }
}

impl BlackBox for EnsembleHmd {
    fn label_subwindows(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        let per = (self.period / SUBWINDOW) as usize;
        let mut out = Vec::with_capacity(subwindows.len());
        for decision in EnsembleHmd::decide_windows(self, subwindows) {
            out.extend(std::iter::repeat_n(decision, per));
        }
        out
    }

    fn decisions(&mut self, subwindows: &[RawWindow]) -> Vec<bool> {
        EnsembleHmd::decide_windows(self, subwindows)
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.detectors.iter().map(|d| d.describe()).collect();
        format!("Ensemble<{}>{{{}}}", self.combiner, parts.join(", "))
    }
}

impl crate::detector::Detector for EnsembleHmd {
    fn name(&self) -> String {
        self.describe()
    }

    /// Deterministic: the RNG is ignored.
    fn label_stream(
        &self,
        subwindows: &[RawWindow],
        _rng: &mut crate::detector::StreamRng,
    ) -> Vec<bool> {
        let per = (self.period / SUBWINDOW) as usize;
        let mut out = Vec::with_capacity(subwindows.len());
        for decision in self.decide_windows(subwindows) {
            out.extend(std::iter::repeat_n(decision, per));
        }
        out
    }

    fn epoch_decisions(
        &self,
        subwindows: &[RawWindow],
        _rng: &mut crate::detector::StreamRng,
    ) -> Vec<bool> {
        self.decide_windows(subwindows)
    }

    fn quorum(
        &self,
        subwindows: &[RawWindow],
        min_fill: f64,
        _rng: &mut crate::detector::StreamRng,
    ) -> QuorumVerdict {
        self.quorum_verdict(subwindows, min_fill)
    }
}

impl fmt::Debug for EnsembleHmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnsembleHmd")
            .field("detectors", &self.describe())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
    use rhmd_features::vector::{FeatureKind, FeatureSpec};
    use rhmd_ml::trainer::{Algorithm, TrainerConfig};
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, Vec<Hmd>) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let detectors: Vec<Hmd> = [FeatureKind::Memory, FeatureKind::Architectural]
            .into_iter()
            .map(|kind| {
                Hmd::train(
                    Algorithm::Lr,
                    FeatureSpec::new(kind, 5_000, vec![]),
                    &TrainerConfig::default(),
                    &traced,
                    &splits.victim_train,
                )
            })
            .collect();
        (traced, splits, detectors)
    }

    #[test]
    fn ensemble_is_deterministic() {
        let (traced, _, detectors) = fixture();
        let mut a = EnsembleHmd::new(detectors.clone(), Combiner::Majority);
        let mut b = EnsembleHmd::new(detectors, Combiner::Majority);
        let subs = traced.subwindows(0);
        assert_eq!(a.label_subwindows(subs), b.label_subwindows(subs));
        assert_eq!(a.decisions(subs), a.decisions(subs));
    }

    #[test]
    fn or_flags_at_least_as_much_as_and() {
        let (traced, _, detectors) = fixture();
        let mut or = EnsembleHmd::new(detectors.clone(), Combiner::Or);
        let mut and = EnsembleHmd::new(detectors, Combiner::And);
        for i in 0..traced.corpus().len() {
            let subs = traced.subwindows(i);
            let or_flags = or.decisions(subs).iter().filter(|&&d| d).count();
            let and_flags = and.decisions(subs).iter().filter(|&&d| d).count();
            assert!(or_flags >= and_flags);
        }
    }

    #[test]
    fn combiner_logic() {
        assert!(Combiner::Majority.combine(1, 2));
        assert!(!Combiner::Majority.combine(0, 2));
        assert!(Combiner::Or.combine(1, 3));
        assert!(!Combiner::And.combine(2, 3));
        assert!(Combiner::And.combine(3, 3));
    }

    #[test]
    #[should_panic(expected = "share a collection period")]
    fn mixed_periods_rejected() {
        let (traced, splits, mut detectors) = fixture();
        detectors.push(Hmd::train(
            Algorithm::Lr,
            FeatureSpec::new(FeatureKind::Memory, 10_000, vec![]),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        ));
        let _ = EnsembleHmd::new(detectors, Combiner::Majority);
    }

    #[test]
    fn describe_names_combiner() {
        let (_, _, detectors) = fixture();
        let e = EnsembleHmd::new(detectors, Combiner::Or);
        assert!(e.describe().starts_with("Ensemble<or>"));
    }
}
