//! Reverse-engineering HMDs by black-box querying (paper §4).
//!
//! The attacker (1) queries the victim detector with its own programs,
//! (2) labels its feature vectors with the victim's decisions, (3) trains a
//! surrogate, and (4) measures success as the fraction of decisions on held-
//! out programs where surrogate and victim agree (Fig 1).

use crate::hmd::{BlackBox, Hmd};
use rhmd_data::TracedCorpus;
use rhmd_features::vector::FeatureSpec;
use rhmd_ml::model::Dataset;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use serde::{Deserialize, Serialize};

/// Result of one reverse-engineering attempt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RevengReport {
    /// Surrogate family used.
    pub algorithm: Algorithm,
    /// Attacker's feature hypothesis.
    pub spec_label: String,
    /// Training rows the attacker collected.
    pub train_rows: usize,
    /// Fraction of test decisions where surrogate matches victim.
    pub agreement: f64,
}

/// Builds the attacker's labelled dataset for one feature hypothesis by
/// querying `victim` over `indices` of `traced` (paper Fig 1a).
///
/// The attacker observes the victim's decision *sequence* and pairs its own
/// k-th window with the victim's k-th decision — it has no way to align
/// decisions to instruction counts, so a wrong period hypothesis produces
/// increasingly misaligned (noisy) labels. This is exactly the mechanism
/// behind the paper's Fig 3a period-recovery experiment.
pub fn query_dataset(
    victim: &mut dyn BlackBox,
    traced: &TracedCorpus,
    indices: &[usize],
    spec: &FeatureSpec,
) -> Dataset {
    let mut data = Dataset::new(spec.dims());
    for &i in indices {
        let subs = traced.subwindows(i);
        let labels = victim.decisions(subs);
        let vectors = traced.program_vectors(i, spec);
        for (v, l) in vectors.into_iter().zip(labels) {
            data.push(v, l);
        }
    }
    data
}

/// Trains a surrogate of `victim` with the given hypothesis (feature spec +
/// algorithm) on the attacker-training programs.
pub fn reverse_engineer(
    victim: &mut dyn BlackBox,
    traced: &TracedCorpus,
    attacker_train: &[usize],
    spec: FeatureSpec,
    algorithm: Algorithm,
    trainer: &TrainerConfig,
) -> Hmd {
    let data = query_dataset(victim, traced, attacker_train, &spec);
    Hmd::train_on_dataset(algorithm, spec, trainer, &data)
}

/// Fraction of per-window decisions on the attacker-test programs where
/// `surrogate` matches `victim` (paper Fig 1b). Decision sequences are
/// paired index-by-index, mirroring how the attacker observes them.
pub fn agreement(
    victim: &mut dyn BlackBox,
    surrogate: &Hmd,
    traced: &TracedCorpus,
    attacker_test: &[usize],
) -> f64 {
    let mut same = 0usize;
    let mut total = 0usize;
    for &i in attacker_test {
        let subs = traced.subwindows(i);
        let victim_decisions = victim.decisions(subs);
        let surrogate_decisions = surrogate.decide_windows(subs);
        for (v, s) in victim_decisions.iter().zip(&surrogate_decisions) {
            if v == s {
                same += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

/// Trains several surrogates with different seeds and keeps the one that
/// best matches the victim on the attacker's *own* training programs — the
/// natural validation step a real attacker performs before investing in
/// binary rewriting.
///
/// # Panics
///
/// Panics if `tries` is zero.
pub fn reverse_engineer_validated(
    victim: &mut dyn BlackBox,
    traced: &TracedCorpus,
    attacker_train: &[usize],
    spec: FeatureSpec,
    algorithm: Algorithm,
    base_trainer: &TrainerConfig,
    tries: u32,
) -> Hmd {
    assert!(tries > 0, "need at least one training attempt");
    let data = query_dataset(victim, traced, attacker_train, &spec);
    let mut best: Option<(f64, Hmd)> = None;
    for t in 0..tries {
        let mut trainer = *base_trainer;
        trainer.lr.seed ^= u64::from(t) << 32;
        trainer.svm.seed ^= u64::from(t) << 32;
        trainer.mlp.seed ^= u64::from(t) << 32;
        trainer.forest.seed ^= u64::from(t) << 32;
        let candidate = Hmd::train_on_dataset(algorithm, spec.clone(), &trainer, &data);
        // Validate against the victim's labels on the training queries.
        let fit = {
            let predictions = rhmd_ml::model::predict_all(candidate.model(), &data);
            rhmd_ml::metrics::agreement(&predictions, data.labels())
        };
        if best.as_ref().is_none_or(|(score, _)| fit > *score) {
            best = Some((fit, candidate));
        }
    }
    best.expect("tries > 0").1
}

/// Runs the full attack for one hypothesis and reports agreement.
pub fn attack(
    victim: &mut dyn BlackBox,
    traced: &TracedCorpus,
    attacker_train: &[usize],
    attacker_test: &[usize],
    spec: FeatureSpec,
    algorithm: Algorithm,
    trainer: &TrainerConfig,
) -> (Hmd, RevengReport) {
    let data = query_dataset(victim, traced, attacker_train, &spec);
    let train_rows = data.len();
    let surrogate = Hmd::train_on_dataset(algorithm, spec, trainer, &data);
    let agreement = agreement(victim, &surrogate, traced, attacker_test);
    let report = RevengReport {
        algorithm,
        spec_label: surrogate.spec().label(),
        train_rows,
        agreement,
    };
    (surrogate, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_features::vector::FeatureKind;
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        (traced, splits)
    }

    #[test]
    fn matching_hypothesis_reverse_engineers_well() {
        let (traced, splits) = fixture();
        let spec = FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]);
        let mut victim = Hmd::train(
            Algorithm::Lr,
            spec.clone(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let (_, report) = attack(
            &mut victim,
            &traced,
            &splits.attacker_train,
            &splits.attacker_test,
            spec,
            Algorithm::Lr,
            &TrainerConfig::with_seed(99),
        );
        assert!(report.agreement > 0.8, "agreement {}", report.agreement);
    }

    #[test]
    fn wrong_feature_hypothesis_agrees_less() {
        let (traced, splits) = fixture();
        let victim_spec = FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]);
        let mut victim = Hmd::train(
            Algorithm::Lr,
            victim_spec.clone(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let (_, matched) = attack(
            &mut victim,
            &traced,
            &splits.attacker_train,
            &splits.attacker_test,
            victim_spec,
            Algorithm::Lr,
            &TrainerConfig::with_seed(99),
        );
        let wrong_spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let (_, mismatched) = attack(
            &mut victim,
            &traced,
            &splits.attacker_train,
            &splits.attacker_test,
            wrong_spec,
            Algorithm::Lr,
            &TrainerConfig::with_seed(99),
        );
        assert!(
            matched.agreement > mismatched.agreement,
            "matched {} vs mismatched {}",
            matched.agreement,
            mismatched.agreement
        );
    }

    #[test]
    fn query_dataset_row_count_matches_windows() {
        let (traced, splits) = fixture();
        let spec = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let mut victim = Hmd::train(
            Algorithm::Lr,
            spec.clone(),
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let one = &splits.attacker_train[..1];
        let data = query_dataset(&mut victim, &traced, one, &spec);
        let expected = traced.program_vectors(one[0], &spec).len();
        assert_eq!(data.len(), expected);
    }
}
