//! RHMD core: the primary contribution of *"RHMD: Evasion-Resilient
//! Hardware Malware Detectors"* (Khasawneh, Abu-Ghazaleh, Ponomarev, Yu —
//! MICRO 2017), plus the attacker tooling the paper evaluates it against.
//!
//! The crate follows the paper's narrative:
//!
//! 1. [`hmd`] — baseline hardware malware detectors (feature spec ×
//!    classifier) and the label-only [`hmd::BlackBox`] query interface the
//!    attacker sees; [`detector`] — the unified [`detector::Detector`]
//!    trait every detector family implements, with explicitly seeded
//!    switching streams;
//! 2. [`reveng`] — black-box reverse-engineering: query, relabel, train a
//!    surrogate, measure agreement (§4, Figs 3–4);
//! 3. [`evasion`] — reverse-engineering-driven instruction injection:
//!    random / least-weight / weighted strategies at block or function
//!    level, with static/dynamic overhead accounting (§5, Figs 6–10);
//! 4. [`retrain`] — retraining on evasive samples and the multi-generation
//!    evade–retrain game (§6, Figs 11, 13);
//! 5. [`rhmd`] — the resilient detector: stochastic switching across a
//!    diverse pool of base detectors (§7, Figs 14–16), plus the
//!    non-stationary variant sketched as future work in §8.3;
//!    [`ensemble`] — the deterministic ensemble baseline of §9.1;
//! 6. [`pac`] — the Theorem 1 error band that explains *why* randomization
//!    resists reverse-engineering (§8);
//! 7. [`hw`] — the FPGA cost accounting behind the paper's 1.72% area /
//!    0.78% power overhead claim (§7).
//!
//! # Examples
//!
//! Train a baseline detector, reverse-engineer it, and evade it:
//!
//! ```no_run
//! use rhmd_core::evasion::{evade_corpus, plan_evasion, EvasionConfig};
//! use rhmd_core::hmd::Hmd;
//! use rhmd_core::reveng;
//! use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
//! use rhmd_features::{FeatureKind, FeatureSpec};
//! use rhmd_ml::{Algorithm, TrainerConfig};
//! use rhmd_uarch::CoreConfig;
//!
//! let config = CorpusConfig::small();
//! let corpus = Corpus::build(&config);
//! let splits = Splits::new(&corpus, config.seed);
//! let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
//!
//! let spec = FeatureSpec::new(FeatureKind::Architectural, 10_000, vec![]);
//! let mut victim = Hmd::train(Algorithm::Lr, spec.clone(), &TrainerConfig::default(),
//!                             &traced, &splits.victim_train);
//!
//! let surrogate = reveng::reverse_engineer(&mut victim, &traced, &splits.attacker_train,
//!                                          spec, Algorithm::Lr, &TrainerConfig::with_seed(1));
//! let plan = plan_evasion(&surrogate, &EvasionConfig::least_weight(2));
//! let malware = traced.corpus().malware_indices();
//! let trial = evade_corpus(&mut victim, &traced, &malware, &plan);
//! println!("detection after evasion: {:.0}%", 100.0 * trial.detection_rate());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detector;
pub mod ensemble;
pub mod evasion;
pub mod hmd;
pub mod hw;
pub mod optimizer;
pub mod pac;
pub mod persist;
pub mod retrain;
pub mod reveng;
pub mod rhmd;
pub mod verdict;

// The error module moved to `rhmd-runtime` (the corpus store needs it below
// this crate in the graph); both spellings keep working.
pub use rhmd_runtime::error;
pub use rhmd_runtime::RhmdError;

pub use detector::{Detector, StreamRng};
pub use evasion::{evade_corpus, plan_evasion, EvasionConfig, EvasionTrial, Strategy};
pub use hmd::{transfer_labels, BlackBox, Hmd, ProgramVerdict, QuorumVerdict, ABSTAIN_BOUND};
pub use hw::{overhead as hw_overhead, HwOverhead, UnitCosts};
pub use optimizer::{minimal_evasion, MinimalEvasion};
pub use pac::{base_errors, disagreement_matrix, theorem1_band, Theorem1Band};
pub use persist::{load_hmd, restore, save_hmd, snapshot, SavedHmd, SavedModel};
pub use retrain::{evade_retrain_game, retrain_sweep, GameConfig, GenerationRecord, RetrainPoint};
pub use reveng::{reverse_engineer, RevengReport};
pub use ensemble::{Combiner, EnsembleHmd};
pub use rhmd::{build_pool, pool_specs, NonStationaryRhmd, ResilientHmd};
pub use verdict::{DegradedVerdict, VerdictPolicy};
