//! Retraining victim detectors on evasive malware (paper §6).
//!
//! Two experiments:
//!
//! * **Fraction sweep** (Fig 11) — retrain with `f`% of the malware training
//!   windows replaced by evasive ones; measure sensitivity on evasive and
//!   unmodified malware and specificity on benign programs.
//! * **Evade–retrain generations** (Fig 13) — alternate attacker evasion and
//!   defender retraining, tracking how each generation's detector handles
//!   current and previous evasive malware.

use crate::error::RhmdError;
use crate::evasion::{plan_evasion, EvasionConfig};
use crate::hmd::{BlackBox, Hmd, ProgramVerdict};
use crate::reveng;
use rhmd_data::{parallel_map, TracedCorpus};
use rhmd_features::vector::FeatureSpec;
use rhmd_features::window::RawWindow;
use rhmd_ml::model::Dataset;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::inject::{apply, InjectionPlan};
use rhmd_trace::Program;
use serde::{Deserialize, Serialize};

/// Traces the evasive variant of every program in `indices`, returning the
/// per-program subwindows.
pub fn trace_evasive_variants(
    traced: &TracedCorpus,
    indices: &[usize],
    plan: &InjectionPlan,
) -> Vec<Vec<RawWindow>> {
    let programs: Vec<&Program> = indices.iter().map(|&i| traced.corpus().program(i)).collect();
    parallel_map(&programs, |p| {
        let (modified, overhead) = apply(p, plan);
        traced.trace_program(&modified, 1.05 + overhead.ratio())
    })
}

/// Builds a retraining dataset where `fraction` of the malware windows are
/// evasive (paper Fig 11's x-axis) and benign windows are unchanged.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn mixed_training_set(
    traced: &TracedCorpus,
    victim_train: &[usize],
    spec: &FeatureSpec,
    evasive_subwindows: &[Vec<RawWindow>],
    fraction: f64,
) -> Dataset {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let labels = traced.corpus().labels();
    let mut data = Dataset::new(spec.dims());
    // Benign windows: unchanged.
    for &i in victim_train.iter().filter(|&&i| !labels[i]) {
        for v in traced.program_vectors(i, spec) {
            data.push(v, false);
        }
    }
    // Malware windows: keep (1 - fraction) original...
    let malware: Vec<usize> = victim_train.iter().copied().filter(|&i| labels[i]).collect();
    let keep = ((malware.len() as f64) * (1.0 - fraction)).round() as usize;
    for &i in &malware[..keep.min(malware.len())] {
        for v in traced.program_vectors(i, spec) {
            data.push(v, true);
        }
    }
    // ...and draw the remainder from evasive variants.
    let need = malware.len() - keep.min(malware.len());
    for subs in evasive_subwindows.iter().cycle().take(need) {
        for w in rhmd_features::window::aggregate(subs, spec.period) {
            data.push(spec.project(&w), true);
        }
    }
    data
}

/// Program-level detection quality of a detector over a set of programs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionQuality {
    /// Fraction of unmodified malware programs detected.
    pub sensitivity_unmodified: f64,
    /// Fraction of benign programs passed.
    pub specificity: f64,
}

/// Measures program-level sensitivity/specificity over `indices`.
pub fn detection_quality(
    detector: &mut dyn BlackBox,
    traced: &TracedCorpus,
    indices: &[usize],
) -> DetectionQuality {
    let labels = traced.corpus().labels();
    let (mut tp, mut mal, mut tn, mut ben) = (0usize, 0usize, 0usize, 0usize);
    for &i in indices {
        let stream = detector.label_subwindows(traced.subwindows(i));
        let verdict = ProgramVerdict::from_decisions(&stream).is_malware();
        if labels[i] {
            mal += 1;
            if verdict {
                tp += 1;
            }
        } else {
            ben += 1;
            if !verdict {
                tn += 1;
            }
        }
    }
    DetectionQuality {
        sensitivity_unmodified: if mal == 0 { 0.0 } else { tp as f64 / mal as f64 },
        specificity: if ben == 0 { 0.0 } else { tn as f64 / ben as f64 },
    }
}

/// Fraction of evasive variants (given as per-program subwindow traces)
/// flagged as malware.
pub fn evasive_sensitivity(
    detector: &mut dyn BlackBox,
    evasive_subwindows: &[Vec<RawWindow>],
) -> f64 {
    if evasive_subwindows.is_empty() {
        return 0.0;
    }
    let detected = evasive_subwindows
        .iter()
        .filter(|subs| {
            let stream = detector.label_subwindows(subs);
            ProgramVerdict::from_decisions(&stream).is_malware()
        })
        .count();
    detected as f64 / evasive_subwindows.len() as f64
}

/// One point of the Fig 11 retraining sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainPoint {
    /// Fraction of evasive malware in the training set.
    pub fraction: f64,
    /// Sensitivity on evasive malware (program level).
    pub sensitivity_evasive: f64,
    /// Sensitivity on unmodified malware.
    pub sensitivity_unmodified: f64,
    /// Specificity on benign programs.
    pub specificity: f64,
}

/// Computes one point of the Fig 11 sweep: retrains with `fraction` of the
/// malware windows evasive and measures the retrained detector. Each point
/// is independent of every other, which is what makes the sweep both
/// parallelizable and checkpointable unit-by-unit.
#[allow(clippy::too_many_arguments)]
pub fn retrain_point(
    algorithm: Algorithm,
    spec: &FeatureSpec,
    trainer: &TrainerConfig,
    traced: &TracedCorpus,
    victim_train: &[usize],
    test_indices: &[usize],
    evasive_train: &[Vec<RawWindow>],
    evasive_test: &[Vec<RawWindow>],
    fraction: f64,
) -> RetrainPoint {
    let data = mixed_training_set(traced, victim_train, spec, evasive_train, fraction);
    let mut retrained = Hmd::train_on_dataset(algorithm, spec.clone(), trainer, &data);
    let quality = detection_quality(&mut retrained, traced, test_indices);
    RetrainPoint {
        fraction,
        sensitivity_evasive: evasive_sensitivity(&mut retrained, evasive_test),
        sensitivity_unmodified: quality.sensitivity_unmodified,
        specificity: quality.specificity,
    }
}

/// Runs the Fig 11 sweep for one algorithm.
///
/// `evasive_train` supplies the evasive windows mixed into training;
/// `evasive_test` the held-out evasive variants measured against.
#[allow(clippy::too_many_arguments)]
pub fn retrain_sweep(
    algorithm: Algorithm,
    spec: &FeatureSpec,
    trainer: &TrainerConfig,
    traced: &TracedCorpus,
    victim_train: &[usize],
    test_indices: &[usize],
    evasive_train: &[Vec<RawWindow>],
    evasive_test: &[Vec<RawWindow>],
    fractions: &[f64],
) -> Vec<RetrainPoint> {
    fractions
        .iter()
        .map(|&fraction| {
            retrain_point(
                algorithm,
                spec,
                trainer,
                traced,
                victim_train,
                test_indices,
                evasive_train,
                evasive_test,
                fraction,
            )
        })
        .collect()
}

/// One generation of the evade–retrain game (Fig 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// 1-based generation number.
    pub generation: u32,
    /// Specificity on benign programs.
    pub specificity: f64,
    /// Sensitivity on unmodified malware.
    pub sensitivity_unmodified: f64,
    /// Sensitivity on the evasive malware created against *this* detector.
    pub sensitivity_current_evasive: f64,
    /// Sensitivity on the previous generation's evasive malware.
    pub sensitivity_previous_evasive: f64,
}

/// Configuration of the evade–retrain game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Defender's algorithm (the paper plays this with NN).
    pub algorithm: Algorithm,
    /// Defender's feature spec.
    pub spec: FeatureSpec,
    /// Attacker's surrogate algorithm.
    pub surrogate: Algorithm,
    /// Instructions injected per site each generation.
    pub payload: usize,
    /// Number of generations to play.
    pub generations: u32,
    /// Training hyperparameters.
    pub trainer: TrainerConfig,
    /// Game seed.
    pub seed: u64,
}

impl GameConfig {
    /// A stable hash of the full configuration (FNV-1a over the canonical
    /// debug rendering), used to refuse resuming a checkpoint written by a
    /// different game. `generations` is deliberately excluded so a finished
    /// checkpoint can be extended with more generations.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        let mut canonical = self.clone();
        canonical.generations = 0;
        fnv1a(format!("{canonical:?}").as_bytes())
    }
}

/// FNV-1a over `bytes` — a tiny stable hash for config fingerprints (the
/// richer durable-I/O layer lives in `rhmd-bench`, which this crate must
/// not depend on).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Version of the serialized [`GameState`] layout.
pub const GAME_STATE_VERSION: u32 = 1;

/// The inter-generation state of the evade–retrain game — everything needed
/// to continue the game after generation `completed_generations` exactly as
/// an uninterrupted run would.
///
/// The victim detector itself is *not* stored: it is always retrained from
/// the (deterministic) initial window dataset plus `evasive_rows`, so the
/// resumed detector is bit-identical to the one the interrupted run held.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameState {
    /// Layout version ([`GAME_STATE_VERSION`]).
    pub schema_version: u32,
    /// [`GameConfig::stable_hash`] of the game that wrote this state.
    pub config_hash: u64,
    /// Generations fully played (records + retrain applied).
    pub completed_generations: u32,
    /// One record per completed generation.
    pub records: Vec<GenerationRecord>,
    /// Projected evasive training rows appended so far, in append order.
    pub evasive_rows: Vec<Vec<f64>>,
    /// The evasive test variants of the last completed generation.
    pub previous_evasive_test: Vec<Vec<RawWindow>>,
}

impl GameState {
    /// Validates that this state can seed a resume of `config`.
    ///
    /// # Errors
    ///
    /// [`RhmdError::Version`] on a schema-version mismatch;
    /// [`RhmdError::Config`] when the state was written by a different game
    /// configuration, is internally inconsistent, or already covers at
    /// least `config.generations` generations.
    pub fn validate_for(&self, config: &GameConfig) -> Result<(), RhmdError> {
        if self.schema_version != GAME_STATE_VERSION {
            return Err(RhmdError::Version {
                found: self.schema_version,
                expected: GAME_STATE_VERSION,
            });
        }
        if self.config_hash != config.stable_hash() {
            return Err(RhmdError::config(format!(
                "game checkpoint was written by a different configuration \
                 (checkpoint hash {:016x}, this run {:016x}); rerun with the \
                 original flags or start a fresh checkpoint directory",
                self.config_hash,
                config.stable_hash()
            )));
        }
        if self.records.len() != self.completed_generations as usize {
            return Err(RhmdError::config(format!(
                "game checkpoint is inconsistent: {} generation record(s) for \
                 {} completed generation(s)",
                self.records.len(),
                self.completed_generations
            )));
        }
        Ok(())
    }
}

/// Plays the evade–retrain game and records each generation.
///
/// Per generation: the attacker reverse-engineers the current detector and
/// rewrites the malware; the defender then retrains with the evasive samples
/// added to the training set (as the paper does, "adding malware from the
/// previous generations to the training set").
#[allow(clippy::too_many_arguments)]
pub fn evade_retrain_game(
    config: &GameConfig,
    traced: &TracedCorpus,
    victim_train: &[usize],
    attacker_train: &[usize],
    test_indices: &[usize],
) -> Vec<GenerationRecord> {
    evade_retrain_game_resumable(
        config,
        traced,
        victim_train,
        attacker_train,
        test_indices,
        None,
        &mut |_| Ok(()),
    )
    .expect("game without resume state or fallible callback cannot fail")
}

/// [`evade_retrain_game`] with checkpoint hooks: `resume` (a validated
/// [`GameState`]) fast-forwards past already-played generations, and
/// `on_generation` receives the post-retrain state after every generation so
/// callers can persist it. A resumed game is **bit-identical** to an
/// uninterrupted one: the per-generation seeds derive from `(config.seed,
/// generation)` alone, and retraining is a deterministic function of the
/// initial window dataset plus the recorded evasive rows.
///
/// # Errors
///
/// Propagates [`GameState::validate_for`] failures and any error the
/// `on_generation` callback returns.
#[allow(clippy::too_many_arguments)]
pub fn evade_retrain_game_resumable(
    config: &GameConfig,
    traced: &TracedCorpus,
    victim_train: &[usize],
    attacker_train: &[usize],
    test_indices: &[usize],
    resume: Option<GameState>,
    on_generation: &mut dyn FnMut(&GameState) -> Result<(), RhmdError>,
) -> Result<Vec<GenerationRecord>, RhmdError> {
    let labels = traced.corpus().labels();
    let train_malware: Vec<usize> = victim_train
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();
    let test_malware: Vec<usize> = test_indices
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();

    let mut training_data = {
        let mut d = traced.window_dataset(victim_train, &config.spec);
        d.extend_from(&Dataset::new(config.spec.dims()));
        d
    };
    let mut previous_evasive_test: Vec<Vec<RawWindow>> = Vec::new();
    let mut records = Vec::with_capacity(config.generations as usize);
    let mut evasive_rows: Vec<Vec<f64>> = Vec::new();
    let mut first_generation = 1u32;
    if let Some(state) = resume {
        state.validate_for(config)?;
        if state.completed_generations >= config.generations {
            // The checkpoint already covers every requested generation.
            return Ok(state.records[..config.generations as usize].to_vec());
        }
        training_data.reserve_rows(state.evasive_rows.len());
        for row in &state.evasive_rows {
            training_data.push_row(row, true);
        }
        first_generation = state.completed_generations + 1;
        records = state.records;
        evasive_rows = state.evasive_rows;
        previous_evasive_test = state.previous_evasive_test;
    }
    let mut victim = Hmd::train_on_dataset(
        config.algorithm,
        config.spec.clone(),
        &config.trainer,
        &training_data,
    );

    for generation in first_generation..=config.generations {
        // Attacker: reverse-engineer the current detector and build a plan.
        let surrogate = reveng::reverse_engineer(
            &mut victim,
            traced,
            attacker_train,
            config.spec.clone(),
            config.surrogate,
            &TrainerConfig::with_seed(config.seed ^ u64::from(generation)),
        );
        let plan = plan_evasion(
            &surrogate,
            &EvasionConfig {
                seed: config.seed ^ (u64::from(generation) << 8),
                ..EvasionConfig::least_weight(config.payload)
            },
        );

        // Evasive variants: of the training malware (for retraining) and the
        // test malware (for evaluation).
        let evasive_train = trace_evasive_variants(traced, &train_malware, &plan);
        let evasive_test = trace_evasive_variants(traced, &test_malware, &plan);

        let quality = detection_quality(&mut victim, traced, test_indices);
        let record = GenerationRecord {
            generation,
            specificity: quality.specificity,
            sensitivity_unmodified: quality.sensitivity_unmodified,
            sensitivity_current_evasive: evasive_sensitivity(&mut victim, &evasive_test),
            sensitivity_previous_evasive: if previous_evasive_test.is_empty() {
                quality.sensitivity_unmodified
            } else {
                evasive_sensitivity(&mut victim, &previous_evasive_test)
            },
        };
        records.push(record);

        // Defender: retrain with the new evasive samples added.
        for subs in &evasive_train {
            for w in rhmd_features::window::aggregate(subs, config.spec.period) {
                let row = config.spec.project(&w);
                training_data.push(row.clone(), true);
                evasive_rows.push(row);
            }
        }
        victim = Hmd::train_on_dataset(
            config.algorithm,
            config.spec.clone(),
            &config.trainer,
            &training_data,
        );
        previous_evasive_test = evasive_test;

        let state = GameState {
            schema_version: GAME_STATE_VERSION,
            config_hash: config.stable_hash(),
            completed_generations: generation,
            records: records.clone(),
            evasive_rows: evasive_rows.clone(),
            previous_evasive_test: previous_evasive_test.clone(),
        };
        on_generation(&state)?;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_features::vector::FeatureKind;
    use rhmd_features::select::select_top_delta_opcodes;
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, FeatureSpec) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let labels = traced.corpus().labels();
        let mal: Vec<_> = splits
            .victim_train
            .iter()
            .filter(|&&i| labels[i])
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect();
        let ben: Vec<_> = splits
            .victim_train
            .iter()
            .filter(|&&i| !labels[i])
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect();
        let opcodes = select_top_delta_opcodes(&mal, &ben, 12);
        let spec = FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes);
        (traced, splits, spec)
    }

    #[test]
    fn mixed_training_set_swaps_malware_windows() {
        let (traced, splits, spec) = fixture();
        let labels = traced.corpus().labels();
        let malware: Vec<usize> = splits
            .victim_train
            .iter()
            .copied()
            .filter(|&i| labels[i])
            .collect();
        let plan = InjectionPlan::new(
            vec![rhmd_trace::isa::Opcode::Fpu],
            rhmd_trace::inject::Placement::EveryBlock,
        );
        let evasive = trace_evasive_variants(&traced, &malware[..2], &plan);
        let zero = mixed_training_set(&traced, &splits.victim_train, &spec, &evasive, 0.0);
        let half = mixed_training_set(&traced, &splits.victim_train, &spec, &evasive, 0.5);
        assert!(zero.positives() > 0);
        assert!(half.positives() > 0);
        assert_eq!(zero.negatives(), half.negatives());
    }

    #[test]
    fn detection_quality_bounds() {
        let (traced, splits, spec) = fixture();
        let mut hmd = Hmd::train(
            Algorithm::Lr,
            spec,
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let q = detection_quality(&mut hmd, &traced, &splits.attacker_test);
        assert!((0.0..=1.0).contains(&q.sensitivity_unmodified));
        assert!((0.0..=1.0).contains(&q.specificity));
        assert!(q.sensitivity_unmodified > 0.4);
        assert!(q.specificity > 0.4);
    }

    #[test]
    fn game_runs_generations() {
        let (traced, splits, spec) = fixture();
        let config = GameConfig {
            algorithm: Algorithm::Nn,
            spec,
            surrogate: Algorithm::Lr,
            payload: 2,
            generations: 2,
            trainer: TrainerConfig::default(),
            seed: 11,
        };
        let records = evade_retrain_game(
            &config,
            &traced,
            &splits.victim_train,
            &splits.attacker_train,
            &splits.attacker_test,
        );
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].generation, 1);
        for r in &records {
            assert!((0.0..=1.0).contains(&r.sensitivity_current_evasive));
            assert!((0.0..=1.0).contains(&r.specificity));
        }
    }

    #[test]
    fn resumed_game_is_bit_identical_to_uninterrupted() {
        let (traced, splits, spec) = fixture();
        let config = GameConfig {
            algorithm: Algorithm::Nn,
            spec,
            surrogate: Algorithm::Lr,
            payload: 2,
            generations: 3,
            trainer: TrainerConfig::default(),
            seed: 11,
        };
        let golden = evade_retrain_game(
            &config,
            &traced,
            &splits.victim_train,
            &splits.attacker_train,
            &splits.attacker_test,
        );

        // Play one generation, snapshot, "crash", resume from the snapshot.
        let mut snapshots: Vec<GameState> = Vec::new();
        let mut interrupted = config.clone();
        interrupted.generations = 1;
        evade_retrain_game_resumable(
            &interrupted,
            &traced,
            &splits.victim_train,
            &splits.attacker_train,
            &splits.attacker_test,
            None,
            &mut |state| {
                snapshots.push(state.clone());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(snapshots.len(), 1);

        let resumed = evade_retrain_game_resumable(
            &config,
            &traced,
            &splits.victim_train,
            &splits.attacker_train,
            &splits.attacker_test,
            Some(snapshots.pop().unwrap()),
            &mut |_| Ok(()),
        )
        .unwrap();
        assert_eq!(resumed.len(), golden.len());
        for (r, g) in resumed.iter().zip(&golden) {
            assert_eq!(r.generation, g.generation);
            assert_eq!(r.specificity.to_bits(), g.specificity.to_bits());
            assert_eq!(
                r.sensitivity_unmodified.to_bits(),
                g.sensitivity_unmodified.to_bits()
            );
            assert_eq!(
                r.sensitivity_current_evasive.to_bits(),
                g.sensitivity_current_evasive.to_bits()
            );
            assert_eq!(
                r.sensitivity_previous_evasive.to_bits(),
                g.sensitivity_previous_evasive.to_bits()
            );
        }
    }

    #[test]
    fn resume_rejects_mismatched_config_and_bad_schema() {
        let (traced, splits, spec) = fixture();
        let config = GameConfig {
            algorithm: Algorithm::Nn,
            spec,
            surrogate: Algorithm::Lr,
            payload: 2,
            generations: 2,
            trainer: TrainerConfig::default(),
            seed: 11,
        };
        let mut other = config.clone();
        other.seed = 12;
        assert_ne!(config.stable_hash(), other.stable_hash());
        // More generations alone is still "the same game".
        let mut extended = config.clone();
        extended.generations = 9;
        assert_eq!(config.stable_hash(), extended.stable_hash());

        let state = GameState {
            schema_version: GAME_STATE_VERSION,
            config_hash: other.stable_hash(),
            completed_generations: 1,
            records: vec![GenerationRecord {
                generation: 1,
                specificity: 1.0,
                sensitivity_unmodified: 1.0,
                sensitivity_current_evasive: 0.5,
                sensitivity_previous_evasive: 1.0,
            }],
            evasive_rows: Vec::new(),
            previous_evasive_test: Vec::new(),
        };
        let err = evade_retrain_game_resumable(
            &config,
            &traced,
            &splits.victim_train,
            &splits.attacker_train,
            &splits.attacker_test,
            Some(state.clone()),
            &mut |_| Ok(()),
        )
        .unwrap_err();
        assert!(matches!(err, RhmdError::Config(_)), "{err}");
        assert!(err.to_string().contains("different configuration"), "{err}");

        let mut stale = state;
        stale.config_hash = config.stable_hash();
        stale.schema_version = 99;
        assert!(matches!(
            stale.validate_for(&config),
            Err(RhmdError::Version { found: 99, .. })
        ));
    }
}
