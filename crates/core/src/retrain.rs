//! Retraining victim detectors on evasive malware (paper §6).
//!
//! Two experiments:
//!
//! * **Fraction sweep** (Fig 11) — retrain with `f`% of the malware training
//!   windows replaced by evasive ones; measure sensitivity on evasive and
//!   unmodified malware and specificity on benign programs.
//! * **Evade–retrain generations** (Fig 13) — alternate attacker evasion and
//!   defender retraining, tracking how each generation's detector handles
//!   current and previous evasive malware.

use crate::evasion::{plan_evasion, EvasionConfig};
use crate::hmd::{Detector, Hmd, ProgramVerdict};
use crate::reveng;
use rhmd_data::{parallel_map, TracedCorpus};
use rhmd_features::vector::FeatureSpec;
use rhmd_features::window::RawWindow;
use rhmd_ml::model::Dataset;
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_trace::inject::{apply, InjectionPlan};
use rhmd_trace::Program;
use serde::{Deserialize, Serialize};

/// Traces the evasive variant of every program in `indices`, returning the
/// per-program subwindows.
pub fn trace_evasive_variants(
    traced: &TracedCorpus,
    indices: &[usize],
    plan: &InjectionPlan,
) -> Vec<Vec<RawWindow>> {
    let programs: Vec<&Program> = indices.iter().map(|&i| traced.corpus().program(i)).collect();
    parallel_map(&programs, |p| {
        let (modified, overhead) = apply(p, plan);
        traced.trace_program(&modified, 1.05 + overhead.ratio())
    })
}

/// Builds a retraining dataset where `fraction` of the malware windows are
/// evasive (paper Fig 11's x-axis) and benign windows are unchanged.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn mixed_training_set(
    traced: &TracedCorpus,
    victim_train: &[usize],
    spec: &FeatureSpec,
    evasive_subwindows: &[Vec<RawWindow>],
    fraction: f64,
) -> Dataset {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let labels = traced.corpus().labels();
    let mut data = Dataset::new(spec.dims());
    // Benign windows: unchanged.
    for &i in victim_train.iter().filter(|&&i| !labels[i]) {
        for v in traced.program_vectors(i, spec) {
            data.push(v, false);
        }
    }
    // Malware windows: keep (1 - fraction) original...
    let malware: Vec<usize> = victim_train.iter().copied().filter(|&i| labels[i]).collect();
    let keep = ((malware.len() as f64) * (1.0 - fraction)).round() as usize;
    for &i in &malware[..keep.min(malware.len())] {
        for v in traced.program_vectors(i, spec) {
            data.push(v, true);
        }
    }
    // ...and draw the remainder from evasive variants.
    let need = malware.len() - keep.min(malware.len());
    for subs in evasive_subwindows.iter().cycle().take(need) {
        for w in rhmd_features::window::aggregate(subs, spec.period) {
            data.push(spec.project(&w), true);
        }
    }
    data
}

/// Program-level detection quality of a detector over a set of programs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionQuality {
    /// Fraction of unmodified malware programs detected.
    pub sensitivity_unmodified: f64,
    /// Fraction of benign programs passed.
    pub specificity: f64,
}

/// Measures program-level sensitivity/specificity over `indices`.
pub fn detection_quality(
    detector: &mut dyn Detector,
    traced: &TracedCorpus,
    indices: &[usize],
) -> DetectionQuality {
    let labels = traced.corpus().labels();
    let (mut tp, mut mal, mut tn, mut ben) = (0usize, 0usize, 0usize, 0usize);
    for &i in indices {
        let stream = detector.label_subwindows(traced.subwindows(i));
        let verdict = ProgramVerdict::from_decisions(&stream).is_malware();
        if labels[i] {
            mal += 1;
            if verdict {
                tp += 1;
            }
        } else {
            ben += 1;
            if !verdict {
                tn += 1;
            }
        }
    }
    DetectionQuality {
        sensitivity_unmodified: if mal == 0 { 0.0 } else { tp as f64 / mal as f64 },
        specificity: if ben == 0 { 0.0 } else { tn as f64 / ben as f64 },
    }
}

/// Fraction of evasive variants (given as per-program subwindow traces)
/// flagged as malware.
pub fn evasive_sensitivity(
    detector: &mut dyn Detector,
    evasive_subwindows: &[Vec<RawWindow>],
) -> f64 {
    if evasive_subwindows.is_empty() {
        return 0.0;
    }
    let detected = evasive_subwindows
        .iter()
        .filter(|subs| {
            let stream = detector.label_subwindows(subs);
            ProgramVerdict::from_decisions(&stream).is_malware()
        })
        .count();
    detected as f64 / evasive_subwindows.len() as f64
}

/// One point of the Fig 11 retraining sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainPoint {
    /// Fraction of evasive malware in the training set.
    pub fraction: f64,
    /// Sensitivity on evasive malware (program level).
    pub sensitivity_evasive: f64,
    /// Sensitivity on unmodified malware.
    pub sensitivity_unmodified: f64,
    /// Specificity on benign programs.
    pub specificity: f64,
}

/// Runs the Fig 11 sweep for one algorithm.
///
/// `evasive_train` supplies the evasive windows mixed into training;
/// `evasive_test` the held-out evasive variants measured against.
#[allow(clippy::too_many_arguments)]
pub fn retrain_sweep(
    algorithm: Algorithm,
    spec: &FeatureSpec,
    trainer: &TrainerConfig,
    traced: &TracedCorpus,
    victim_train: &[usize],
    test_indices: &[usize],
    evasive_train: &[Vec<RawWindow>],
    evasive_test: &[Vec<RawWindow>],
    fractions: &[f64],
) -> Vec<RetrainPoint> {
    fractions
        .iter()
        .map(|&fraction| {
            let data =
                mixed_training_set(traced, victim_train, spec, evasive_train, fraction);
            let mut retrained =
                Hmd::train_on_dataset(algorithm, spec.clone(), trainer, &data);
            let quality = detection_quality(&mut retrained, traced, test_indices);
            RetrainPoint {
                fraction,
                sensitivity_evasive: evasive_sensitivity(&mut retrained, evasive_test),
                sensitivity_unmodified: quality.sensitivity_unmodified,
                specificity: quality.specificity,
            }
        })
        .collect()
}

/// One generation of the evade–retrain game (Fig 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// 1-based generation number.
    pub generation: u32,
    /// Specificity on benign programs.
    pub specificity: f64,
    /// Sensitivity on unmodified malware.
    pub sensitivity_unmodified: f64,
    /// Sensitivity on the evasive malware created against *this* detector.
    pub sensitivity_current_evasive: f64,
    /// Sensitivity on the previous generation's evasive malware.
    pub sensitivity_previous_evasive: f64,
}

/// Configuration of the evade–retrain game.
#[derive(Debug, Clone)]
pub struct GameConfig {
    /// Defender's algorithm (the paper plays this with NN).
    pub algorithm: Algorithm,
    /// Defender's feature spec.
    pub spec: FeatureSpec,
    /// Attacker's surrogate algorithm.
    pub surrogate: Algorithm,
    /// Instructions injected per site each generation.
    pub payload: usize,
    /// Number of generations to play.
    pub generations: u32,
    /// Training hyperparameters.
    pub trainer: TrainerConfig,
    /// Game seed.
    pub seed: u64,
}

/// Plays the evade–retrain game and records each generation.
///
/// Per generation: the attacker reverse-engineers the current detector and
/// rewrites the malware; the defender then retrains with the evasive samples
/// added to the training set (as the paper does, "adding malware from the
/// previous generations to the training set").
#[allow(clippy::too_many_arguments)]
pub fn evade_retrain_game(
    config: &GameConfig,
    traced: &TracedCorpus,
    victim_train: &[usize],
    attacker_train: &[usize],
    test_indices: &[usize],
) -> Vec<GenerationRecord> {
    let labels = traced.corpus().labels();
    let train_malware: Vec<usize> = victim_train
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();
    let test_malware: Vec<usize> = test_indices
        .iter()
        .copied()
        .filter(|&i| labels[i])
        .collect();

    let mut training_data = {
        let mut d = traced.window_dataset(victim_train, &config.spec);
        d.extend_from(&Dataset::new(config.spec.dims()));
        d
    };
    let mut victim = Hmd::train_on_dataset(
        config.algorithm,
        config.spec.clone(),
        &config.trainer,
        &training_data,
    );
    let mut previous_evasive_test: Vec<Vec<RawWindow>> = Vec::new();
    let mut records = Vec::with_capacity(config.generations as usize);

    for generation in 1..=config.generations {
        // Attacker: reverse-engineer the current detector and build a plan.
        let surrogate = reveng::reverse_engineer(
            &mut victim,
            traced,
            attacker_train,
            config.spec.clone(),
            config.surrogate,
            &TrainerConfig::with_seed(config.seed ^ u64::from(generation)),
        );
        let plan = plan_evasion(
            &surrogate,
            &EvasionConfig {
                seed: config.seed ^ (u64::from(generation) << 8),
                ..EvasionConfig::least_weight(config.payload)
            },
        );

        // Evasive variants: of the training malware (for retraining) and the
        // test malware (for evaluation).
        let evasive_train = trace_evasive_variants(traced, &train_malware, &plan);
        let evasive_test = trace_evasive_variants(traced, &test_malware, &plan);

        let quality = detection_quality(&mut victim, traced, test_indices);
        let record = GenerationRecord {
            generation,
            specificity: quality.specificity,
            sensitivity_unmodified: quality.sensitivity_unmodified,
            sensitivity_current_evasive: evasive_sensitivity(&mut victim, &evasive_test),
            sensitivity_previous_evasive: if previous_evasive_test.is_empty() {
                quality.sensitivity_unmodified
            } else {
                evasive_sensitivity(&mut victim, &previous_evasive_test)
            },
        };
        records.push(record);

        // Defender: retrain with the new evasive samples added.
        for subs in &evasive_train {
            for w in rhmd_features::window::aggregate(subs, config.spec.period) {
                training_data.push(config.spec.project(&w), true);
            }
        }
        victim = Hmd::train_on_dataset(
            config.algorithm,
            config.spec.clone(),
            &config.trainer,
            &training_data,
        );
        previous_evasive_test = evasive_test;
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhmd_data::{Corpus, CorpusConfig, Splits};
    use rhmd_features::vector::FeatureKind;
    use rhmd_features::select::select_top_delta_opcodes;
    use rhmd_uarch::CoreConfig;

    fn fixture() -> (TracedCorpus, Splits, FeatureSpec) {
        let config = CorpusConfig::tiny();
        let corpus = Corpus::build(&config);
        let splits = Splits::new(&corpus, config.seed);
        let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
        let labels = traced.corpus().labels();
        let mal: Vec<_> = splits
            .victim_train
            .iter()
            .filter(|&&i| labels[i])
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect();
        let ben: Vec<_> = splits
            .victim_train
            .iter()
            .filter(|&&i| !labels[i])
            .flat_map(|&i| traced.subwindows(i).to_vec())
            .collect();
        let opcodes = select_top_delta_opcodes(&mal, &ben, 12);
        let spec = FeatureSpec::new(FeatureKind::Instructions, 5_000, opcodes);
        (traced, splits, spec)
    }

    #[test]
    fn mixed_training_set_swaps_malware_windows() {
        let (traced, splits, spec) = fixture();
        let labels = traced.corpus().labels();
        let malware: Vec<usize> = splits
            .victim_train
            .iter()
            .copied()
            .filter(|&i| labels[i])
            .collect();
        let plan = InjectionPlan::new(
            vec![rhmd_trace::isa::Opcode::Fpu],
            rhmd_trace::inject::Placement::EveryBlock,
        );
        let evasive = trace_evasive_variants(&traced, &malware[..2], &plan);
        let zero = mixed_training_set(&traced, &splits.victim_train, &spec, &evasive, 0.0);
        let half = mixed_training_set(&traced, &splits.victim_train, &spec, &evasive, 0.5);
        assert!(zero.positives() > 0);
        assert!(half.positives() > 0);
        assert_eq!(zero.negatives(), half.negatives());
    }

    #[test]
    fn detection_quality_bounds() {
        let (traced, splits, spec) = fixture();
        let mut hmd = Hmd::train(
            Algorithm::Lr,
            spec,
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        );
        let q = detection_quality(&mut hmd, &traced, &splits.attacker_test);
        assert!((0.0..=1.0).contains(&q.sensitivity_unmodified));
        assert!((0.0..=1.0).contains(&q.specificity));
        assert!(q.sensitivity_unmodified > 0.4);
        assert!(q.specificity > 0.4);
    }

    #[test]
    fn game_runs_generations() {
        let (traced, splits, spec) = fixture();
        let config = GameConfig {
            algorithm: Algorithm::Nn,
            spec,
            surrogate: Algorithm::Lr,
            payload: 2,
            generations: 2,
            trainer: TrainerConfig::default(),
            seed: 11,
        };
        let records = evade_retrain_game(
            &config,
            &traced,
            &splits.victim_train,
            &splits.attacker_train,
            &splits.attacker_test,
        );
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].generation, 1);
        for r in &records {
            assert!((0.0..=1.0).contains(&r.sensitivity_current_evasive));
            assert!((0.0..=1.0).contains(&r.specificity));
        }
    }
}
