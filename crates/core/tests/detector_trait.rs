//! Trait-object equivalence suite: calls through `dyn Detector` must be
//! bit-identical to the legacy concrete inherent-method results, for all
//! four detector families and across seeds. This is the contract that lets
//! the evaluator and the figures hold detectors behind one trait without
//! changing a single published number.

use rhmd_core::detector::{Detector, StreamRng};
use rhmd_core::ensemble::{Combiner, EnsembleHmd};
use rhmd_core::hmd::{BlackBox, Hmd};
use rhmd_core::rhmd::{build_pool, pool_specs, NonStationaryRhmd, ResilientHmd};
use rhmd_data::{Corpus, CorpusConfig, Splits, TracedCorpus};
use rhmd_features::vector::{FeatureKind, FeatureSpec};
use rhmd_ml::trainer::{Algorithm, TrainerConfig};
use rhmd_uarch::CoreConfig;

const SEEDS: [u64; 3] = [1, 42, 0x5eed];

fn fixture() -> (TracedCorpus, Splits) {
    let config = CorpusConfig::tiny();
    let corpus = Corpus::build(&config);
    let splits = Splits::new(&corpus, config.seed);
    let traced = TracedCorpus::trace(corpus, config.limits(), CoreConfig::default());
    (traced, splits)
}

fn train_one(traced: &TracedCorpus, train: &[usize], kind: FeatureKind, period: u32) -> Hmd {
    Hmd::train(
        Algorithm::Lr,
        FeatureSpec::new(kind, period, vec![]),
        &TrainerConfig::default(),
        traced,
        train,
    )
}

#[test]
fn hmd_trait_object_matches_inherent_methods() {
    let (traced, splits) = fixture();
    let hmd = train_one(&traced, &splits.victim_train, FeatureKind::Architectural, 5_000);
    let boxed: Box<dyn Detector> = Box::new(hmd.clone());
    let mut legacy = hmd.clone();
    for i in 0..traced.corpus().len().min(4) {
        let subs = traced.subwindows(i);
        for seed in SEEDS {
            // Deterministic detector: every seed produces the inherent result.
            assert_eq!(
                boxed.label_stream(subs, &mut StreamRng::from_seed(seed)),
                legacy.label_subwindows(subs)
            );
            assert_eq!(
                boxed.epoch_decisions(subs, &mut StreamRng::from_seed(seed)),
                hmd.decide_windows(subs)
            );
            assert_eq!(
                boxed.quorum(subs, 1.0, &mut StreamRng::from_seed(seed)),
                hmd.quorum_verdict(subs, 1.0)
            );
        }
    }
    assert_eq!(boxed.name(), legacy.describe());
}

#[test]
fn ensemble_trait_object_matches_inherent_methods() {
    let (traced, splits) = fixture();
    let detectors: Vec<Hmd> = [FeatureKind::Memory, FeatureKind::Architectural]
        .into_iter()
        .map(|k| train_one(&traced, &splits.victim_train, k, 5_000))
        .collect();
    let ensemble = EnsembleHmd::new(detectors.clone(), Combiner::Majority);
    let boxed: Box<dyn Detector> = Box::new(EnsembleHmd::new(detectors, Combiner::Majority));
    let mut legacy = EnsembleHmd::new(ensemble.detectors().to_vec(), Combiner::Majority);
    for i in 0..traced.corpus().len().min(4) {
        let subs = traced.subwindows(i);
        for seed in SEEDS {
            assert_eq!(
                boxed.label_stream(subs, &mut StreamRng::from_seed(seed)),
                legacy.label_subwindows(subs)
            );
            assert_eq!(
                boxed.epoch_decisions(subs, &mut StreamRng::from_seed(seed)),
                ensemble.decide_windows(subs)
            );
            assert_eq!(
                boxed.quorum(subs, 0.5, &mut StreamRng::from_seed(seed)),
                ensemble.quorum_verdict(subs, 0.5)
            );
        }
    }
    assert_eq!(boxed.name(), legacy.describe());
}

#[test]
#[allow(deprecated)] // exercises the one-release compatibility forwarders
fn resilient_trait_object_matches_seeded_and_serial_walks() {
    let (traced, splits) = fixture();
    for seed in SEEDS {
        let specs = pool_specs(
            &[FeatureKind::Memory, FeatureKind::Architectural],
            &[5_000, 10_000],
            &[],
        );
        let mut pool = build_pool(
            Algorithm::Lr,
            specs,
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
            seed,
        );
        for i in 0..traced.corpus().len().min(3) {
            let subs = traced.subwindows(i);
            // The legacy stateful walk from a fresh reset, captured first
            // (it needs `&mut`, the trait object only `&`).
            pool.reset();
            let serial = BlackBox::label_subwindows(&mut pool, subs);
            let boxed: &dyn Detector = &pool;
            // Trait path == deprecated seeded forwarders, any stream seed.
            for stream_seed in SEEDS {
                assert_eq!(
                    boxed.label_stream(subs, &mut StreamRng::from_seed(stream_seed)),
                    pool.label_subwindows_seeded(subs, stream_seed)
                );
                assert_eq!(
                    boxed.epoch_decisions(subs, &mut StreamRng::from_seed(stream_seed)),
                    pool.decisions_seeded(subs, stream_seed)
                );
                assert_eq!(
                    boxed.quorum(subs, 1.0, &mut StreamRng::from_seed(stream_seed)),
                    pool.quorum_verdict_seeded(subs, 1.0, stream_seed)
                );
            }
            // Trait path == the legacy stateful walk.
            assert_eq!(
                boxed.label_stream(subs, &mut StreamRng::from_seed(seed)),
                serial
            );
        }
    }
}

#[test]
fn non_stationary_trait_object_matches_fresh_pool() {
    let (traced, splits) = fixture();
    let candidates: Vec<Hmd> = pool_specs(
        &[FeatureKind::Memory, FeatureKind::Architectural],
        &[5_000, 10_000],
        &[],
    )
    .into_iter()
    .map(|spec| {
        Hmd::train(
            Algorithm::Lr,
            spec,
            &TrainerConfig::default(),
            &traced,
            &splits.victim_train,
        )
    })
    .collect();
    for seed in SEEDS {
        let mut pool = NonStationaryRhmd::new(candidates.clone(), 2, 2, seed);
        let boxed: Box<dyn Detector> = Box::new(NonStationaryRhmd::new(
            candidates.clone(),
            2,
            2,
            seed,
        ));
        for i in 0..traced.corpus().len().min(3) {
            let subs = traced.subwindows(i);
            pool.reset();
            let stateful = BlackBox::label_subwindows(&mut pool, subs);
            assert_eq!(
                boxed.label_stream(subs, &mut StreamRng::from_seed(seed)),
                stateful,
                "seed {seed}, program {i}"
            );
            pool.reset();
            let decisions = BlackBox::decisions(&mut pool, subs);
            assert_eq!(
                boxed.epoch_decisions(subs, &mut StreamRng::from_seed(seed)),
                decisions
            );
        }
    }
}

#[test]
fn heterogeneous_detector_collection_is_usable() {
    let (traced, splits) = fixture();
    let hmd = train_one(&traced, &splits.victim_train, FeatureKind::Architectural, 5_000);
    let ensemble = EnsembleHmd::new(
        vec![
            hmd.clone(),
            train_one(&traced, &splits.victim_train, FeatureKind::Memory, 5_000),
        ],
        Combiner::Majority,
    );
    let pool = ResilientHmd::new(
        vec![
            hmd.clone(),
            train_one(&traced, &splits.victim_train, FeatureKind::Memory, 5_000),
        ],
        7,
    );
    let ns = NonStationaryRhmd::new(
        vec![
            hmd.clone(),
            train_one(&traced, &splits.victim_train, FeatureKind::Memory, 10_000),
        ],
        1,
        2,
        7,
    );
    let zoo: Vec<Box<dyn Detector>> =
        vec![Box::new(hmd), Box::new(ensemble), Box::new(pool), Box::new(ns)];
    let subs = traced.subwindows(0);
    for d in &zoo {
        assert!(!d.name().is_empty());
        let a = d.label_stream(subs, &mut StreamRng::from_seed(9));
        let b = d.label_stream(subs, &mut StreamRng::from_seed(9));
        assert_eq!(a, b, "{} must be a pure function of (subs, seed)", d.name());
        let q = d.quorum(subs, 1.0, &mut StreamRng::from_seed(9));
        assert_eq!(q.voted, d.epoch_decisions(subs, &mut StreamRng::from_seed(9)).len());
    }
}
