//! Edge-case contracts of the evaluation metrics: degenerate label sets,
//! empty window sets, tie-heavy score distributions, and all-abstain
//! quorums. These are the inputs the fault-injection pipeline actually
//! produces at high intensities, so "never panic, degrade to a defined
//! value" is load-bearing, not defensive.

use rhmd_core::hmd::{ProgramVerdict, QuorumVerdict};
use rhmd_ml::metrics::{
    agreement, auc, best_accuracy_threshold, roc_curve, Confusion, RocPoint,
};

// ---------------------------------------------------------------- ROC / AUC

#[test]
fn auc_on_single_class_labels_is_chance() {
    // A detector evaluated on an all-malware (or all-benign) split has no
    // ranking task; the defined answer is chance, not a panic or NaN.
    assert_eq!(auc(&[0.1, 0.5, 0.9], &[true, true, true]), 0.5);
    assert_eq!(auc(&[0.1, 0.5, 0.9], &[false, false, false]), 0.5);
    assert_eq!(auc(&[0.7], &[true]), 0.5);
}

#[test]
fn auc_on_empty_input_is_chance() {
    assert_eq!(auc(&[], &[]), 0.5);
}

#[test]
fn roc_curve_on_empty_input_is_the_origin() {
    let roc = roc_curve(&[], &[]);
    assert_eq!(
        roc,
        vec![RocPoint {
            threshold: f64::INFINITY,
            fpr: 0.0,
            tpr: 0.0
        }]
    );
}

#[test]
fn roc_curve_groups_ties_into_one_point() {
    // All scores identical: the whole set moves as one group, so the curve
    // is origin -> (1, 1) with no intermediate (unachievable) points.
    let roc = roc_curve(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]);
    assert_eq!(roc.len(), 2);
    assert_eq!((roc[1].fpr, roc[1].tpr), (1.0, 1.0));
}

#[test]
fn roc_curve_single_class_pins_the_degenerate_axis() {
    // No negatives: fpr has no denominator and stays 0 by definition.
    let roc = roc_curve(&[0.9, 0.1], &[true, true]);
    assert!(roc.iter().all(|p| p.fpr == 0.0));
    assert_eq!(roc.last().unwrap().tpr, 1.0);
    // No positives: mirrored.
    let roc = roc_curve(&[0.9, 0.1], &[false, false]);
    assert!(roc.iter().all(|p| p.tpr == 0.0));
    assert_eq!(roc.last().unwrap().fpr, 1.0);
}

#[test]
fn auc_handles_infinite_scores() {
    // Saturating-counter faults can push scores to the extremes; infinities
    // are orderable and must rank like any other score.
    let scores = [f64::INFINITY, f64::NEG_INFINITY];
    let labels = [true, false];
    assert_eq!(auc(&scores, &labels), 1.0);
}

#[test]
#[should_panic(expected = "NaN")]
fn roc_curve_rejects_nan_scores() {
    roc_curve(&[0.5, f64::NAN], &[true, false]);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn roc_curve_rejects_length_mismatch() {
    roc_curve(&[0.5], &[true, false]);
}

// ------------------------------------------------- operating-point search

#[test]
fn best_threshold_on_empty_window_set_is_defined() {
    // A fully-dropped stream yields zero scored windows; the search returns
    // the (0.0, 0.0) sentinel instead of indexing into nothing.
    assert_eq!(best_accuracy_threshold(&[], &[]), (0.0, 0.0));
}

#[test]
fn best_threshold_on_single_class_predicts_that_class() {
    // All benign: the all-benign operating point is already perfect, and it
    // is reported via the +inf threshold (classify nothing as malware).
    let (t, acc) = best_accuracy_threshold(&[0.2, 0.8], &[false, false]);
    assert_eq!(acc, 1.0);
    assert!(t.is_infinite());
    // All malware: the most permissive finite threshold flags everything.
    let (t, acc) = best_accuracy_threshold(&[0.2, 0.8], &[true, true]);
    assert_eq!(acc, 1.0);
    assert!(t.is_finite());
}

// ------------------------------------------------------- confusion counts

#[test]
fn empty_confusion_degrades_to_zero_not_nan() {
    let c = Confusion::from_predictions(&[], &[]);
    assert_eq!(c.total(), 0);
    for value in [
        c.accuracy(),
        c.sensitivity(),
        c.specificity(),
        c.precision(),
        c.f1(),
        c.balanced_accuracy(),
        c.mcc(),
    ] {
        assert_eq!(value, 0.0);
    }
    // fpr is 1 - specificity, and specificity's degenerate value is 0.
    assert_eq!(c.fpr(), 1.0);
}

#[test]
fn single_class_confusion_keeps_the_undefined_rate_at_zero() {
    // Only malware present: specificity has no denominator and reports 0,
    // while sensitivity is still meaningful.
    let c = Confusion::from_predictions(&[true, false], &[true, true]);
    assert_eq!(c.sensitivity(), 0.5);
    assert_eq!(c.specificity(), 0.0);
}

#[test]
#[should_panic(expected = "undefined")]
fn agreement_rejects_empty_streams() {
    agreement(&[], &[]);
}

// ------------------------------------------------------- abstaining quorum

#[test]
fn all_abstain_quorum_has_zero_coverage_and_votes_benign() {
    // Every window abstained (e.g. intensity-1.0 dropping faults): coverage
    // collapses to 0 so the verdict policy can refuse it, and the majority
    // vote over zero voters must NOT default to "malware".
    let q = QuorumVerdict::from_votes(&[None, None, None]);
    assert_eq!((q.flagged, q.voted, q.abstained), (0, 0, 3));
    assert_eq!(q.coverage(), 0.0);
    assert_eq!(q.flag_rate(), 0.0);
    assert!(!q.is_malware());
}

#[test]
fn empty_quorum_counts_as_fully_covered() {
    // Zero windows examined means nothing was degraded: coverage 1.0, and
    // the benign default again.
    let q = QuorumVerdict::from_votes(&[]);
    assert_eq!(q.total(), 0);
    assert_eq!(q.coverage(), 1.0);
    assert!(!q.is_malware());
}

#[test]
fn quorum_majority_ignores_abstentions() {
    // 2 flagged of 3 voters is a majority even with 5 abstentions diluting
    // the raw stream — abstentions affect coverage, never the vote.
    let votes = [
        Some(true),
        None,
        Some(true),
        None,
        None,
        Some(false),
        None,
        None,
    ];
    let q = QuorumVerdict::from_votes(&votes);
    assert_eq!((q.flagged, q.voted, q.abstained), (2, 3, 5));
    assert!(q.is_malware());
    assert_eq!(q.coverage(), 3.0 / 8.0);
    // Collapsing to a plain program verdict keeps the voting-window view.
    assert_eq!(
        q.to_program_verdict(),
        ProgramVerdict {
            flagged: 2,
            total: 3
        }
    );
}

#[test]
fn quorum_exact_tie_flags_malware() {
    // 1-of-2 is the paper's conservative tie-break: a split vote flags.
    let q = QuorumVerdict::from_votes(&[Some(true), Some(false)]);
    assert!(q.is_malware());
}
