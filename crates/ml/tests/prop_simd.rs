//! Property-based proof of the SIMD-dispatch contract: whatever feature
//! flags this test compiles under, the dispatched kernels in
//! [`rhmd_ml::kernel`] are **bit-identical** to the scalar reference on
//! arbitrary inputs — including NaN/Inf/subnormal values, non-lane-multiple
//! dimensionalities, and empty operands — and every classifier family's
//! batch scoring stays bit-identical to per-row scoring on top of them.
//! CI runs this suite twice, with `--features simd` and without; the bodies
//! are identical because the contract is: the feature flag may only change
//! throughput, never a single bit of output.

use proptest::prelude::*;
use rhmd_ml::kernel;
use rhmd_ml::matrix::FeatureMatrix;
use rhmd_ml::model::{Classifier, Dataset};
use rhmd_ml::quant::{QuantBits, QuantConfig, QuantizedLinear, QuantizedMlp};
use rhmd_ml::trainer::{train, Algorithm, TrainerConfig};

/// Finite-or-adversarial f64: mostly ordinary magnitudes, with NaN, the
/// infinities, huge counters, and subnormals mixed in — the value classes
/// the fused kernel's finite-guard and clamp have to route exactly like
/// [`kernel::scalar::standardize_one`].
fn any_value() -> impl Strategy<Value = f64> {
    // The vendored proptest has no `prop_oneof!`; pair an ordinary draw
    // with a selector and map indices 8..=15 onto the adversarial constants
    // (a 50/50 ordinary/adversarial mix).
    (0u8..=15, -1e4f64..1e4).prop_map(|(sel, v)| match sel {
        8 => f64::NAN,
        9 => f64::INFINITY,
        10 => f64::NEG_INFINITY,
        11 => 1e13,
        12 => -1e13,
        13 => 1e-310,
        14 => 0.0,
        15 => -0.0,
        _ => v,
    })
}

/// Finite-but-nasty f64 for the raw `dot` contract: huge counters,
/// subnormals, signed zeros. Non-finite values are excluded *by contract*:
/// raw `dot` only ever sees standardizer/dequantizer output in production
/// (both guarantee finiteness), and `-inf + inf` manufactures a fresh NaN
/// whose payload bits are an ISA detail of operand order that no summation
/// discipline can pin down.
fn finite_value() -> impl Strategy<Value = f64> {
    (0u8..=15, -1e4f64..1e4).prop_map(|(sel, v)| match sel {
        8 => 1e13,
        9 => -1e13,
        10 => 1e-310,
        11 => -1e-310,
        12 => 1e300,
        13 => -1e300,
        14 => 0.0,
        15 => -0.0,
        _ => v,
    })
}

/// Maximum dimensionality sampled below: the vendored proptest has no
/// `prop_flat_map` for dims-dependent shapes, so vectors are generated at
/// this fixed width and truncated to the sampled `dims`.
const MAX_DIMS: usize = 19;

/// Model parameters are always finite (fitters never emit NaN weights and
/// the standardizer floors its std), so `w`/`mean` stay ordinary and `std`
/// stays strictly positive.
fn kernel_operands(
    x_value: impl Strategy<Value = f64>,
) -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)> {
    // dims covers 0, 1, lane-sized, lane+tail, and larger non-multiples of 4.
    (
        0usize..=MAX_DIMS,
        prop::collection::vec(-10.0f64..10.0, MAX_DIMS),
        prop::collection::vec(x_value, MAX_DIMS),
        prop::collection::vec(-100.0f64..100.0, MAX_DIMS),
        prop::collection::vec(0.5f64..50.0, MAX_DIMS),
    )
        .prop_map(|(dims, mut w, mut x, mut mean, mut std)| {
            w.truncate(dims);
            x.truncate(dims);
            mean.truncate(dims);
            std.truncate(dims);
            (w, x, mean, std)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dispatched `dot` is bit-identical to the scalar four-accumulator
    /// reference for every length, including the empty product, over its
    /// full production domain (finite inputs — see [`finite_value`]).
    #[test]
    fn dot_dispatch_is_bit_identical((w, x, _, _) in kernel_operands(finite_value())) {
        let a = kernel::scalar::dot(&w, &x);
        let b = kernel::dot(&w, &x);
        prop_assert_eq!(a.to_bits(), b.to_bits(), "scalar {a} vs dispatched {b}");
    }

    /// The dispatched fused standardize+dot is bit-identical to the scalar
    /// reference — NaN/Inf guards, OOD clamping, and summation order all
    /// preserved lane-for-lane.
    #[test]
    fn fused_dispatch_is_bit_identical((w, x, mean, std) in kernel_operands(any_value())) {
        let a = kernel::scalar::dot_standardized(&w, &x, &mean, &std);
        let b = kernel::dot_standardized(&w, &x, &mean, &std);
        prop_assert_eq!(a.to_bits(), b.to_bits(), "scalar {a} vs dispatched {b}");
    }

    /// Adversarial rows through every exact classifier family: batch
    /// scoring equals per-row scoring to the bit under whichever kernels
    /// this build dispatches to, including empty and single-row matrices.
    #[test]
    fn families_batch_bit_identical_on_adversarial_rows(
        dims in 1usize..=9,
        raw_rows in prop::collection::vec(prop::collection::vec(any_value(), 9), 0..6),
    ) {
        let data = training_set(dims);
        let mut xs = FeatureMatrix::new(dims);
        let rows: Vec<Vec<f64>> = raw_rows
            .into_iter()
            .map(|mut r| {
                r.truncate(dims);
                r
            })
            .collect();
        for r in &rows {
            xs.push_row(r);
        }
        let trainer = TrainerConfig::default();
        for algorithm in Algorithm::ALL {
            let model = train(algorithm, &trainer, &data);
            let mut batch = vec![0.0; xs.len()];
            model.score_batch(&xs, &mut batch);
            for (i, (row, b)) in rows.iter().zip(&batch).enumerate() {
                let one = model.score(row);
                prop_assert_eq!(
                    one.to_bits(),
                    b.to_bits(),
                    "{} row {i}: per-row {one} vs batch {b}",
                    algorithm.name()
                );
            }
        }
    }

    /// The quantized families hold the same batch-equals-per-row bit
    /// contract at every width and rounding mode — stochastic rounding is a
    /// pure function of (seed, row, feature), so batching cannot move it.
    #[test]
    fn quantized_batch_bit_identical(
        dims in 1usize..=6,
        seed in any::<u64>(),
        raw_rows in prop::collection::vec(prop::collection::vec(any_value(), 6), 1..5),
    ) {
        let data = training_set(dims);
        let mut xs = FeatureMatrix::new(dims);
        let rows: Vec<Vec<f64>> = raw_rows
            .into_iter()
            .map(|mut r| {
                r.truncate(dims);
                r
            })
            .collect();
        for r in &rows {
            xs.push_row(r);
        }
        for config in [
            QuantConfig::nearest(QuantBits::Int8),
            QuantConfig::nearest(QuantBits::Int16),
            QuantConfig::stochastic(QuantBits::Int4, seed),
            QuantConfig::stochastic(QuantBits::Int16, seed),
        ] {
            let trainer = TrainerConfig {
                quant: Some(config),
                ..TrainerConfig::default()
            };
            for algorithm in [Algorithm::Lr, Algorithm::Svm, Algorithm::Nn] {
                let model = train(algorithm, &trainer, &data);
                let mut batch = vec![0.0; xs.len()];
                model.score_batch(&xs, &mut batch);
                for (i, (row, b)) in rows.iter().zip(&batch).enumerate() {
                    let one = model.score(row);
                    prop_assert_eq!(
                        one.to_bits(),
                        b.to_bits(),
                        "{} {}/{} row {i}: per-row {one} vs batch {b}",
                        algorithm.name(),
                        config.bits.name(),
                        config.rounding.name()
                    );
                }
            }
        }
    }

    /// Quantized scores stay inside the analytic error envelope of their
    /// exact counterparts on in-range *and* out-of-distribution rows, for
    /// every width and both rounding modes.
    #[test]
    fn quantized_error_stays_in_envelope(
        dims in 1usize..=6,
        seed in any::<u64>(),
        raw_rows in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 6), 1..5),
    ) {
        let data = training_set(dims);
        let rows: Vec<Vec<f64>> = raw_rows
            .into_iter()
            .map(|mut r| {
                r.truncate(dims);
                r
            })
            .collect();
        let exact_lr = train(Algorithm::Lr, &TrainerConfig::default(), &data);
        let exact_svm = train(Algorithm::Svm, &TrainerConfig::default(), &data);
        let exact_nn = train(Algorithm::Nn, &TrainerConfig::default(), &data);
        for config in [
            QuantConfig::nearest(QuantBits::Int4),
            QuantConfig::nearest(QuantBits::Int16),
            QuantConfig::stochastic(QuantBits::Int8, seed),
        ] {
            let lr = exact_lr
                .as_any()
                .downcast_ref::<rhmd_ml::linear::LogisticRegression>()
                .expect("exact LR");
            let svm = exact_svm
                .as_any()
                .downcast_ref::<rhmd_ml::svm::LinearSvm>()
                .expect("exact SVM");
            let nn = exact_nn
                .as_any()
                .downcast_ref::<rhmd_ml::mlp::Mlp>()
                .expect("exact NN");
            let qlr = QuantizedLinear::from_lr(lr, config, &data);
            let qsvm = QuantizedLinear::from_svm(svm, config, &data);
            let qnn = QuantizedMlp::from_mlp(nn, config, &data);
            for (i, row) in rows.iter().enumerate() {
                let cases: [(&str, f64, f64, f64); 3] = [
                    ("LR", exact_lr.score(row), qlr.score(row), qlr.score_error_bound(row)),
                    ("SVM", exact_svm.score(row), qsvm.score(row), qsvm.score_error_bound(row)),
                    ("NN", exact_nn.score(row), qnn.score(row), qnn.score_error_bound(row)),
                ];
                for (family, exact, quant, bound) in cases {
                    prop_assert!(
                        (exact - quant).abs() <= bound + 1e-9,
                        "{family} {}/{} row {i}: |{exact} - {quant}| > {bound}",
                        config.bits.name(),
                        config.rounding.name()
                    );
                }
            }
        }
    }
}

/// A small fixed-shape training set with both classes and per-dimension
/// signal, so every family (including the RF/DT splitters) fits something.
fn training_set(dims: usize) -> Dataset {
    let mut flat = Vec::with_capacity(24 * dims);
    let mut labels = Vec::with_capacity(24);
    for i in 0..24 {
        let label = i % 2 == 0;
        let base = if label { 1.0 } else { -1.0 };
        flat.extend((0..dims).map(|j| base * (1.0 + j as f64) + f64::from(i) * 0.03));
        labels.push(label);
    }
    Dataset::from_flat(dims, flat, labels)
}
