//! Property-based proof of the batch-scoring contract: for every model
//! family, [`Classifier::score_batch`] over a flat [`FeatureMatrix`] is
//! **bit-identical** to calling [`Classifier::score`] row by row — the
//! invariant that lets the whole pipeline switch to batched kernels without
//! moving a single golden number.

use proptest::prelude::*;
use rhmd_ml::matrix::FeatureMatrix;
use rhmd_ml::model::Dataset;
use rhmd_ml::trainer::{train, Algorithm, TrainerConfig};

/// A random training set (both classes present) plus extra query rows of
/// the same dimensionality, covering degenerate shapes: one dim, no query
/// rows, values far outside the training range. Rows are sampled at a
/// fixed maximum width and truncated to the sampled `dims` (the vendored
/// proptest has no `prop_flat_map` for dims-dependent shapes).
fn dataset_and_queries() -> impl Strategy<Value = (Dataset, Vec<Vec<f64>>)> {
    const MAX_DIMS: usize = 6;
    (
        1usize..=MAX_DIMS,
        prop::collection::vec(prop::collection::vec(-1e3f64..1e3, MAX_DIMS), 4..24),
        prop::collection::vec(prop::collection::vec(-1e6f64..1e6, MAX_DIMS), 0..16),
    )
        .prop_map(|(dims, mut rows, mut queries)| {
            for r in rows.iter_mut().chain(queries.iter_mut()) {
                r.truncate(dims);
            }
            let n = rows.len();
            // Alternate labels so every trainer sees both classes.
            let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
            (Dataset::from_flat(dims, rows.concat(), labels), queries)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch and per-row scoring agree to the last bit for every family,
    /// on training rows and on out-of-distribution query rows alike.
    #[test]
    fn score_batch_is_bit_identical_to_per_row((data, queries) in dataset_and_queries()) {
        let mut xs = FeatureMatrix::new(data.dims());
        xs.reserve_rows(queries.len());
        for q in &queries {
            xs.push_row(q);
        }
        let trainer = TrainerConfig::default();
        for algorithm in Algorithm::ALL {
            let model = train(algorithm, &trainer, &data);

            let mut batch = vec![0.0; xs.len()];
            model.score_batch(&xs, &mut batch);
            for (i, (q, b)) in queries.iter().zip(&batch).enumerate() {
                let one = model.score(q);
                prop_assert_eq!(
                    one.to_bits(),
                    b.to_bits(),
                    "{} query row {i}: per-row {one} vs batch {b}",
                    algorithm.name()
                );
            }

            // The training matrix exercises the dims-aligned fast path too.
            let mut on_train = vec![0.0; data.len()];
            model.score_batch(data.matrix(), &mut on_train);
            for (i, (row, b)) in data.rows().iter().zip(&on_train).enumerate() {
                let one = model.score(row);
                prop_assert_eq!(
                    one.to_bits(),
                    b.to_bits(),
                    "{} train row {i}: per-row {one} vs batch {b}",
                    algorithm.name()
                );
            }
        }
    }

    /// Scoring the same matrix twice is deterministic: the batch path holds
    /// no hidden state (the MLP's scratch buffer resets per row).
    #[test]
    fn score_batch_is_stateless((data, queries) in dataset_and_queries()) {
        prop_assume!(!queries.is_empty());
        let mut xs = FeatureMatrix::new(data.dims());
        for q in &queries {
            xs.push_row(q);
        }
        let trainer = TrainerConfig::default();
        for algorithm in Algorithm::ALL {
            let model = train(algorithm, &trainer, &data);
            let mut a = vec![0.0; xs.len()];
            let mut b = vec![0.0; xs.len()];
            model.score_batch(&xs, &mut a);
            model.score_batch(&xs, &mut b);
            let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(a_bits, b_bits, "{} rescoring drifted", algorithm.name());
        }
    }
}

/// `predict_all`/`score_all` ride on the batch path; they must match the
/// per-row trait methods exactly.
#[test]
fn score_all_and_predict_all_match_per_row() {
    let rows: Vec<Vec<f64>> = (0..30)
        .map(|i| vec![f64::from(i) * 0.1, f64::from(i % 7) - 3.0, f64::from(i % 3)])
        .collect();
    let labels: Vec<bool> = (0..30).map(|i| i % 2 == 0).collect();
    let data = Dataset::from_flat(3, rows.concat(), labels);
    let trainer = TrainerConfig::default();
    for algorithm in Algorithm::ALL {
        let model = train(algorithm, &trainer, &data);
        let scores = rhmd_ml::model::score_all(model.as_ref(), &data);
        let predictions = rhmd_ml::model::predict_all(model.as_ref(), &data);
        for ((row, _), (s, p)) in data.iter().zip(scores.iter().zip(&predictions)) {
            assert_eq!(model.score(row).to_bits(), s.to_bits(), "{algorithm}");
            assert_eq!(model.predict(row), *p, "{algorithm}");
        }
    }
}
