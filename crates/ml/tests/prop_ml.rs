//! Property-based tests of the ML stack's invariants.

use proptest::prelude::*;
use rhmd_ml::metrics::{agreement, auc, best_accuracy_threshold, roc_curve, Confusion};
use rhmd_ml::model::Dataset;
use rhmd_ml::scale::Standardizer;
use rhmd_ml::split::stratified_split;

fn scores_and_labels() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    prop::collection::vec((-1e3f64..1e3, any::<bool>()), 2..200)
        .prop_map(|v| v.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AUC is always a probability.
    #[test]
    fn auc_in_unit_interval((scores, labels) in scores_and_labels()) {
        let a = auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&a), "auc {a}");
    }

    /// AUC is invariant under strictly monotone transforms of the scores.
    #[test]
    fn auc_is_rank_statistic((scores, labels) in scores_and_labels()) {
        let transformed: Vec<f64> = scores.iter().map(|s| (s / 250.0).tanh() * 3.0 + 7.0).collect();
        let a = auc(&scores, &labels);
        let b = auc(&transformed, &labels);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Negating scores flips the AUC around 1/2 (when both classes exist).
    #[test]
    fn auc_negation_symmetry((scores, labels) in scores_and_labels()) {
        let pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(pos > 0 && pos < labels.len());
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        let a = auc(&scores, &labels);
        let b = auc(&negated, &labels);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    /// The ROC curve is monotone and spans (0,0) → (1,1).
    #[test]
    fn roc_is_monotone((scores, labels) in scores_and_labels()) {
        let pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(pos > 0 && pos < labels.len());
        let roc = roc_curve(&scores, &labels);
        prop_assert_eq!((roc[0].fpr, roc[0].tpr), (0.0, 0.0));
        let last = roc.last().unwrap();
        prop_assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for pair in roc.windows(2) {
            prop_assert!(pair[1].fpr >= pair[0].fpr);
            prop_assert!(pair[1].tpr >= pair[0].tpr);
        }
    }

    /// The best-accuracy threshold is at least as good as always answering
    /// with the majority class.
    #[test]
    fn best_threshold_beats_majority((scores, labels) in scores_and_labels()) {
        let (_, acc) = best_accuracy_threshold(&scores, &labels);
        let pos = labels.iter().filter(|&&l| l).count();
        let majority = pos.max(labels.len() - pos) as f64 / labels.len() as f64;
        prop_assert!(acc + 1e-9 >= majority, "acc {acc} < majority {majority}");
    }

    /// Confusion counts partition the samples, and derived rates are
    /// consistent.
    #[test]
    fn confusion_is_a_partition(
        (preds, labels) in prop::collection::vec((any::<bool>(), any::<bool>()), 1..100)
            .prop_map(|v| v.into_iter().unzip::<bool, bool, Vec<bool>, Vec<bool>>())
    ) {
        let c = Confusion::from_predictions(&preds, &labels);
        prop_assert_eq!(c.total() as usize, preds.len());
        let acc = c.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!((c.fpr() + c.specificity() - 1.0).abs() < 1e-12);
    }

    /// Self-agreement is perfect; agreement is symmetric.
    #[test]
    fn agreement_properties(a in prop::collection::vec(any::<bool>(), 1..100), flips in any::<u64>()) {
        prop_assert_eq!(agreement(&a, &a), 1.0);
        let b: Vec<bool> = a.iter().enumerate().map(|(i, &x)| x ^ ((flips >> (i % 64)) & 1 == 1)).collect();
        prop_assert!((agreement(&a, &b) - agreement(&b, &a)).abs() < 1e-12);
    }

    /// Stratified splitting partitions the index space exactly.
    #[test]
    fn split_is_a_partition(strata in prop::collection::vec(0u32..5, 3..200), seed in any::<u64>()) {
        let groups = stratified_split(&strata, &[0.6, 0.2, 0.2], seed);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..strata.len()).collect::<Vec<_>>());
    }

    /// Standardization then inspection: transformed training data has ~zero
    /// mean in every dimension.
    #[test]
    fn standardizer_centers(rows in prop::collection::vec(
        prop::collection::vec(-1e4f64..1e4, 3), 2..50)) {
        let n = rows.len();
        let data = Dataset::from_flat(3, rows.concat(), vec![false; n]);
        let s = Standardizer::fit(&data);
        let t = s.transform_dataset(&data);
        for d in 0..3 {
            let mean: f64 = t.rows().iter().map(|r| r[d]).sum::<f64>() / n as f64;
            prop_assert!(mean.abs() < 1e-6, "dim {d} mean {mean}");
        }
    }
}
