//! Evaluation metrics: confusion counts, ROC / AUC, best-accuracy operating
//! points, and inter-detector agreement.

use serde::{Deserialize, Serialize};

/// Binary confusion counts (positive = malware).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Malware classified as malware.
    pub tp: u64,
    /// Benign classified as malware.
    pub fp: u64,
    /// Benign classified as benign.
    pub tn: u64,
    /// Malware classified as benign.
    pub fn_: u64,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(predictions: &[bool], labels: &[bool]) -> Confusion {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&p, &l) in predictions.iter().zip(labels) {
            match (p, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct decisions.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// True-positive rate (malware detected), a.k.a. recall.
    pub fn sensitivity(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// True-negative rate (benign passed).
    pub fn specificity(&self) -> f64 {
        if self.tn + self.fp == 0 {
            0.0
        } else {
            self.tn as f64 / (self.tn + self.fp) as f64
        }
    }

    /// False-positive rate.
    pub fn fpr(&self) -> f64 {
        1.0 - self.specificity()
    }

    /// Precision: flagged samples that really were malware.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// F1 score: harmonic mean of precision and sensitivity.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.sensitivity();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Balanced accuracy: mean of sensitivity and specificity, robust to
    /// class imbalance.
    pub fn balanced_accuracy(&self) -> f64 {
        (self.sensitivity() + self.specificity()) / 2.0
    }

    /// Matthews correlation coefficient in `[-1, 1]` (0 for degenerate
    /// denominators).
    pub fn mcc(&self) -> f64 {
        let (tp, fp, tn, fn_) = (
            self.tp as f64,
            self.fp as f64,
            self.tn as f64,
            self.fn_ as f64,
        );
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denom
        }
    }
}

/// One ROC operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False-positive rate at the threshold.
    pub fpr: f64,
    /// True-positive rate at the threshold.
    pub tpr: f64,
}

/// Computes the ROC curve from scores and labels, sorted by descending
/// threshold (conservative → permissive).
///
/// # Panics
///
/// Panics if lengths differ or any score is NaN.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    assert!(scores.iter().all(|s| !s.is_nan()), "scores must not be NaN");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let positives = labels.iter().filter(|&&l| l).count() as f64;
    let negatives = labels.len() as f64 - positives;
    let mut points = vec![RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    }];
    let (mut tp, mut fp) = (0u64, 0u64);
    let mut i = 0;
    while i < order.len() {
        // Advance over ties as a group so the curve is well-defined.
        let t = scores[order[i]];
        while i < order.len() && scores[order[i]] == t {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: t,
            fpr: if negatives > 0.0 { fp as f64 / negatives } else { 0.0 },
            tpr: if positives > 0.0 { tp as f64 / positives } else { 0.0 },
        });
    }
    points
}

/// Area under the ROC curve via trapezoidal integration.
///
/// Returns 0.5 for degenerate inputs (single-class labels).
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    let positives = labels.iter().filter(|&&l| l).count();
    if positives == 0 || positives == labels.len() {
        return 0.5;
    }
    let roc = roc_curve(scores, labels);
    let mut area = 0.0;
    for pair in roc.windows(2) {
        area += (pair[1].fpr - pair[0].fpr) * (pair[1].tpr + pair[0].tpr) / 2.0;
    }
    area
}

/// Finds the threshold maximizing accuracy — the paper's reported operating
/// point ("the point on the ROC which maximizes the accuracy").
///
/// Returns `(threshold, accuracy)`. For empty input returns `(0.0, 0.0)`.
pub fn best_accuracy_threshold(scores: &[f64], labels: &[bool]) -> (f64, f64) {
    if scores.is_empty() {
        return (0.0, 0.0);
    }
    let positives = labels.iter().filter(|&&l| l).count() as f64;
    let negatives = labels.len() as f64 - positives;
    let n = labels.len() as f64;
    let mut best = (f64::INFINITY, negatives / n); // predict all benign
    for p in roc_curve(scores, labels) {
        if p.threshold.is_infinite() {
            continue;
        }
        let acc = (p.tpr * positives + (1.0 - p.fpr) * negatives) / n;
        if acc > best.1 {
            best = (p.threshold, acc);
        }
    }
    best
}

/// Fraction of identical decisions between two prediction vectors — the
/// attacker's reverse-engineering success metric (paper Fig 1b).
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn agreement(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "agreement over no samples is undefined");
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let c = Confusion::from_predictions(
            &[true, true, false, false],
            &[true, false, true, false],
        );
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (1, 1, 1, 1));
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.sensitivity(), 0.5);
        assert_eq!(c.specificity(), 0.5);
        assert_eq!(c.fpr(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.f1(), 0.5);
        assert_eq!(c.balanced_accuracy(), 0.5);
        assert_eq!(c.mcc(), 0.0);
    }

    #[test]
    fn perfect_predictions_max_out_derived_metrics() {
        let c = Confusion::from_predictions(&[true, false, true], &[true, false, true]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.balanced_accuracy(), 1.0);
        assert_eq!(c.mcc(), 1.0);
    }

    #[test]
    fn inverted_predictions_give_negative_mcc() {
        let c = Confusion::from_predictions(&[false, true], &[true, false]);
        assert_eq!(c.mcc(), -1.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let all_benign = Confusion::from_predictions(&[false, false], &[false, false]);
        assert_eq!(all_benign.precision(), 0.0);
        assert_eq!(all_benign.f1(), 0.0);
        assert_eq!(all_benign.mcc(), 0.0);
    }

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_separation_gives_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(auc(&scores, &labels) < 1e-12);
    }

    #[test]
    fn random_scores_give_auc_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_is_degenerate() {
        assert_eq!(auc(&[0.1, 0.9], &[true, true]), 0.5);
    }

    #[test]
    fn roc_is_monotonic() {
        let scores = [0.9, 0.1, 0.7, 0.3, 0.5];
        let labels = [true, false, false, true, true];
        let roc = roc_curve(&scores, &labels);
        for pair in roc.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
        }
        let last = roc.last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn best_threshold_separates_cleanly() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let (t, acc) = best_accuracy_threshold(&scores, &labels);
        assert_eq!(acc, 1.0);
        assert!(t <= 0.8 && t > 0.2);
    }

    #[test]
    fn best_threshold_handles_all_benign_optimum() {
        // Scores uninformative and mostly benign: predicting all-benign wins.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [false, false, false, true];
        let (_, acc) = best_accuracy_threshold(&scores, &labels);
        assert!(acc >= 0.75);
    }

    #[test]
    fn agreement_counts_matches() {
        assert_eq!(agreement(&[true, false], &[true, true]), 0.5);
        assert_eq!(agreement(&[true], &[true]), 1.0);
    }
}
