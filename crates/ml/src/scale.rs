//! Feature standardization (zero mean, unit variance), fitted on training
//! data and baked into every model so callers always work in raw feature
//! space.

use crate::kernel::standardize_one;
use crate::matrix::FeatureMatrix;
use crate::model::Dataset;
use serde::{Deserialize, Serialize};

/// Per-dimension affine standardizer: `z = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    /// Standard deviation with a floor so constant dimensions pass through
    /// as zeros instead of blowing up.
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits on a dataset's rows.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset) -> Standardizer {
        assert!(!data.is_empty(), "cannot fit a standardizer on no data");
        let dims = data.dims();
        let n = data.len() as f64;
        let mut mean = vec![0.0; dims];
        for row in data.rows() {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dims];
        for row in data.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|s| (s / n).sqrt().max(1e-9))
            .collect();
        Standardizer { mean, std }
    }

    /// The identity transform for `dims` dimensions.
    pub fn identity(dims: usize) -> Standardizer {
        Standardizer {
            mean: vec![0.0; dims],
            std: vec![1.0; dims],
        }
    }

    /// Dimensionality handled by this standardizer.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Fitted per-dimension means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Fitted per-dimension standard deviations (floored at 1e-9).
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Bound on standardized magnitudes: out-of-distribution inputs (e.g.
    /// from corrupted counters) clamp here instead of propagating huge or
    /// non-finite values into model scores. In-distribution data sits within
    /// a few units of zero, so the clamp never alters healthy inputs.
    pub const CLAMP: f64 = 1e12;

    /// Standardizes one row into `out`.
    ///
    /// Non-finite inputs map to zero (the feature's training mean) and the
    /// result is clamped to ±[`Standardizer::CLAMP`], so models downstream
    /// always score finite vectors.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    #[inline]
    pub fn transform_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.mean.len(), "dimensionality mismatch");
        out.clear();
        out.extend(
            x.iter()
                .zip(&self.mean)
                .zip(&self.std)
                .map(|((&v, &m), &s)| standardize_one(v, m, s)),
        );
    }

    /// Standardizes one row, allocating.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(x.len());
        self.transform_into(x, &mut out);
        out
    }

    /// Standardizes every row of a matrix in place — one flat sweep, no
    /// per-row allocation.
    ///
    /// # Panics
    ///
    /// Panics if the matrix's row width differs from this standardizer's.
    pub fn transform_matrix(&self, m: &mut FeatureMatrix) {
        assert_eq!(m.dims(), self.dims(), "dimensionality mismatch");
        let dims = self.dims();
        if dims == 0 {
            return;
        }
        for row in m.as_mut_slice().chunks_exact_mut(dims) {
            for ((v, &mn), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = standardize_one(*v, mn, s);
            }
        }
    }

    /// Standardizes a whole dataset (labels preserved) via
    /// [`Standardizer::transform_matrix`].
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut m = data.matrix().clone();
        self.transform_matrix(&mut m);
        Dataset::from_matrix(m, data.labels().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_flat(
            2,
            vec![1.0, 10.0, 3.0, 10.0, 5.0, 10.0],
            vec![true, false, true],
        )
    }

    #[test]
    fn fit_computes_moments() {
        let s = Standardizer::fit(&toy());
        assert_eq!(s.mean(), &[3.0, 10.0]);
        assert!((s.std()[0] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn transformed_data_has_zero_mean_unit_var() {
        let data = toy();
        let s = Standardizer::fit(&data);
        let t = s.transform_dataset(&data);
        let mean0: f64 = t.rows().iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        let var0: f64 = t.rows().iter().map(|r| r[0] * r[0]).sum::<f64>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let s = Standardizer::fit(&toy());
        let t = s.transform(&[3.0, 10.0]);
        assert_eq!(t, vec![0.0, 0.0]);
    }

    #[test]
    fn identity_passes_through() {
        let s = Standardizer::identity(2);
        assert_eq!(s.transform(&[4.0, -1.0]), vec![4.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn fit_requires_rows() {
        let _ = Standardizer::fit(&Dataset::new(2));
    }

    #[test]
    fn non_finite_inputs_map_to_training_mean() {
        let s = Standardizer::fit(&toy());
        let t = s.transform(&[f64::NAN, f64::INFINITY]);
        assert_eq!(t, vec![0.0, 0.0]);
    }

    #[test]
    fn transform_matrix_matches_per_row_transform() {
        let data = toy();
        let s = Standardizer::fit(&data);
        let mut m = data.matrix().clone();
        s.transform_matrix(&mut m);
        for (flat_row, row) in m.iter().zip(data.rows()) {
            assert_eq!(flat_row, s.transform(row).as_slice());
        }
    }

    #[test]
    fn out_of_distribution_inputs_clamp() {
        let s = Standardizer::fit(&toy());
        let t = s.transform(&[1e300, -1e300]);
        assert!(t.iter().all(|v| v.is_finite()));
        assert!(t.iter().all(|v| v.abs() <= Standardizer::CLAMP));
    }

    /// The in-place matrix sweep applies the same non-finite guard and OOD
    /// clamp as the per-row path, bit for bit — including on the
    /// zero-variance dimension, where the floored std turns any excursion
    /// into a huge-but-clamped z-score.
    #[test]
    fn transform_matrix_guards_nonfinite_and_clamps_ood() {
        let data = toy();
        let s = Standardizer::fit(&data);
        let rows = [
            vec![f64::NAN, f64::INFINITY],
            vec![f64::NEG_INFINITY, f64::NAN],
            vec![1e300, -1e300],
            vec![-1e300, 10.0],
            vec![1e-310, -0.0],
            vec![3.0, 10.0],
        ];
        let mut m = FeatureMatrix::new(2);
        for r in &rows {
            m.push_row(r);
        }
        s.transform_matrix(&mut m);
        for (flat, raw) in m.iter().zip(&rows) {
            let per_row = s.transform(raw);
            for (a, b) in flat.iter().zip(&per_row) {
                assert_eq!(a.to_bits(), b.to_bits(), "matrix {a} vs per-row {b}");
            }
            assert!(flat.iter().all(|v| v.is_finite()));
            assert!(flat.iter().all(|v| v.abs() <= Standardizer::CLAMP));
        }
        // Non-finite inputs land on the training mean (z = 0) exactly.
        assert_eq!(m.row(0), &[0.0, 0.0]);
        // Zero-variance dim 1: any departure from the constant divides by
        // the 1e-9 floor and pins to the clamp rather than overflowing.
        assert_eq!(m.row(2)[1].abs(), Standardizer::CLAMP);
    }

    /// Degenerate shapes sweep cleanly: a matrix with no rows and a
    /// zero-dimensional standardizer are both no-ops, not panics.
    #[test]
    fn transform_matrix_handles_empty_shapes() {
        let s = Standardizer::fit(&toy());
        let mut empty = FeatureMatrix::new(2);
        s.transform_matrix(&mut empty);
        assert_eq!(empty.len(), 0);

        let zero_dims = Standardizer::identity(0);
        let mut m = FeatureMatrix::new(0);
        zero_dims.transform_matrix(&mut m);
        assert_eq!(m.dims(), 0);
    }
}
