//! CART decision tree — one of the attacker's surrogate model families
//! (paper §4 uses DT to reverse-engineer victims).

use crate::model::{Classifier, Dataset};
use serde::{Deserialize, Serialize};

/// Training hyperparameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: u32,
    /// Minimum samples required to split a node.
    pub min_split: usize,
    /// Minimum samples in each child of a split.
    pub min_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 10,
            min_split: 8,
            min_leaf: 3,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Fraction of malware samples at the leaf (the score).
        malware_frac: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained CART classifier (Gini impurity, axis-aligned splits).
///
/// # Examples
///
/// ```
/// use rhmd_ml::tree::{DecisionTree, TreeConfig};
/// use rhmd_ml::model::{Classifier, Dataset};
///
/// let data = Dataset::from_rows(
///     vec![vec![0.1], vec![0.2], vec![0.8], vec![0.9]],
///     vec![false, false, true, true],
/// );
/// let tree = DecisionTree::fit(&TreeConfig::default(), &data);
/// assert!(tree.predict(&[0.85]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    depth: u32,
    leaves: u32,
}

impl DecisionTree {
    /// Grows a tree on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(config: &TreeConfig, data: &Dataset) -> DecisionTree {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut stats = (0u32, 0u32); // (max depth seen, leaves)
        let root = grow(config, data, &indices, 0, &mut stats);
        DecisionTree {
            root,
            depth: stats.0,
            leaves: stats.1,
        }
    }

    /// Depth of the grown tree.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of leaves.
    pub fn leaves(&self) -> u32 {
        self.leaves
    }

    /// Flattens the pointer tree into structure-of-arrays form for
    /// branchless batch traversal.
    pub(crate) fn flatten(&self) -> FlatTree {
        let mut flat = FlatTree {
            nodes: Vec::new(),
            value: Vec::new(),
            depth: self.depth,
        };
        flat.push_subtree(&self.root);
        flat
    }
}

/// One flattened tree node: the three fields a descent step reads, packed
/// into a single 24-byte record so each step touches one cache line. Leaves
/// point both children back at themselves.
#[derive(Debug, Clone, PartialEq)]
struct FlatNode {
    threshold: f64,
    feature: u32,
    /// `[left, right]`, self-looping at leaves.
    kids: [u32; 2],
}

/// Flat tree for batch traversal: nodes live in one contiguous preorder
/// array instead of a web of `Box`es, split off from a parallel `value`
/// array holding the leaf payloads. The layout is deliberate: descent is
/// *random* access, so the fields a step reads together (feature,
/// threshold, children) are interleaved in [`FlatNode`] — one line per
/// step — while the leaf value, read once per walk, stays out of the hot
/// records. (A fully column-split layout was measured first: it spreads
/// every step across three arrays and ran ~2x slower on trace-window
/// batches.) Batch scoring walks rows level-synchronously
/// ([`FlatTree::walk_rows`], branchless) and lands on the pointer walk's
/// leaf.
///
/// `walk_rows`'s child predicate is `!(x <= t)`, not `x > t`: the two
/// differ on NaN inputs, and only the former routes NaN right exactly like
/// the pointer walk's `if x <= t { left } else { right }`. Leaf values are
/// returned untouched, so flat scores are bit-identical to
/// [`DecisionTree::score`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FlatTree {
    nodes: Vec<FlatNode>,
    /// Leaf malware fraction (internal nodes hold an unread 0.0).
    value: Vec<f64>,
    depth: u32,
}

impl FlatTree {
    /// Appends `node`'s subtree in preorder and returns its index.
    fn push_subtree(&mut self, node: &Node) -> u32 {
        let i = self.nodes.len() as u32;
        self.nodes.push(FlatNode {
            threshold: 0.0,
            feature: 0,
            kids: [i, i],
        });
        self.value.push(0.0);
        match node {
            Node::Leaf { malware_frac } => self.value[i as usize] = *malware_frac,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                self.nodes[i as usize].feature = *feature as u32;
                self.nodes[i as usize].threshold = *threshold;
                let l = self.push_subtree(left);
                let r = self.push_subtree(right);
                self.nodes[i as usize].kids = [l, r];
            }
        }
        i
    }

    /// Branchless single-row walk, bit-identical to the pointer walk.
    /// Production paths batch through [`FlatTree::walk_rows`]; this stays
    /// as the differential tests' per-row reference for the flat layout.
    #[cfg(test)]
    #[inline]
    // Same NaN-routes-right negation as `step` below.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub(crate) fn score(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        for _ in 0..self.depth {
            let n = &self.nodes[i];
            let go_right = usize::from(!(x[n.feature as usize] <= n.threshold));
            i = n.kids[go_right] as usize;
        }
        self.value[i]
    }

    /// One branchless descent step from node `i` for row `x`.
    ///
    /// The node array is indexed unchecked: `i` can only come from `kids`,
    /// whose entries [`FlatTree::push_subtree`] fills with in-bounds node
    /// indices. Row access stays checked — the caller controls `x`, and a
    /// short row must panic like the pointer walk.
    #[inline(always)]
    // The negated `<=` is load-bearing: NaN must route right, exactly like
    // the pointer walk's `else` arm, and the negation keeps the step a
    // branchless select instead of a two-arm compare.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn step(&self, i: u32, x: &[f64]) -> u32 {
        // SAFETY: see above — `i` is a valid node index by construction.
        let n = unsafe { self.nodes.get_unchecked(i as usize) };
        let go_right = usize::from(!(x[n.feature as usize] <= n.threshold));
        n.kids[go_right]
    }

    /// Leaf value at node `i`.
    #[inline(always)]
    pub(crate) fn leaf_value(&self, i: u32) -> f64 {
        self.value[i as usize]
    }

    /// Level-synchronous batch walk: every row descends one level per pass,
    /// leaving `idx[r]` at row `r`'s leaf. Walking rows in the *inner* loop
    /// keeps many independent descent chains in flight at once — a single
    /// row's walk is a serial chain of dependent loads, but adjacent rows'
    /// chains overlap in the out-of-order window, which is where the
    /// structure-of-arrays layout actually pays off.
    pub(crate) fn walk_rows(&self, xs: &crate::matrix::FeatureMatrix, idx: &mut [u32]) {
        debug_assert_eq!(xs.len(), idx.len());
        if self.depth == 0 {
            idx.iter_mut().for_each(|i| *i = 0);
            return;
        }
        // Rows at a leaf step onto themselves, so "did not move" is an
        // exact settled test. CART trees are unbalanced — mean leaf depth
        // sits well under `depth` — so rows walk in fixed blocks and each
        // block stops at its *local* deepest leaf instead of padding every
        // row to the deepest leaf of the whole tree. Blocks of 16 keep the
        // live node indices in registers/L1 while still giving the
        // out-of-order window 16 independent descent chains to overlap.
        const BLOCK: usize = 16;
        let mut base = 0usize;
        for chunk in idx.chunks_mut(BLOCK) {
            let n = chunk.len();
            let mut cur = [0u32; BLOCK];
            let mut rows: [&[f64]; BLOCK] = [&[]; BLOCK];
            for (k, slot) in rows[..n].iter_mut().enumerate() {
                *slot = xs.row(base + k);
            }
            for _ in 0..self.depth {
                let mut moved = 0u32;
                for (c, row) in cur[..n].iter_mut().zip(&rows[..n]) {
                    let next = self.step(*c, row);
                    moved |= next ^ *c;
                    *c = next;
                }
                if moved == 0 {
                    break;
                }
            }
            chunk.copy_from_slice(&cur[..n]);
            base += n;
        }
    }
}

fn gini(pos: f64, total: f64) -> f64 {
    if total == 0.0 {
        0.0
    } else {
        let p = pos / total;
        2.0 * p * (1.0 - p)
    }
}

fn grow(
    config: &TreeConfig,
    data: &Dataset,
    indices: &[usize],
    depth: u32,
    stats: &mut (u32, u32),
) -> Node {
    stats.0 = stats.0.max(depth);
    let total = indices.len() as f64;
    let pos = indices.iter().filter(|&&i| data.labels()[i]).count() as f64;
    let node_gini = gini(pos, total);
    let make_leaf = |stats: &mut (u32, u32)| {
        stats.1 += 1;
        Node::Leaf {
            malware_frac: if total > 0.0 { pos / total } else { 0.0 },
        }
    };
    if depth >= config.max_depth
        || indices.len() < config.min_split
        || node_gini == 0.0
    {
        return make_leaf(stats);
    }

    // Best axis-aligned split by Gini gain.
    let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
    let mut sorted = indices.to_vec();
    for feature in 0..data.dims() {
        sorted.sort_by(|&a, &b| data.row(a)[feature].total_cmp(&data.row(b)[feature]));
        let mut left_pos = 0.0;
        for (k, window) in sorted.windows(2).enumerate() {
            if data.labels()[window[0]] {
                left_pos += 1.0;
            }
            let left_n = (k + 1) as f64;
            let right_n = total - left_n;
            let lo = data.row(window[0])[feature];
            let hi = data.row(window[1])[feature];
            if lo == hi || (k + 1) < config.min_leaf || (right_n as usize) < config.min_leaf {
                continue;
            }
            let right_pos = pos - left_pos;
            let weighted =
                (left_n * gini(left_pos, left_n) + right_n * gini(right_pos, right_n)) / total;
            if best.is_none_or(|(bi, _, _)| weighted < bi) {
                best = Some((weighted, feature, (lo + hi) / 2.0));
            }
        }
    }

    match best {
        Some((impurity, feature, threshold)) if impurity < node_gini - 1e-12 => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| data.row(i)[feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(config, data, &left_idx, depth + 1, stats)),
                right: Box::new(grow(config, data, &right_idx, depth + 1, stats)),
            }
        }
        _ => make_leaf(stats),
    }
}

impl Classifier for DecisionTree {
    fn score(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { malware_frac } => return *malware_frac,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    fn score_batch(&self, xs: &crate::matrix::FeatureMatrix, out: &mut [f64]) {
        // Flatten once (one preorder pass, amortized across the batch),
        // then run the branchless level-synchronous walk. Each flat walk
        // lands on the same leaf as the pointer walk, so scores are
        // bit-identical to `score`.
        assert_eq!(xs.len(), out.len(), "output length must match row count");
        let flat = self.flatten();
        let mut idx = vec![0u32; xs.len()];
        flat.walk_rows(xs, &mut idx);
        for (slot, &i) in out.iter_mut().zip(&idx) {
            *slot = flat.leaf_value(i);
        }
    }

    fn threshold(&self) -> f64 {
        0.5
    }

    fn algorithm(&self) -> &'static str {
        "DT"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pure_data_yields_single_leaf() {
        let data = Dataset::from_flat(1, vec![1.0, 2.0], vec![true, true]);
        let tree = DecisionTree::fit(&TreeConfig::default(), &data);
        assert_eq!(tree.leaves(), 1);
        assert!(tree.predict(&[5.0]));
    }

    #[test]
    fn learns_threshold_split() {
        let data = Dataset::from_flat(
            1,
            (0..40).map(f64::from).collect(),
            (0..40).map(|i| i >= 20).collect(),
        );
        let tree = DecisionTree::fit(&TreeConfig::default(), &data);
        assert!(tree.predict(&[30.0]));
        assert!(!tree.predict(&[10.0]));
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn learns_xor() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut d = Dataset::new(2);
        for _ in 0..400 {
            let a = rng.gen::<bool>();
            let b = rng.gen::<bool>();
            d.push(
                vec![
                    f64::from(u8::from(a)) + (rng.gen::<f64>() - 0.5) * 0.2,
                    f64::from(u8::from(b)) + (rng.gen::<f64>() - 0.5) * 0.2,
                ],
                a != b,
            );
        }
        let tree = DecisionTree::fit(&TreeConfig::default(), &d);
        let acc = d
            .iter()
            .filter(|(row, label)| tree.predict(row) == *label)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut d = Dataset::new(3);
        for _ in 0..300 {
            d.push(
                vec![rng.gen(), rng.gen(), rng.gen()],
                rng.gen::<bool>(),
            );
        }
        let tree = DecisionTree::fit(
            &TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            &d,
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn flat_walk_matches_pointer_walk() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut d = Dataset::new(3);
        for _ in 0..300 {
            d.push(vec![rng.gen(), rng.gen(), rng.gen()], rng.gen::<bool>());
        }
        let tree = DecisionTree::fit(&TreeConfig::default(), &d);
        let flat = tree.flatten();
        for (row, _) in d.iter() {
            assert_eq!(flat.score(row).to_bits(), tree.score(row).to_bits());
        }
        // NaN routes right at every split in the pointer walk (`<=` is
        // false); the flat predicate must agree.
        for probe in [
            [f64::NAN, 0.5, 0.5],
            [0.5, f64::NAN, f64::NAN],
            [f64::NAN, f64::NAN, f64::NAN],
            [f64::INFINITY, f64::NEG_INFINITY, 0.5],
        ] {
            assert_eq!(flat.score(&probe).to_bits(), tree.score(&probe).to_bits());
        }
    }

    #[test]
    fn flat_walk_handles_single_leaf() {
        let d = Dataset::from_flat(1, vec![1.0, 2.0], vec![true, true]);
        let tree = DecisionTree::fit(&TreeConfig::default(), &d);
        assert_eq!(tree.flatten().score(&[5.0]), 1.0);
    }

    #[test]
    fn training_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(3);
        let flat: Vec<f64> = (0..200).map(|_| rng.gen()).collect();
        let labels: Vec<bool> = (0..100).map(|_| rng.gen()).collect();
        let d = Dataset::from_flat(2, flat, labels);
        let a = DecisionTree::fit(&TreeConfig::default(), &d);
        let b = DecisionTree::fit(&TreeConfig::default(), &d);
        assert_eq!(a, b);
    }
}
