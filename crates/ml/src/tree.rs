//! CART decision tree — one of the attacker's surrogate model families
//! (paper §4 uses DT to reverse-engineer victims).

use crate::model::{Classifier, Dataset};
use serde::{Deserialize, Serialize};

/// Training hyperparameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: u32,
    /// Minimum samples required to split a node.
    pub min_split: usize,
    /// Minimum samples in each child of a split.
    pub min_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 10,
            min_split: 8,
            min_leaf: 3,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Fraction of malware samples at the leaf (the score).
        malware_frac: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained CART classifier (Gini impurity, axis-aligned splits).
///
/// # Examples
///
/// ```
/// use rhmd_ml::tree::{DecisionTree, TreeConfig};
/// use rhmd_ml::model::{Classifier, Dataset};
///
/// let data = Dataset::from_rows(
///     vec![vec![0.1], vec![0.2], vec![0.8], vec![0.9]],
///     vec![false, false, true, true],
/// );
/// let tree = DecisionTree::fit(&TreeConfig::default(), &data);
/// assert!(tree.predict(&[0.85]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    depth: u32,
    leaves: u32,
}

impl DecisionTree {
    /// Grows a tree on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(config: &TreeConfig, data: &Dataset) -> DecisionTree {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut stats = (0u32, 0u32); // (max depth seen, leaves)
        let root = grow(config, data, &indices, 0, &mut stats);
        DecisionTree {
            root,
            depth: stats.0,
            leaves: stats.1,
        }
    }

    /// Depth of the grown tree.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of leaves.
    pub fn leaves(&self) -> u32 {
        self.leaves
    }
}

fn gini(pos: f64, total: f64) -> f64 {
    if total == 0.0 {
        0.0
    } else {
        let p = pos / total;
        2.0 * p * (1.0 - p)
    }
}

fn grow(
    config: &TreeConfig,
    data: &Dataset,
    indices: &[usize],
    depth: u32,
    stats: &mut (u32, u32),
) -> Node {
    stats.0 = stats.0.max(depth);
    let total = indices.len() as f64;
    let pos = indices.iter().filter(|&&i| data.labels()[i]).count() as f64;
    let node_gini = gini(pos, total);
    let make_leaf = |stats: &mut (u32, u32)| {
        stats.1 += 1;
        Node::Leaf {
            malware_frac: if total > 0.0 { pos / total } else { 0.0 },
        }
    };
    if depth >= config.max_depth
        || indices.len() < config.min_split
        || node_gini == 0.0
    {
        return make_leaf(stats);
    }

    // Best axis-aligned split by Gini gain.
    let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
    let mut sorted = indices.to_vec();
    for feature in 0..data.dims() {
        sorted.sort_by(|&a, &b| data.row(a)[feature].total_cmp(&data.row(b)[feature]));
        let mut left_pos = 0.0;
        for (k, window) in sorted.windows(2).enumerate() {
            if data.labels()[window[0]] {
                left_pos += 1.0;
            }
            let left_n = (k + 1) as f64;
            let right_n = total - left_n;
            let lo = data.row(window[0])[feature];
            let hi = data.row(window[1])[feature];
            if lo == hi || (k + 1) < config.min_leaf || (right_n as usize) < config.min_leaf {
                continue;
            }
            let right_pos = pos - left_pos;
            let weighted =
                (left_n * gini(left_pos, left_n) + right_n * gini(right_pos, right_n)) / total;
            if best.is_none_or(|(bi, _, _)| weighted < bi) {
                best = Some((weighted, feature, (lo + hi) / 2.0));
            }
        }
    }

    match best {
        Some((impurity, feature, threshold)) if impurity < node_gini - 1e-12 => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| data.row(i)[feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(grow(config, data, &left_idx, depth + 1, stats)),
                right: Box::new(grow(config, data, &right_idx, depth + 1, stats)),
            }
        }
        _ => make_leaf(stats),
    }
}

impl Classifier for DecisionTree {
    fn score(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { malware_frac } => return *malware_frac,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    fn threshold(&self) -> f64 {
        0.5
    }

    fn algorithm(&self) -> &'static str {
        "DT"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pure_data_yields_single_leaf() {
        let data = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![true, true]);
        let tree = DecisionTree::fit(&TreeConfig::default(), &data);
        assert_eq!(tree.leaves(), 1);
        assert!(tree.predict(&[5.0]));
    }

    #[test]
    fn learns_threshold_split() {
        let data = Dataset::from_rows(
            (0..40).map(|i| vec![f64::from(i)]).collect(),
            (0..40).map(|i| i >= 20).collect(),
        );
        let tree = DecisionTree::fit(&TreeConfig::default(), &data);
        assert!(tree.predict(&[30.0]));
        assert!(!tree.predict(&[10.0]));
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn learns_xor() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut d = Dataset::new(2);
        for _ in 0..400 {
            let a = rng.gen::<bool>();
            let b = rng.gen::<bool>();
            d.push(
                vec![
                    f64::from(u8::from(a)) + (rng.gen::<f64>() - 0.5) * 0.2,
                    f64::from(u8::from(b)) + (rng.gen::<f64>() - 0.5) * 0.2,
                ],
                a != b,
            );
        }
        let tree = DecisionTree::fit(&TreeConfig::default(), &d);
        let acc = d
            .iter()
            .filter(|(row, label)| tree.predict(row) == *label)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut d = Dataset::new(3);
        for _ in 0..300 {
            d.push(
                vec![rng.gen(), rng.gen(), rng.gen()],
                rng.gen::<bool>(),
            );
        }
        let tree = DecisionTree::fit(
            &TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            &d,
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn training_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![rng.gen(), rng.gen()]).collect();
        let labels: Vec<bool> = (0..100).map(|_| rng.gen()).collect();
        let d = Dataset::from_rows(rows, labels);
        let a = DecisionTree::fit(&TreeConfig::default(), &d);
        let b = DecisionTree::fit(&TreeConfig::default(), &d);
        assert_eq!(a, b);
    }
}
