//! Unsupervised anomaly detection — the Tang et al. style detector the
//! paper's related work discusses (§9.1): model *normal* program behaviour
//! only, and flag deviations from the baseline execution model.

use crate::metrics::best_accuracy_threshold;
use crate::model::{Classifier, Dataset};
use serde::{Deserialize, Serialize};

/// Training hyperparameters for [`GaussianAnomaly`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// Fraction of the benign training windows allowed to score above the
    /// operating threshold (the detector's design false-positive budget).
    pub fp_budget: f64,
    /// Variance floor, guarding constant dimensions.
    pub var_floor: f64,
}

impl Default for AnomalyConfig {
    fn default() -> AnomalyConfig {
        AnomalyConfig {
            fp_budget: 0.10,
            var_floor: 1e-9,
        }
    }
}

/// A diagonal-Gaussian one-class detector: scores are mean squared
/// standardized deviations from the benign profile, thresholded at the
/// benign quantile implied by the false-positive budget.
///
/// # Examples
///
/// ```
/// use rhmd_ml::anomaly::{AnomalyConfig, GaussianAnomaly};
/// use rhmd_ml::model::Classifier;
///
/// let benign: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i % 10) / 10.0]).collect();
/// let detector = GaussianAnomaly::fit(&AnomalyConfig::default(), &benign);
/// assert!(detector.predict(&[25.0])); // far outside the benign range
/// assert!(!detector.predict(&[0.5]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianAnomaly {
    mean: Vec<f64>,
    inv_var: Vec<f64>,
    threshold: f64,
}

impl GaussianAnomaly {
    /// Fits the benign profile on normal-program windows only.
    ///
    /// # Panics
    ///
    /// Panics if `benign_rows` is empty or ragged.
    pub fn fit(config: &AnomalyConfig, benign_rows: &[Vec<f64>]) -> GaussianAnomaly {
        assert!(!benign_rows.is_empty(), "need benign training windows");
        let dims = benign_rows[0].len();
        assert!(
            benign_rows.iter().all(|r| r.len() == dims),
            "rows must share dimensionality"
        );
        let n = benign_rows.len() as f64;
        let mut mean = vec![0.0; dims];
        for row in benign_rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dims];
        for row in benign_rows {
            for ((s, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let inv_var: Vec<f64> = var
            .into_iter()
            .map(|s| 1.0 / (s / n).max(config.var_floor))
            .collect();

        let mut model = GaussianAnomaly {
            mean,
            inv_var,
            threshold: 0.0,
        };
        // Threshold at the (1 - fp_budget) benign quantile.
        let mut scores: Vec<f64> = benign_rows.iter().map(|r| model.score(r)).collect();
        scores.sort_by(|a, b| a.total_cmp(b));
        let idx = (((1.0 - config.fp_budget) * scores.len() as f64) as usize)
            .min(scores.len() - 1);
        model.threshold = scores[idx];
        model
    }

    /// Re-thresholds the detector on labelled validation scores, matching
    /// the supervised detectors' accuracy-maximizing operating point.
    pub fn calibrate(&mut self, validation: &Dataset) {
        let mut scores = vec![0.0; validation.len()];
        self.score_batch(validation.matrix(), &mut scores);
        let (threshold, _) = best_accuracy_threshold(&scores, validation.labels());
        if threshold.is_finite() {
            self.threshold = threshold;
        }
    }
}

impl Classifier for GaussianAnomaly {
    fn score(&self, x: &[f64]) -> f64 {
        let d = self.mean.len() as f64;
        self.mean
            .iter()
            .zip(&self.inv_var)
            .zip(x)
            .map(|((m, iv), v)| (v - m) * (v - m) * iv)
            .sum::<f64>()
            / d
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn algorithm(&self) -> &'static str {
        "ANOM"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn benign_cluster(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| vec![rng.gen::<f64>(), 5.0 + rng.gen::<f64>()])
            .collect()
    }

    #[test]
    fn benign_scores_low_anomalies_high() {
        let benign = benign_cluster(500, 1);
        let d = GaussianAnomaly::fit(&AnomalyConfig::default(), &benign);
        assert!(d.score(&[0.5, 5.5]) < d.score(&[10.0, -3.0]));
        assert!(d.predict(&[10.0, -3.0]));
    }

    #[test]
    fn fp_budget_is_respected_on_training_data() {
        let benign = benign_cluster(1000, 2);
        let config = AnomalyConfig {
            fp_budget: 0.05,
            ..AnomalyConfig::default()
        };
        let d = GaussianAnomaly::fit(&config, &benign);
        let fp = benign.iter().filter(|r| d.predict(r)).count() as f64 / benign.len() as f64;
        assert!(fp <= 0.06, "fp rate {fp}");
    }

    #[test]
    fn calibration_moves_threshold() {
        let benign = benign_cluster(200, 3);
        let mut d = GaussianAnomaly::fit(&AnomalyConfig::default(), &benign);
        let mut validation = Dataset::new(2);
        for r in benign_cluster(50, 4) {
            validation.push(r, false);
        }
        for _ in 0..50 {
            validation.push(vec![20.0, 20.0], true);
        }
        d.calibrate(&validation);
        let correct = validation
            .iter()
            .filter(|(r, l)| d.predict(r) == *l)
            .count();
        assert!(correct as f64 / validation.len() as f64 > 0.9);
    }

    #[test]
    fn constant_dimension_does_not_explode() {
        let benign: Vec<Vec<f64>> = (0..100).map(|i| vec![1.0, f64::from(i)]).collect();
        let d = GaussianAnomaly::fit(&AnomalyConfig::default(), &benign);
        assert!(d.score(&[1.0, 50.0]).is_finite());
    }

    #[test]
    #[should_panic(expected = "benign training windows")]
    fn fit_requires_rows() {
        let _ = GaussianAnomaly::fit(&AnomalyConfig::default(), &[]);
    }
}
