//! Dataset container and the classifier abstraction shared by all models.

use crate::matrix::{FeatureMatrix, Rows};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A labelled feature-vector dataset (label `true` = malware, as in the
/// paper's 0/1 convention).
///
/// Rows live in one contiguous [`FeatureMatrix`]; appending is an
/// amortized-growth extend of the flat buffer, never a per-row box.
///
/// # Examples
///
/// ```
/// use rhmd_ml::model::Dataset;
///
/// let mut d = Dataset::new(2);
/// d.push(vec![0.1, 0.9], true);
/// d.push(vec![0.8, 0.2], false);
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.positives(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    x: FeatureMatrix,
    labels: Vec<bool>,
}

impl Dataset {
    /// Creates an empty dataset of `dims`-dimensional rows.
    pub fn new(dims: usize) -> Dataset {
        Dataset {
            x: FeatureMatrix::new(dims),
            labels: Vec::new(),
        }
    }

    /// Builds a dataset from parallel rows and labels.
    ///
    /// Compatibility shim: nested `Vec<Vec<f64>>` rows cost one heap
    /// allocation per row and defeat the flat row-major layout every
    /// scoring kernel assumes. New code should hand the data over flat
    /// ([`Dataset::from_flat`]) or as an already-built matrix
    /// ([`Dataset::from_matrix`], which is what the mmap'd corpus-store
    /// views feed in without a copy).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, rows have inconsistent dimensionality, or
    /// any value is non-finite.
    #[deprecated(
        since = "0.1.0",
        note = "build flat instead: `Dataset::from_flat` or `Dataset::from_matrix`"
    )]
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Dataset {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        let dims = rows.first().map_or(0, Vec::len);
        let mut d = Dataset::new(dims);
        d.reserve_rows(rows.len());
        for (row, label) in rows.iter().zip(labels) {
            d.push_row(row, label);
        }
        d
    }

    /// Builds a dataset from a flat row-major buffer and parallel labels —
    /// `labels.len()` rows of `dims` values each, no per-row allocation.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != dims * labels.len()` or any value is
    /// non-finite.
    pub fn from_flat(dims: usize, flat: Vec<f64>, labels: Vec<bool>) -> Dataset {
        assert_eq!(
            flat.len(),
            dims * labels.len(),
            "flat buffer must hold labels.len() rows of dims values"
        );
        Dataset::from_matrix(FeatureMatrix::from_flat(dims, flat), labels)
    }

    /// Builds a dataset directly from a matrix and parallel labels.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any value is non-finite.
    pub fn from_matrix(x: FeatureMatrix, labels: Vec<bool>) -> Dataset {
        assert_eq!(x.len(), labels.len(), "rows and labels must align");
        assert!(
            x.as_slice().iter().all(|v| v.is_finite()),
            "feature values must be finite"
        );
        Dataset { x, labels }
    }

    /// Appends one labelled row.
    ///
    /// # Panics
    ///
    /// Panics if the row's dimensionality mismatches or contains non-finite
    /// values.
    pub fn push(&mut self, row: Vec<f64>, label: bool) {
        self.push_row(&row, label);
    }

    /// Appends one labelled row from a borrowed slice (no ownership
    /// transfer, no per-row allocation).
    ///
    /// # Panics
    ///
    /// Panics if the row's dimensionality mismatches or contains non-finite
    /// values.
    pub fn push_row(&mut self, row: &[f64], label: bool) {
        assert!(
            row.iter().all(|v| v.is_finite()),
            "feature values must be finite"
        );
        self.x.push_row(row);
        self.labels.push(label);
    }

    /// Appends every row of `other` in one flat extend.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn extend_from(&mut self, other: &Dataset) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() && self.dims() == 0 {
            self.x = FeatureMatrix::new(other.dims());
        }
        assert_eq!(self.dims(), other.dims(), "row has wrong dimensionality");
        self.x.extend_flat(other.x.as_slice());
        self.labels.extend_from_slice(&other.labels);
    }

    /// Appends a flat run of whole rows, all sharing one label — the
    /// zero-copy append used when a projected window matrix joins a
    /// training set.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is not a whole number of rows or contains
    /// non-finite values.
    pub fn extend_from_flat(&mut self, flat: &[f64], label: bool) {
        assert!(
            flat.iter().all(|v| v.is_finite()),
            "feature values must be finite"
        );
        let appended = self.x.extend_flat(flat);
        self.labels.resize(self.labels.len() + appended, label);
    }

    /// Reserves storage for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.x.reserve_rows(additional);
        self.labels.reserve(additional);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Row dimensionality.
    pub fn dims(&self) -> usize {
        self.x.dims()
    }

    /// A view of the feature rows.
    pub fn rows(&self) -> Rows<'_> {
        self.x.rows()
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// The backing feature matrix.
    pub fn matrix(&self) -> &FeatureMatrix {
        &self.x
    }

    /// The labels, parallel to [`Dataset::rows`].
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Count of positive (malware) rows.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Count of negative (benign) rows.
    pub fn negatives(&self) -> usize {
        self.len() - self.positives()
    }

    /// Iterates `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool)> + '_ {
        self.x.iter().zip(self.labels.iter().copied())
    }

    /// Returns a dataset with the same rows but labels replaced by
    /// `new_labels` — how the attacker relabels its training set with the
    /// victim's decisions (paper Fig 1a).
    ///
    /// # Panics
    ///
    /// Panics if `new_labels` has the wrong length.
    #[must_use]
    pub fn with_labels(&self, new_labels: Vec<bool>) -> Dataset {
        assert_eq!(new_labels.len(), self.len(), "label count must match rows");
        Dataset {
            x: self.x.clone(),
            labels: new_labels,
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset({} rows x {} dims, {} malware / {} benign)",
            self.len(),
            self.dims(),
            self.positives(),
            self.negatives()
        )
    }
}

/// A trained binary classifier.
///
/// `score` returns a real-valued malware-likeness; `predict` applies the
/// model's operating threshold. All models here pick the threshold
/// maximizing training accuracy — the paper's "point on the ROC which
/// maximizes the accuracy".
///
/// Per-row `score` and batched `score_batch` share one set of summation
/// kernels, so for every model family the two paths are bit-identical.
///
/// This trait is object-safe: RHMD pools store `Box<dyn Classifier>`.
pub trait Classifier: fmt::Debug + Send + Sync {
    /// Malware-likeness score for a feature vector.
    fn score(&self, x: &[f64]) -> f64;

    /// Scores every row of `xs` into `out`, bit-identically to calling
    /// [`Classifier::score`] per row. Models override this to amortize
    /// scratch buffers and sweep the flat matrix without per-row dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != xs.len()`.
    fn score_batch(&self, xs: &FeatureMatrix, out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "output length must match row count");
        for (slot, row) in out.iter_mut().zip(xs.rows()) {
            *slot = self.score(row);
        }
    }

    /// The operating threshold applied by [`Classifier::predict`].
    fn threshold(&self) -> f64;

    /// Hard decision: `true` = malware.
    fn predict(&self, x: &[f64]) -> bool {
        self.score(x) >= self.threshold()
    }

    /// Short algorithm name (e.g. `"LR"`, `"NN"`).
    fn algorithm(&self) -> &'static str;

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Classifier>;

    /// Access to the concrete type, so strategy code (e.g. evasion weight
    /// extraction) can downcast.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl Clone for Box<dyn Classifier> {
    fn clone(&self) -> Box<dyn Classifier> {
        self.clone_box()
    }
}

/// Scores every row of a dataset through the batch path.
pub fn score_all(model: &dyn Classifier, data: &Dataset) -> Vec<f64> {
    let _span = rhmd_obs::span("ml.score");
    let mut out = vec![0.0; data.len()];
    model.score_batch(data.matrix(), &mut out);
    out
}

/// Predicts every row of a dataset through the batch path.
pub fn predict_all(model: &dyn Classifier, data: &Dataset) -> Vec<bool> {
    let threshold = model.threshold();
    let mut scores = vec![0.0; data.len()];
    model.score_batch(data.matrix(), &mut scores);
    scores.into_iter().map(|s| s >= threshold).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_counts() {
        let mut d = Dataset::new(1);
        d.push(vec![1.0], true);
        d.push(vec![2.0], false);
        d.push(vec![3.0], true);
        assert_eq!(d.positives(), 2);
        assert_eq!(d.negatives(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn push_rejects_wrong_dims() {
        let mut d = Dataset::new(2);
        d.push(vec![1.0], true);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_rejects_nan() {
        let mut d = Dataset::new(1);
        d.push(vec![f64::NAN], true);
    }

    /// The deprecated nested-`Vec` constructor stays a faithful shim over
    /// the flat path.
    #[test]
    #[allow(deprecated)]
    fn from_rows_shim_matches_from_flat() {
        let nested = Dataset::from_rows(
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            vec![true, false],
        );
        let flat = Dataset::from_flat(2, vec![1.0, 2.0, 3.0, 4.0], vec![true, false]);
        assert_eq!(nested, flat);
        assert_eq!(Dataset::from_rows(vec![], vec![]), Dataset::new(0));
    }

    #[test]
    #[should_panic(expected = "flat buffer")]
    fn from_flat_rejects_ragged_length() {
        let _ = Dataset::from_flat(2, vec![1.0, 2.0, 3.0], vec![true, false]);
    }

    #[test]
    fn with_labels_replaces() {
        let d = Dataset::from_flat(1, vec![1.0, 2.0], vec![true, true]);
        let relabelled = d.with_labels(vec![false, true]);
        assert_eq!(relabelled.labels(), &[false, true]);
        assert_eq!(relabelled.rows(), d.rows());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Dataset::from_flat(1, vec![1.0], vec![true]);
        let b = Dataset::from_flat(1, vec![2.0], vec![false]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.labels(), &[true, false]);
    }

    #[test]
    fn extend_from_empty_is_noop() {
        let mut a = Dataset::from_flat(1, vec![1.0], vec![true]);
        a.extend_from(&Dataset::new(3));
        assert_eq!(a.len(), 1);
        assert_eq!(a.dims(), 1);
    }

    #[test]
    fn extend_from_flat_shares_one_label() {
        let mut d = Dataset::new(2);
        d.extend_from_flat(&[1.0, 2.0, 3.0, 4.0], true);
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), &[true, true]);
        assert_eq!(d.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn extend_from_flat_rejects_nan() {
        let mut d = Dataset::new(1);
        d.extend_from_flat(&[f64::NAN], true);
    }

    #[test]
    fn display_summarizes() {
        let d = Dataset::from_flat(2, vec![0.0, 0.0], vec![true]);
        assert_eq!(format!("{d}"), "Dataset(1 rows x 2 dims, 1 malware / 0 benign)");
    }
}
