//! Dataset container and the classifier abstraction shared by all models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A labelled feature-vector dataset (label `true` = malware, as in the
/// paper's 0/1 convention).
///
/// # Examples
///
/// ```
/// use rhmd_ml::model::Dataset;
///
/// let mut d = Dataset::new(2);
/// d.push(vec![0.1, 0.9], true);
/// d.push(vec![0.8, 0.2], false);
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.positives(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    dims: usize,
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Creates an empty dataset of `dims`-dimensional rows.
    pub fn new(dims: usize) -> Dataset {
        Dataset {
            dims,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Builds a dataset from parallel rows and labels.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, rows have inconsistent dimensionality, or
    /// any value is non-finite.
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Dataset {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        let dims = rows.first().map_or(0, Vec::len);
        let mut d = Dataset::new(dims);
        for (row, label) in rows.into_iter().zip(labels) {
            d.push(row, label);
        }
        d
    }

    /// Appends one labelled row.
    ///
    /// # Panics
    ///
    /// Panics if the row's dimensionality mismatches or contains non-finite
    /// values.
    pub fn push(&mut self, row: Vec<f64>, label: bool) {
        if self.rows.is_empty() && self.dims == 0 {
            self.dims = row.len();
        }
        assert_eq!(row.len(), self.dims, "row has wrong dimensionality");
        assert!(
            row.iter().all(|v| v.is_finite()),
            "feature values must be finite"
        );
        self.rows.push(row);
        self.labels.push(label);
    }

    /// Appends every row of `other`.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn extend_from(&mut self, other: &Dataset) {
        for (row, &label) in other.rows.iter().zip(&other.labels) {
            self.push(row.clone(), label);
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The labels, parallel to [`Dataset::rows`].
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Count of positive (malware) rows.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Count of negative (benign) rows.
    pub fn negatives(&self) -> usize {
        self.len() - self.positives()
    }

    /// Iterates `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool)> + '_ {
        self.rows
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }

    /// Returns a dataset with the same rows but labels replaced by
    /// `new_labels` — how the attacker relabels its training set with the
    /// victim's decisions (paper Fig 1a).
    ///
    /// # Panics
    ///
    /// Panics if `new_labels` has the wrong length.
    #[must_use]
    pub fn with_labels(&self, new_labels: Vec<bool>) -> Dataset {
        assert_eq!(new_labels.len(), self.len(), "label count must match rows");
        Dataset {
            dims: self.dims,
            rows: self.rows.clone(),
            labels: new_labels,
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset({} rows x {} dims, {} malware / {} benign)",
            self.len(),
            self.dims,
            self.positives(),
            self.negatives()
        )
    }
}

/// A trained binary classifier.
///
/// `score` returns a real-valued malware-likeness; `predict` applies the
/// model's operating threshold. All models here pick the threshold
/// maximizing training accuracy — the paper's "point on the ROC which
/// maximizes the accuracy".
///
/// This trait is object-safe: RHMD pools store `Box<dyn Classifier>`.
pub trait Classifier: fmt::Debug + Send + Sync {
    /// Malware-likeness score for a feature vector.
    fn score(&self, x: &[f64]) -> f64;

    /// The operating threshold applied by [`Classifier::predict`].
    fn threshold(&self) -> f64;

    /// Hard decision: `true` = malware.
    fn predict(&self, x: &[f64]) -> bool {
        self.score(x) >= self.threshold()
    }

    /// Short algorithm name (e.g. `"LR"`, `"NN"`).
    fn algorithm(&self) -> &'static str;

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Classifier>;

    /// Access to the concrete type, so strategy code (e.g. evasion weight
    /// extraction) can downcast.
    fn as_any(&self) -> &dyn std::any::Any;
}

impl Clone for Box<dyn Classifier> {
    fn clone(&self) -> Box<dyn Classifier> {
        self.clone_box()
    }
}

/// Scores every row of a dataset.
pub fn score_all(model: &dyn Classifier, data: &Dataset) -> Vec<f64> {
    let _span = rhmd_obs::span("ml.score");
    data.rows().iter().map(|r| model.score(r)).collect()
}

/// Predicts every row of a dataset.
pub fn predict_all(model: &dyn Classifier, data: &Dataset) -> Vec<bool> {
    data.rows().iter().map(|r| model.predict(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_counts() {
        let mut d = Dataset::new(1);
        d.push(vec![1.0], true);
        d.push(vec![2.0], false);
        d.push(vec![3.0], true);
        assert_eq!(d.positives(), 2);
        assert_eq!(d.negatives(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn push_rejects_wrong_dims() {
        let mut d = Dataset::new(2);
        d.push(vec![1.0], true);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_rejects_nan() {
        let mut d = Dataset::new(1);
        d.push(vec![f64::NAN], true);
    }

    #[test]
    fn with_labels_replaces() {
        let d = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![true, true]);
        let relabelled = d.with_labels(vec![false, true]);
        assert_eq!(relabelled.labels(), &[false, true]);
        assert_eq!(relabelled.rows(), d.rows());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Dataset::from_rows(vec![vec![1.0]], vec![true]);
        let b = Dataset::from_rows(vec![vec![2.0]], vec![false]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.labels(), &[true, false]);
    }

    #[test]
    fn display_summarizes() {
        let d = Dataset::from_rows(vec![vec![0.0, 0.0]], vec![true]);
        assert_eq!(format!("{d}"), "Dataset(1 rows x 2 dims, 1 malware / 0 benign)");
    }
}
