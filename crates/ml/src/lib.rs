//! From-scratch machine learning for hardware malware detectors.
//!
//! The RHMD paper trains and reverse-engineers four classic model families;
//! this crate implements all of them with no external ML dependencies:
//!
//! * [`linear::LogisticRegression`] — the hardware-friendly baseline (LR);
//! * [`mlp::Mlp`] — one-hidden-layer `tanh` perceptron (the paper's NN);
//! * [`tree::DecisionTree`] — CART (attacker surrogate);
//! * [`svm::LinearSvm`] — Pegasos-trained linear SVM (attacker surrogate);
//! * [`forest::RandomForest`] — bagged CART ensemble (the paper §8.2's
//!   high-complexity deterministic comparator);
//!
//! plus the shared machinery the experiments need: [`model::Dataset`] and
//! the object-safe [`model::Classifier`] trait, [`metrics`] (ROC/AUC,
//! accuracy-maximizing thresholds, detector agreement), [`scale`]
//! (standardization baked into every model), [`split`] (stratified 60/20/20
//! splits), and [`trainer`] (algorithm-swept training).
//!
//! All training is deterministic given the config seeds.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anomaly;
pub mod forest;
pub mod kernel;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod mmap;
pub mod model;
pub mod quant;
pub mod scale;
pub mod split;
pub mod svm;
pub mod trainer;
pub mod tree;

pub use anomaly::{AnomalyConfig, GaussianAnomaly};
pub use forest::{ForestConfig, RandomForest};
pub use linear::{LogisticRegression, LrConfig};
pub use matrix::FeatureMatrix;
pub use metrics::{agreement, auc, best_accuracy_threshold, roc_curve, Confusion, RocPoint};
pub use mlp::{Mlp, MlpConfig};
pub use model::{predict_all, score_all, Classifier, Dataset};
pub use quant::{QuantBits, QuantConfig, QuantizedLinear, QuantizedMlp, Rounding};
pub use scale::Standardizer;
pub use split::stratified_split;
pub use svm::{LinearSvm, SvmConfig};
pub use trainer::{train, Algorithm, TrainerConfig};
pub use tree::{DecisionTree, TreeConfig};
