//! Stratified splitting utilities (paper §3: 60% victim training, 20%
//! attacker training, 20% attacker testing, stratified per malware type).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits indices `0..n` into groups with the given `fractions`, stratified
/// by the `stratum` of each index so every group receives a proportional
/// share of each stratum.
///
/// The final group absorbs rounding remainders so every index is assigned
/// exactly once.
///
/// # Panics
///
/// Panics if `fractions` is empty, contains non-positive entries, or does
/// not sum to 1 (within 1e-9).
///
/// # Examples
///
/// ```
/// use rhmd_ml::split::stratified_split;
///
/// let strata = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
/// let groups = stratified_split(&strata, &[0.6, 0.2, 0.2], 42);
/// assert_eq!(groups.len(), 3);
/// assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 10);
/// // Each group holds members of both strata.
/// assert!(groups[0].iter().any(|&i| strata[i] == 0));
/// assert!(groups[0].iter().any(|&i| strata[i] == 1));
/// ```
pub fn stratified_split(strata: &[u32], fractions: &[f64], seed: u64) -> Vec<Vec<usize>> {
    assert!(!fractions.is_empty(), "need at least one fraction");
    assert!(
        fractions.iter().all(|&f| f > 0.0),
        "fractions must be positive"
    );
    let total: f64 = fractions.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "fractions must sum to 1 (got {total})"
    );

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); fractions.len()];

    // Group indices by stratum, preserving deterministic order.
    let mut unique: Vec<u32> = strata.to_vec();
    unique.sort_unstable();
    unique.dedup();
    for stratum in unique {
        let mut members: Vec<usize> = (0..strata.len())
            .filter(|&i| strata[i] == stratum)
            .collect();
        members.shuffle(&mut rng);
        let n = members.len();
        let mut start = 0usize;
        for (g, &frac) in fractions.iter().enumerate() {
            let count = if g == fractions.len() - 1 {
                n - start
            } else {
                ((n as f64 * frac).round() as usize).min(n - start)
            };
            groups[g].extend(&members[start..start + count]);
            start += count;
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_indices_assigned_once() {
        let strata: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let groups = stratified_split(&strata, &[0.6, 0.2, 0.2], 1);
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn proportions_are_respected() {
        let strata = vec![0u32; 1000];
        let groups = stratified_split(&strata, &[0.6, 0.2, 0.2], 2);
        assert!((groups[0].len() as i64 - 600).abs() <= 1);
        assert!((groups[1].len() as i64 - 200).abs() <= 1);
        assert!((groups[2].len() as i64 - 200).abs() <= 1);
    }

    #[test]
    fn stratification_balances_rare_strata() {
        // 10 members of stratum 9 among 910 of stratum 0.
        let mut strata = vec![0u32; 900];
        strata.extend(vec![9u32; 10]);
        let groups = stratified_split(&strata, &[0.5, 0.5], 3);
        for g in &groups {
            let rare = g.iter().filter(|&&i| strata[i] == 9).count();
            assert_eq!(rare, 5);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let strata: Vec<u32> = (0..50).map(|i| i % 3).collect();
        assert_eq!(
            stratified_split(&strata, &[0.5, 0.5], 7),
            stratified_split(&strata, &[0.5, 0.5], 7)
        );
        assert_ne!(
            stratified_split(&strata, &[0.5, 0.5], 7),
            stratified_split(&strata, &[0.5, 0.5], 8)
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_fractions() {
        let _ = stratified_split(&[0, 1], &[0.5, 0.6], 0);
    }
}
