//! Quantized scoring kernels with optional seeded stochastic rounding.
//!
//! Weights quantize to `int4`/`int8`/`int16` with one scale per tensor (per hidden
//! row for the MLP's first layer); standardized inputs quantize at inference
//! time with *per-feature* scales calibrated on the training data
//! (`s_x[j] = max|z_j| / qmax`). The accumulation runs in the same
//! four-accumulator order as every other kernel ([`crate::kernel::dot_i16`]),
//! so per-row and batched scoring stay bit-identical.
//!
//! Rounding is the defense axis: [`Rounding::Nearest`] is the plain
//! quantized detector, while [`Rounding::Stochastic`] reproduces the
//! Stochastic-HMDs hardening result in software — each input quantization
//! step rounds up or down with probability equal to the fractional part,
//! driven by a generator seeded from `(seed, row contents, feature index)`.
//! That derivation makes stochastic scores *byte-reproducible*: they depend
//! only on the row and the seed, never on scoring order or thread count,
//! so checkpoint resume and the thread-determinism CI diff hold unchanged.
//! To an attacker who cannot read the seed, however, the decision boundary
//! jitters per input — the paper-style reverse-engineering game measurably
//! degrades (see the "Stochastic defense" table in EXPERIMENTS.md).

use crate::kernel;
use crate::linear::LogisticRegression;
use crate::matrix::FeatureMatrix;
use crate::metrics::best_accuracy_threshold;
use crate::mlp::Mlp;
use crate::model::{Classifier, Dataset};
use crate::scale::Standardizer;
use crate::svm::LinearSvm;
use crate::trainer::Algorithm;
use serde::{Deserialize, Serialize};

/// Quantization width for weights and inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantBits {
    /// 4-bit: levels in `[-7, 7]`. Deliberately coarse: with 15 levels per
    /// feature, stochastic rounding moves inputs by whole percents of their
    /// range, which is what makes the rounding a *defense* — finer widths
    /// quantize so tightly that no decision ever flips.
    Int4,
    /// 8-bit: levels in `[-127, 127]`.
    Int8,
    /// 16-bit: levels in `[-32767, 32767]`.
    Int16,
}

impl QuantBits {
    /// Largest representable level (symmetric range).
    pub fn qmax(self) -> f64 {
        match self {
            QuantBits::Int4 => 7.0,
            QuantBits::Int8 => 127.0,
            QuantBits::Int16 => 32767.0,
        }
    }

    /// Short display name (`"int4"` / `"int8"` / `"int16"`).
    pub fn name(self) -> &'static str {
        match self {
            QuantBits::Int4 => "int4",
            QuantBits::Int8 => "int8",
            QuantBits::Int16 => "int16",
        }
    }
}

/// How inference-time input quantization rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rounding {
    /// Deterministic round-to-nearest (error ≤ half a step per feature).
    Nearest,
    /// Seeded stochastic rounding (error < one step per feature): round up
    /// with probability equal to the fractional part. Deterministic given
    /// the seed and the row — scoring order and thread count never matter.
    Stochastic {
        /// Defender-private seed; an attacker who cannot read it sees a
        /// jittering decision boundary.
        seed: u64,
    },
}

impl Rounding {
    /// Worst-case rounding error in quantization steps (0.5 or 1.0).
    pub fn step_error(self) -> f64 {
        match self {
            Rounding::Nearest => 0.5,
            Rounding::Stochastic { .. } => 1.0,
        }
    }

    /// Short display name (`"nearest"` / `"stochastic"`).
    pub fn name(self) -> &'static str {
        match self {
            Rounding::Nearest => "nearest",
            Rounding::Stochastic { .. } => "stochastic",
        }
    }
}

/// Post-training quantization settings, carried by
/// [`crate::trainer::TrainerConfig::quant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuantConfig {
    /// Weight/input width.
    pub bits: QuantBits,
    /// Inference-time input rounding.
    pub rounding: Rounding,
}

impl QuantConfig {
    /// Nearest-rounded config at the given width.
    pub fn nearest(bits: QuantBits) -> QuantConfig {
        QuantConfig {
            bits,
            rounding: Rounding::Nearest,
        }
    }

    /// Stochastically-rounded config at the given width.
    pub fn stochastic(bits: QuantBits, seed: u64) -> QuantConfig {
        QuantConfig {
            bits,
            rounding: Rounding::Stochastic { seed },
        }
    }
}

/// splitmix64 finalizer — the repo's standard seed mixer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes a raw feature row with the defender seed. This is the *only*
/// source of stochastic-rounding randomness, so rounding decisions are a
/// pure function of `(seed, row, feature index)`.
#[inline]
fn row_hash(seed: u64, x: &[f64]) -> u64 {
    let mut h = mix(seed);
    for &v in x {
        h = mix(h ^ v.to_bits());
    }
    h
}

/// Uniform draw in `[0, 1)` from 53 hash bits.
#[inline]
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Stochastic rounding of an already-clamped level `t`: up with probability
/// `frac(t)`. Integer `t` (including the saturation levels ±qmax) always
/// maps to itself.
#[inline]
fn stochastic_round(t: f64, hash: u64, feature: usize) -> f64 {
    let floor = t.floor();
    let frac = t - floor;
    let u = unit(mix(hash ^ (feature as u64).wrapping_mul(0xa076_1d64_78bd_642f)));
    if frac > u {
        floor + 1.0
    } else {
        floor
    }
}

/// Per-tensor symmetric quantization of a weight vector (round-to-nearest;
/// the stochastic axis lives in inference-time input rounding, matching
/// Stochastic-HMDs' computation-level randomness).
fn quantize_tensor(w: &[f64], qmax: f64) -> (Vec<i16>, f64) {
    let max = w.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return (vec![0; w.len()], 1.0);
    }
    let scale = max / qmax;
    let q = w
        .iter()
        .map(|&v| (v / scale).round().clamp(-qmax, qmax) as i16)
        .collect();
    (q, scale)
}

/// Per-feature input scales from the calibration set: `max|z_j| / qmax`,
/// so every training row quantizes without saturation. Constant features
/// (always `z = 0`) get a nominal scale.
fn calibrate_input_scales(scaler: &Standardizer, data: &Dataset, qmax: f64) -> Vec<f64> {
    let dims = scaler.dims();
    let mut max_abs = vec![0.0f64; dims];
    let mut z = Vec::with_capacity(dims);
    for row in data.rows() {
        scaler.transform_into(row, &mut z);
        for (m, &v) in max_abs.iter_mut().zip(&z) {
            *m = m.max(v.abs());
        }
    }
    max_abs
        .into_iter()
        .map(|m| if m > 0.0 { m / qmax } else { 1.0 / qmax })
        .collect()
}

/// Standardizes, quantizes, and dequantizes one raw row into `out`:
/// `out[j] = q_j · s_x[j]` with `q_j` the (possibly stochastic) rounding of
/// `clamp(z_j / s_x[j], ±qmax)`. Shared by the per-row and batch paths, so
/// the two are bit-identical.
fn dequantize_row(
    scaler: &Standardizer,
    x_scales: &[f64],
    config: QuantConfig,
    x: &[f64],
    out: &mut Vec<f64>,
) {
    assert_eq!(x.len(), scaler.dims(), "dimensionality mismatch");
    let qmax = config.bits.qmax();
    let hash = match config.rounding {
        Rounding::Nearest => None,
        Rounding::Stochastic { seed } => Some(row_hash(seed, x)),
    };
    out.clear();
    for (j, (((&v, &m), &s), &sx)) in x
        .iter()
        .zip(scaler.mean())
        .zip(scaler.std())
        .zip(x_scales)
        .enumerate()
    {
        let z = kernel::scalar::standardize_one(v, m, s);
        let t = (z / sx).clamp(-qmax, qmax);
        let q = match hash {
            None => t.round(),
            Some(h) => stochastic_round(t, h, j),
        };
        out.push(q * sx);
    }
}

/// Rigorous bound on `|z_j − ẑ_j|` for one feature: a rounding step while
/// the level is in range, the exact saturation overshoot beyond it.
#[inline]
fn input_error_bound(z: f64, sx: f64, qmax: f64, step_error: f64) -> f64 {
    let limit = qmax * sx;
    if z.abs() <= limit {
        sx * step_error
    } else {
        z.abs() - limit
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A quantized linear detector (logistic regression or linear SVM).
///
/// Built post-training from an exact model plus a calibration set; the
/// operating threshold is re-picked on the calibration data so the
/// quantized score distribution keeps an accuracy-maximizing operating
/// point.
///
/// # Examples
///
/// ```
/// use rhmd_ml::linear::{LogisticRegression, LrConfig};
/// use rhmd_ml::model::{Classifier, Dataset};
/// use rhmd_ml::quant::{QuantBits, QuantConfig, QuantizedLinear};
///
/// let data = Dataset::from_flat(
///     1,
///     vec![0.0, 0.1, 0.9, 1.0],
///     vec![false, false, true, true],
/// );
/// let exact = LogisticRegression::fit(&LrConfig::default(), &data);
/// let quant = QuantizedLinear::from_lr(&exact, QuantConfig::nearest(QuantBits::Int16), &data);
/// let x = [0.95];
/// assert!((quant.score(&x) - exact.score(&x)).abs() <= quant.score_error_bound(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLinear {
    scaler: Standardizer,
    qweights: Vec<i16>,
    w_scale: f64,
    x_scales: Vec<f64>,
    bias: f64,
    threshold: f64,
    config: QuantConfig,
    /// `true` for the LR family (sigmoid output), `false` for SVM margins.
    sigmoid: bool,
}

impl QuantizedLinear {
    fn build(
        scaler: Standardizer,
        weights: &[f64],
        bias: f64,
        fallback_threshold: f64,
        sigmoid_output: bool,
        config: QuantConfig,
        calibration: &Dataset,
    ) -> QuantizedLinear {
        let qmax = config.bits.qmax();
        let (qweights, w_scale) = quantize_tensor(weights, qmax);
        let x_scales = calibrate_input_scales(&scaler, calibration, qmax);
        let mut model = QuantizedLinear {
            scaler,
            qweights,
            w_scale,
            x_scales,
            bias,
            threshold: fallback_threshold,
            config,
            sigmoid: sigmoid_output,
        };
        let mut scores = vec![0.0; calibration.len()];
        model.score_batch(calibration.matrix(), &mut scores);
        let (threshold, _) = best_accuracy_threshold(&scores, calibration.labels());
        if threshold.is_finite() {
            model.threshold = threshold;
        }
        model
    }

    /// Quantizes a trained logistic regression, calibrating input scales
    /// and the threshold on `calibration` (normally the training set).
    pub fn from_lr(
        lr: &LogisticRegression,
        config: QuantConfig,
        calibration: &Dataset,
    ) -> QuantizedLinear {
        let (scaler, weights, bias, threshold) = lr.parts();
        QuantizedLinear::build(scaler.clone(), weights, bias, threshold, true, config, calibration)
    }

    /// Quantizes a trained linear SVM.
    pub fn from_svm(
        svm: &LinearSvm,
        config: QuantConfig,
        calibration: &Dataset,
    ) -> QuantizedLinear {
        let (scaler, weights, bias, threshold) = svm.parts();
        QuantizedLinear::build(scaler.clone(), weights, bias, threshold, false, config, calibration)
    }

    /// The quantization settings.
    pub fn config(&self) -> QuantConfig {
        self.config
    }

    /// The base family this model quantizes.
    pub fn base_algorithm(&self) -> Algorithm {
        if self.sigmoid {
            Algorithm::Lr
        } else {
            Algorithm::Svm
        }
    }

    /// Calibrated per-feature input scales.
    pub fn input_scales(&self) -> &[f64] {
        &self.x_scales
    }

    /// The standardize→quantize→dequantize image of a raw row (`ẑ`), for
    /// round-trip-error tests.
    pub fn dequantized_inputs(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(x.len());
        dequantize_row(&self.scaler, &self.x_scales, self.config, x, &mut out);
        out
    }

    fn margin(&self, x: &[f64], zq: &mut Vec<f64>) -> f64 {
        dequantize_row(&self.scaler, &self.x_scales, self.config, x, zq);
        self.bias + self.w_scale * kernel::dot_i16(&self.qweights, zq)
    }

    fn score_row(&self, x: &[f64], zq: &mut Vec<f64>) -> f64 {
        let m = self.margin(x, zq);
        if self.sigmoid {
            sigmoid(m)
        } else {
            m
        }
    }

    /// Rigorous (real-arithmetic) bound on the margin error vs the exact
    /// model: `Σ_j (|w̃_j| + s_w/2)·err_z(j) + |ẑ_j|·s_w/2`, where the
    /// input error per feature is a rounding step in range and the exact
    /// saturation overshoot beyond the calibration range.
    pub fn margin_error_bound(&self, x: &[f64]) -> f64 {
        let qmax = self.config.bits.qmax();
        let step = self.config.rounding.step_error();
        let half_sw = 0.5 * self.w_scale;
        let mut bound = 0.0f64;
        for (((&q, (&v, &m)), &s), &sx) in self
            .qweights
            .iter()
            .zip(x.iter().zip(self.scaler.mean()))
            .zip(self.scaler.std())
            .zip(&self.x_scales)
        {
            let z = kernel::scalar::standardize_one(v, m, s);
            let w_deq = self.w_scale * f64::from(q);
            let z_err = input_error_bound(z, sx, qmax, step);
            let z_deq_abs = z.abs().min(qmax * sx) + sx * step;
            bound += (w_deq.abs() + half_sw) * z_err + z_deq_abs * half_sw;
        }
        bound
    }

    /// Guaranteed bound on `|score(x) − exact.score(x)|`: the margin bound,
    /// through the sigmoid's 1/4 Lipschitz constant for the LR family.
    pub fn score_error_bound(&self, x: &[f64]) -> f64 {
        let bound = self.margin_error_bound(x);
        if self.sigmoid {
            0.25 * bound
        } else {
            bound
        }
    }
}

impl Classifier for QuantizedLinear {
    fn score(&self, x: &[f64]) -> f64 {
        let mut zq = Vec::with_capacity(x.len());
        self.score_row(x, &mut zq)
    }

    fn score_batch(&self, xs: &FeatureMatrix, out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "output length must match row count");
        let mut zq = Vec::with_capacity(xs.dims());
        for (slot, row) in out.iter_mut().zip(xs.rows()) {
            *slot = self.score_row(row, &mut zq);
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn algorithm(&self) -> &'static str {
        if self.sigmoid {
            "LR"
        } else {
            "SVM"
        }
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A quantized one-hidden-layer perceptron: first-layer weights quantize
/// with one scale per hidden row (the dominant GEMV), inputs quantize with
/// the shared per-feature scales; the small second layer stays `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    scaler: Standardizer,
    q_w1: Vec<Vec<i16>>,
    w1_scales: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    x_scales: Vec<f64>,
    threshold: f64,
    config: QuantConfig,
}

impl QuantizedMlp {
    /// Quantizes a trained MLP, calibrating input scales and the threshold
    /// on `calibration` (normally the training set).
    pub fn from_mlp(nn: &Mlp, config: QuantConfig, calibration: &Dataset) -> QuantizedMlp {
        let (scaler, w1, b1, w2, b2, threshold) = nn.parts();
        let qmax = config.bits.qmax();
        let mut q_w1 = Vec::with_capacity(w1.len());
        let mut w1_scales = Vec::with_capacity(w1.len());
        for row in w1 {
            let (q, scale) = quantize_tensor(row, qmax);
            q_w1.push(q);
            w1_scales.push(scale);
        }
        let x_scales = calibrate_input_scales(scaler, calibration, qmax);
        let mut model = QuantizedMlp {
            scaler: scaler.clone(),
            q_w1,
            w1_scales,
            b1: b1.to_vec(),
            w2: w2.to_vec(),
            b2,
            x_scales,
            threshold,
            config,
        };
        let mut scores = vec![0.0; calibration.len()];
        model.score_batch(calibration.matrix(), &mut scores);
        let (new_threshold, _) = best_accuracy_threshold(&scores, calibration.labels());
        if new_threshold.is_finite() {
            model.threshold = new_threshold;
        }
        model
    }

    /// The quantization settings.
    pub fn config(&self) -> QuantConfig {
        self.config
    }

    /// Calibrated per-feature input scales.
    pub fn input_scales(&self) -> &[f64] {
        &self.x_scales
    }

    fn score_row(&self, x: &[f64], zq: &mut Vec<f64>) -> f64 {
        dequantize_row(&self.scaler, &self.x_scales, self.config, x, zq);
        let mut sum = self.b2;
        for ((qw, &sw), (&b, &wout)) in self
            .q_w1
            .iter()
            .zip(&self.w1_scales)
            .zip(self.b1.iter().zip(&self.w2))
        {
            let a = b + sw * kernel::dot_i16(qw, zq);
            sum += wout * a.tanh();
        }
        sigmoid(sum)
    }

    /// Guaranteed bound on `|score(x) − exact.score(x)|`: per-hidden-unit
    /// pre-activation bounds through `tanh`'s unit Lipschitz constant, the
    /// output combination, and the sigmoid's 1/4.
    pub fn score_error_bound(&self, x: &[f64]) -> f64 {
        let qmax = self.config.bits.qmax();
        let step = self.config.rounding.step_error();
        let mut out_bound = 0.0f64;
        for ((qw, &sw), &wout) in self.q_w1.iter().zip(&self.w1_scales).zip(&self.w2) {
            let half_sw = 0.5 * sw;
            let mut hidden_bound = 0.0f64;
            for (((&q, (&v, &m)), &s), &sx) in qw
                .iter()
                .zip(x.iter().zip(self.scaler.mean()))
                .zip(self.scaler.std())
                .zip(&self.x_scales)
            {
                let z = kernel::scalar::standardize_one(v, m, s);
                let w_deq = sw * f64::from(q);
                let z_err = input_error_bound(z, sx, qmax, step);
                let z_deq_abs = z.abs().min(qmax * sx) + sx * step;
                hidden_bound += (w_deq.abs() + half_sw) * z_err + z_deq_abs * half_sw;
            }
            out_bound += wout.abs() * hidden_bound;
        }
        0.25 * out_bound
    }
}

impl Classifier for QuantizedMlp {
    fn score(&self, x: &[f64]) -> f64 {
        let mut zq = Vec::with_capacity(x.len());
        self.score_row(x, &mut zq)
    }

    fn score_batch(&self, xs: &FeatureMatrix, out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "output length must match row count");
        let mut zq = Vec::with_capacity(xs.dims());
        for (slot, row) in out.iter_mut().zip(xs.rows()) {
            *slot = self.score_row(row, &mut zq);
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn algorithm(&self) -> &'static str {
        "NN"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LrConfig;
    use crate::metrics::auc;
    use crate::mlp::MlpConfig;
    use crate::model::score_all;
    use crate::svm::SvmConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, sep: f64, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new(3);
        for i in 0..n {
            let malware = i % 2 == 0;
            let c = if malware { sep } else { -sep };
            d.push(
                vec![
                    c + rng.gen::<f64>() - 0.5,
                    c * 0.5 + rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>(),
                ],
                malware,
            );
        }
        d
    }

    fn all_configs() -> Vec<QuantConfig> {
        vec![
            QuantConfig::nearest(QuantBits::Int4),
            QuantConfig::nearest(QuantBits::Int8),
            QuantConfig::nearest(QuantBits::Int16),
            QuantConfig::stochastic(QuantBits::Int4, 7),
            QuantConfig::stochastic(QuantBits::Int8, 7),
            QuantConfig::stochastic(QuantBits::Int16, 7),
        ]
    }

    #[test]
    fn round_trip_error_respects_per_feature_scale() {
        let data = blobs(200, 1.0, 1);
        let exact = LogisticRegression::fit(&LrConfig::default(), &data);
        for config in all_configs() {
            let q = QuantizedLinear::from_lr(&exact, config, &data);
            let step = config.rounding.step_error();
            let qmax = config.bits.qmax();
            for (row, _) in data.iter() {
                let z = q.scaler.transform(row);
                let zq = q.dequantized_inputs(row);
                for (j, ((&zj, &zqj), &sx)) in
                    z.iter().zip(&zq).zip(q.input_scales()).enumerate()
                {
                    let bound = input_error_bound(zj, sx, qmax, step);
                    assert!(
                        (zj - zqj).abs() <= bound + 1e-12,
                        "{:?} feature {j}: |{zj} - {zqj}| > {bound}",
                        config
                    );
                }
            }
        }
    }

    #[test]
    fn saturation_clamps_to_calibration_range() {
        let data = blobs(100, 1.0, 2);
        let q = QuantizedLinear::from_lr(
            &LogisticRegression::fit(&LrConfig::default(), &data),
            QuantConfig::nearest(QuantBits::Int8),
            &data,
        );
        // Far outside the calibration range in every feature.
        let ood = [1e9, -1e9, 1e9];
        let z = q.scaler.transform(&ood);
        let zq = q.dequantized_inputs(&ood);
        let qmax = QuantBits::Int8.qmax();
        for ((&zj, &zqj), &sx) in z.iter().zip(&zq).zip(q.input_scales()) {
            assert!(zj.abs() > qmax * sx, "input must actually saturate");
            assert_eq!(zqj.abs(), qmax * sx, "saturated level is exactly ±qmax·s_x");
            assert_eq!(zqj.signum(), zj.signum());
        }
    }

    #[test]
    fn linear_scores_stay_inside_the_error_envelope() {
        let data = blobs(200, 0.8, 3);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        let svm = LinearSvm::fit(&SvmConfig::default(), &data);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut queries: Vec<Vec<f64>> = data.rows().iter().map(<[f64]>::to_vec).collect();
        // Out-of-calibration queries exercise the saturation arm too.
        for _ in 0..50 {
            queries.push(vec![
                (rng.gen::<f64>() - 0.5) * 100.0,
                (rng.gen::<f64>() - 0.5) * 100.0,
                (rng.gen::<f64>() - 0.5) * 100.0,
            ]);
        }
        for config in all_configs() {
            let qlr = QuantizedLinear::from_lr(&lr, config, &data);
            let qsvm = QuantizedLinear::from_svm(&svm, config, &data);
            for x in &queries {
                let d_lr = (qlr.score(x) - lr.score(x)).abs();
                let b_lr = qlr.score_error_bound(x);
                assert!(d_lr <= b_lr + 1e-9, "{config:?} LR: {d_lr} > {b_lr}");
                let d_svm = (qsvm.score(x) - svm.score(x)).abs();
                let b_svm = qsvm.score_error_bound(x);
                assert!(d_svm <= b_svm + 1e-9, "{config:?} SVM: {d_svm} > {b_svm}");
            }
        }
    }

    #[test]
    fn mlp_scores_stay_inside_the_error_envelope() {
        let data = blobs(150, 0.8, 4);
        let nn = Mlp::fit(&MlpConfig { epochs: 30, ..MlpConfig::default() }, &data);
        for config in all_configs() {
            let qnn = QuantizedMlp::from_mlp(&nn, config, &data);
            for (row, _) in data.iter() {
                let d = (qnn.score(row) - nn.score(row)).abs();
                let b = qnn.score_error_bound(row);
                assert!(d <= b + 1e-9, "{config:?} NN: {d} > {b}");
            }
        }
    }

    #[test]
    fn narrower_widths_mean_coarser_grids() {
        let data = blobs(200, 0.8, 5);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        let err = |bits: QuantBits| -> f64 {
            let q = QuantizedLinear::from_lr(&lr, QuantConfig::nearest(bits), &data);
            data.iter().map(|(r, _)| (q.score(r) - lr.score(r)).abs()).sum()
        };
        let (e4, e8, e16) = (err(QuantBits::Int4), err(QuantBits::Int8), err(QuantBits::Int16));
        assert!(e16 < e8, "int16 {e16} vs int8 {e8}");
        assert!(e8 < e4, "int8 {e8} vs int4 {e4}");
    }

    #[test]
    fn stochastic_rounding_is_reproducible_and_order_independent() {
        let data = blobs(120, 0.8, 6);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        let q = QuantizedLinear::from_lr(
            &lr,
            QuantConfig::stochastic(QuantBits::Int8, 0xfeed),
            &data,
        );
        let forward = score_all(&q, &data);
        // Same rows scored in reverse order, one at a time: rounding depends
        // only on (seed, row, feature), never on scoring order.
        for i in (0..data.len()).rev() {
            assert_eq!(
                q.score(data.row(i)).to_bits(),
                forward[i].to_bits(),
                "row {i} drifted with scoring order"
            );
        }
        // And byte-stable across repeated batch passes.
        let again = score_all(&q, &data);
        assert!(forward.iter().zip(&again).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn different_seeds_round_differently_but_auc_holds() {
        let data = blobs(300, 0.8, 7);
        let test = blobs(300, 0.8, 8);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        let exact_auc = auc(&score_all(&lr, &test), test.labels());
        let mut distinct = false;
        let mut reference: Option<Vec<u64>> = None;
        for seed in [1u64, 2, 3] {
            let q = QuantizedLinear::from_lr(
                &lr,
                QuantConfig::stochastic(QuantBits::Int16, seed),
                &data,
            );
            let scores = score_all(&q, &test);
            let q_auc = auc(&scores, test.labels());
            assert!(
                (q_auc - exact_auc).abs() < 0.02,
                "seed {seed}: AUC {q_auc} vs exact {exact_auc}"
            );
            let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => distinct |= r != &bits,
            }
        }
        assert!(distinct, "different seeds must perturb at least one score");
    }

    #[test]
    fn quantized_models_round_trip_through_serde() {
        let data = blobs(100, 1.0, 10);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        let q = QuantizedLinear::from_lr(
            &lr,
            QuantConfig::stochastic(QuantBits::Int8, 42),
            &data,
        );
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedLinear = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
        for (row, _) in data.iter() {
            assert_eq!(q.score(row).to_bits(), back.score(row).to_bits());
        }
    }

    #[test]
    fn quantized_detectors_still_detect() {
        let data = blobs(300, 1.0, 11);
        for config in all_configs() {
            let q = QuantizedLinear::from_lr(
                &LogisticRegression::fit(&LrConfig::default(), &data),
                config,
                &data,
            );
            let acc = data.iter().filter(|(r, l)| q.predict(r) == *l).count() as f64
                / data.len() as f64;
            assert!(acc > 0.95, "{config:?}: accuracy {acc}");
        }
    }
}
