//! A uniform handle over the four model families, so experiment code can
//! sweep algorithms the way the paper does (LR / DT / SVM / NN).

use crate::forest::{ForestConfig, RandomForest};
use crate::linear::{LogisticRegression, LrConfig};
use crate::mlp::{Mlp, MlpConfig};
use crate::model::{Classifier, Dataset};
use crate::quant::{QuantConfig, QuantizedLinear, QuantizedMlp};
use crate::svm::{LinearSvm, SvmConfig};
use crate::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The classification algorithms used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Logistic regression.
    Lr,
    /// Decision tree.
    Dt,
    /// Linear support vector machine.
    Svm,
    /// One-hidden-layer neural network.
    Nn,
    /// Random forest (bagged CART trees).
    Rf,
}

impl Algorithm {
    /// The surrogate families the attacker sweeps in Figs 3–4.
    pub const SURROGATES: [Algorithm; 3] = [Algorithm::Lr, Algorithm::Dt, Algorithm::Svm];

    /// All five families.
    pub const ALL: [Algorithm; 5] =
        [Algorithm::Lr, Algorithm::Dt, Algorithm::Svm, Algorithm::Nn, Algorithm::Rf];

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Lr => "LR",
            Algorithm::Dt => "DT",
            Algorithm::Svm => "SVM",
            Algorithm::Nn => "NN",
            Algorithm::Rf => "RF",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bundled hyperparameters for every family, with a single seed knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Logistic-regression settings.
    pub lr: LrConfig,
    /// Decision-tree settings.
    pub tree: TreeConfig,
    /// SVM settings.
    pub svm: SvmConfig,
    /// MLP settings.
    pub mlp: MlpConfig,
    /// Random-forest settings.
    pub forest: ForestConfig,
    /// Post-training quantization for the LR/SVM/NN families; `None`
    /// (the default) keeps the exact `f64` models bit-for-bit. Ignored by
    /// the tree families, whose thresholds don't quantize meaningfully.
    pub quant: Option<QuantConfig>,
}

impl TrainerConfig {
    /// Defaults re-seeded so distinct experiment stages don't share RNG
    /// streams.
    pub fn with_seed(seed: u64) -> TrainerConfig {
        let mut c = TrainerConfig::default();
        c.lr.seed = seed;
        c.svm.seed = seed ^ 0x51;
        c.mlp.seed = seed ^ 0x77;
        c.forest.seed = seed ^ 0xf0;
        c
    }
}

/// Trains one model of the requested family.
///
/// # Panics
///
/// Panics if `data` is empty (all fitters require data).
///
/// # Examples
///
/// ```
/// use rhmd_ml::trainer::{train, Algorithm, TrainerConfig};
/// use rhmd_ml::model::Dataset;
///
/// let data = Dataset::from_flat(
///     1,
///     vec![0.0, 0.1, 0.9, 1.0],
///     vec![false, false, true, true],
/// );
/// for algo in Algorithm::ALL {
///     let model = train(algo, &TrainerConfig::default(), &data);
///     assert!(model.predict(&[0.95]));
/// }
/// ```
pub fn train(algorithm: Algorithm, config: &TrainerConfig, data: &Dataset) -> Box<dyn Classifier> {
    let _span = rhmd_obs::span("ml.train");
    rhmd_obs::incr("ml.models_trained");
    match (algorithm, config.quant) {
        (Algorithm::Lr, None) => Box::new(LogisticRegression::fit(&config.lr, data)),
        (Algorithm::Svm, None) => Box::new(LinearSvm::fit(&config.svm, data)),
        (Algorithm::Nn, None) => Box::new(Mlp::fit(&config.mlp, data)),
        // Quantization is post-training: fit the exact model, then quantize
        // weights and calibrate input scales + threshold on the training set.
        (Algorithm::Lr, Some(q)) => Box::new(QuantizedLinear::from_lr(
            &LogisticRegression::fit(&config.lr, data),
            q,
            data,
        )),
        (Algorithm::Svm, Some(q)) => Box::new(QuantizedLinear::from_svm(
            &LinearSvm::fit(&config.svm, data),
            q,
            data,
        )),
        (Algorithm::Nn, Some(q)) => {
            Box::new(QuantizedMlp::from_mlp(&Mlp::fit(&config.mlp, data), q, data))
        }
        (Algorithm::Dt, _) => Box::new(DecisionTree::fit(&config.tree, data)),
        (Algorithm::Rf, _) => Box::new(RandomForest::fit(&config.forest, data)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Algorithm::Lr.name(), "LR");
        assert_eq!(Algorithm::Nn.to_string(), "NN");
        assert_eq!(Algorithm::SURROGATES.len(), 3);
    }

    #[test]
    fn train_dispatches_by_algorithm() {
        let data = Dataset::from_flat(1, vec![0.0, 0.2, 0.8, 1.0], vec![false, false, true, true]);
        for algo in Algorithm::ALL {
            let model = train(algo, &TrainerConfig::default(), &data);
            assert_eq!(model.algorithm(), algo.name());
        }
    }

    #[test]
    fn with_seed_decorrelates_streams() {
        let a = TrainerConfig::with_seed(1);
        assert_ne!(a.lr.seed, a.svm.seed);
        assert_ne!(a.lr.seed, a.mlp.seed);
        assert_ne!(a.lr.seed, a.forest.seed);
    }

    #[test]
    fn quantized_dispatch_preserves_family_names() {
        let data = Dataset::from_flat(1, vec![0.0, 0.2, 0.8, 1.0], vec![false, false, true, true]);
        let config = TrainerConfig {
            quant: Some(crate::quant::QuantConfig::stochastic(
                crate::quant::QuantBits::Int16,
                9,
            )),
            ..TrainerConfig::default()
        };
        for algo in Algorithm::ALL {
            let model = train(algo, &config, &data);
            assert_eq!(model.algorithm(), algo.name());
            assert!(model.predict(&[0.95]));
        }
    }

    #[test]
    fn config_round_trips_with_quant_knob() {
        let config = TrainerConfig {
            quant: Some(crate::quant::QuantConfig::stochastic(
                crate::quant::QuantBits::Int8,
                0xfeed,
            )),
            ..TrainerConfig::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: TrainerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        let default_json = serde_json::to_string(&TrainerConfig::default()).unwrap();
        let default_back: TrainerConfig = serde_json::from_str(&default_json).unwrap();
        assert!(default_back.quant.is_none());
    }

    #[test]
    fn boxed_models_clone() {
        let data = Dataset::from_flat(1, vec![0.0, 1.0], vec![false, true]);
        let model = train(Algorithm::Lr, &TrainerConfig::default(), &data);
        let copy = model.clone();
        assert_eq!(copy.score(&[0.5]), model.score(&[0.5]));
    }
}
