//! A uniform handle over the four model families, so experiment code can
//! sweep algorithms the way the paper does (LR / DT / SVM / NN).

use crate::forest::{ForestConfig, RandomForest};
use crate::linear::{LogisticRegression, LrConfig};
use crate::mlp::{Mlp, MlpConfig};
use crate::model::{Classifier, Dataset};
use crate::svm::{LinearSvm, SvmConfig};
use crate::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The classification algorithms used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Logistic regression.
    Lr,
    /// Decision tree.
    Dt,
    /// Linear support vector machine.
    Svm,
    /// One-hidden-layer neural network.
    Nn,
    /// Random forest (bagged CART trees).
    Rf,
}

impl Algorithm {
    /// The surrogate families the attacker sweeps in Figs 3–4.
    pub const SURROGATES: [Algorithm; 3] = [Algorithm::Lr, Algorithm::Dt, Algorithm::Svm];

    /// All five families.
    pub const ALL: [Algorithm; 5] =
        [Algorithm::Lr, Algorithm::Dt, Algorithm::Svm, Algorithm::Nn, Algorithm::Rf];

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Lr => "LR",
            Algorithm::Dt => "DT",
            Algorithm::Svm => "SVM",
            Algorithm::Nn => "NN",
            Algorithm::Rf => "RF",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bundled hyperparameters for every family, with a single seed knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Logistic-regression settings.
    pub lr: LrConfig,
    /// Decision-tree settings.
    pub tree: TreeConfig,
    /// SVM settings.
    pub svm: SvmConfig,
    /// MLP settings.
    pub mlp: MlpConfig,
    /// Random-forest settings.
    pub forest: ForestConfig,
}

impl TrainerConfig {
    /// Defaults re-seeded so distinct experiment stages don't share RNG
    /// streams.
    pub fn with_seed(seed: u64) -> TrainerConfig {
        let mut c = TrainerConfig::default();
        c.lr.seed = seed;
        c.svm.seed = seed ^ 0x51;
        c.mlp.seed = seed ^ 0x77;
        c.forest.seed = seed ^ 0xf0;
        c
    }
}

/// Trains one model of the requested family.
///
/// # Panics
///
/// Panics if `data` is empty (all fitters require data).
///
/// # Examples
///
/// ```
/// use rhmd_ml::trainer::{train, Algorithm, TrainerConfig};
/// use rhmd_ml::model::Dataset;
///
/// let data = Dataset::from_rows(
///     vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]],
///     vec![false, false, true, true],
/// );
/// for algo in Algorithm::ALL {
///     let model = train(algo, &TrainerConfig::default(), &data);
///     assert!(model.predict(&[0.95]));
/// }
/// ```
pub fn train(algorithm: Algorithm, config: &TrainerConfig, data: &Dataset) -> Box<dyn Classifier> {
    let _span = rhmd_obs::span("ml.train");
    rhmd_obs::incr("ml.models_trained");
    match algorithm {
        Algorithm::Lr => Box::new(LogisticRegression::fit(&config.lr, data)),
        Algorithm::Dt => Box::new(DecisionTree::fit(&config.tree, data)),
        Algorithm::Svm => Box::new(LinearSvm::fit(&config.svm, data)),
        Algorithm::Nn => Box::new(Mlp::fit(&config.mlp, data)),
        Algorithm::Rf => Box::new(RandomForest::fit(&config.forest, data)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Algorithm::Lr.name(), "LR");
        assert_eq!(Algorithm::Nn.to_string(), "NN");
        assert_eq!(Algorithm::SURROGATES.len(), 3);
    }

    #[test]
    fn train_dispatches_by_algorithm() {
        let data = Dataset::from_rows(
            vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]],
            vec![false, false, true, true],
        );
        for algo in Algorithm::ALL {
            let model = train(algo, &TrainerConfig::default(), &data);
            assert_eq!(model.algorithm(), algo.name());
        }
    }

    #[test]
    fn with_seed_decorrelates_streams() {
        let a = TrainerConfig::with_seed(1);
        assert_ne!(a.lr.seed, a.svm.seed);
        assert_ne!(a.lr.seed, a.mlp.seed);
        assert_ne!(a.lr.seed, a.forest.seed);
    }

    #[test]
    fn boxed_models_clone() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0]], vec![false, true]);
        let model = train(Algorithm::Lr, &TrainerConfig::default(), &data);
        let copy = model.clone();
        assert_eq!(copy.score(&[0.5]), model.score(&[0.5]));
    }
}
