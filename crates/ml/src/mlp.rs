//! Multi-layer perceptron — the paper's non-linear detector (§4): one hidden
//! layer with as many neurons as input features, `tanh` activations, sigmoid
//! output.

use crate::kernel;
use crate::matrix::FeatureMatrix;
use crate::metrics::best_accuracy_threshold;
use crate::model::{Classifier, Dataset};
use crate::scale::Standardizer;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Borrowed internals handed to the quantizer:
/// `(scaler, w1, b1, w2, b2, threshold)`.
pub(crate) type MlpParts<'a> = (&'a Standardizer, &'a [Vec<f64>], &'a [f64], &'a [f64], f64, f64);

/// Training hyperparameters for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Passes over the training set.
    pub epochs: u32,
    /// Initial SGD step size (decays as 1/(1 + epoch)).
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Weight-initialization and shuffling seed.
    pub seed: u64,
    /// Reweight samples inversely to class frequency.
    pub balance_classes: bool,
    /// Hidden-layer width override; `None` = number of input features
    /// (the paper's architecture).
    pub hidden: Option<usize>,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            epochs: 300,
            learning_rate: 0.08,
            momentum: 0.95,
            l2: 1e-4,
            seed: 0x0de1,
            balance_classes: true,
            hidden: None,
        }
    }
}

/// A trained one-hidden-layer perceptron detector.
///
/// # Examples
///
/// ```
/// use rhmd_ml::mlp::{Mlp, MlpConfig};
/// use rhmd_ml::model::{Classifier, Dataset};
///
/// // XOR-like data that no linear model can fit.
/// let data = Dataset::from_flat(
///     2,
///     vec![0., 0., 1., 1., 0., 1., 1., 0.],
///     vec![false, false, true, true],
/// );
/// let nn = Mlp::fit(&MlpConfig { epochs: 400, ..MlpConfig::default() }, &data);
/// assert!(nn.predict(&[0.9, 0.1]));
/// assert!(!nn.predict(&[0.95, 0.9]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    scaler: Standardizer,
    /// `hidden × input` weights.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    /// `hidden` output weights.
    w2: Vec<f64>,
    b2: f64,
    threshold: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Mlp {
    /// Trains with backpropagation (SGD + momentum).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(config: &MlpConfig, data: &Dataset) -> Mlp {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let scaler = Standardizer::fit(data);
        let scaled = scaler.transform_dataset(data);
        let dims = scaled.dims();
        let hidden = config.hidden.unwrap_or(dims).max(2);
        let n = scaled.len();
        let (pos, neg) = (scaled.positives().max(1), scaled.negatives().max(1));
        let (wt_pos, wt_neg) = if config.balance_classes {
            (n as f64 / (2.0 * pos as f64), n as f64 / (2.0 * neg as f64))
        } else {
            (1.0, 1.0)
        };

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let xavier = (1.0 / dims.max(1) as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..hidden)
            .map(|_| (0..dims).map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * xavier).collect())
            .collect();
        let mut b1 = vec![0.0; hidden];
        let hx = (1.0 / hidden as f64).sqrt();
        let mut w2: Vec<f64> = (0..hidden).map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * hx).collect();
        let mut b2 = 0.0;

        // Momentum buffers.
        let mut v1 = vec![vec![0.0; dims]; hidden];
        let mut vb1 = vec![0.0; hidden];
        let mut v2 = vec![0.0; hidden];
        let mut vb2 = 0.0;

        let mut order: Vec<usize> = (0..n).collect();
        let mut act = vec![0.0; hidden];
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + 0.02 * f64::from(epoch));
            for &i in &order {
                let row = scaled.row(i);
                let y = f64::from(u8::from(scaled.labels()[i]));
                let sample_weight = if scaled.labels()[i] { wt_pos } else { wt_neg };

                // Forward.
                for (a, (w, b)) in act.iter_mut().zip(w1.iter().zip(&b1)) {
                    let z: f64 = b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>();
                    *a = z.tanh();
                }
                let out = sigmoid(b2 + w2.iter().zip(&act).map(|(w, a)| w * a).sum::<f64>());

                // Backward.
                let delta_out = (out - y) * sample_weight;
                for h in 0..hidden {
                    let grad2 = delta_out * act[h] + config.l2 * w2[h];
                    v2[h] = config.momentum * v2[h] - lr * grad2;
                    let delta_h = delta_out * w2[h] * (1.0 - act[h] * act[h]);
                    for d in 0..dims {
                        let grad1 = delta_h * row[d] + config.l2 * w1[h][d];
                        v1[h][d] = config.momentum * v1[h][d] - lr * grad1;
                        w1[h][d] += v1[h][d];
                    }
                    vb1[h] = config.momentum * vb1[h] - lr * delta_h;
                    b1[h] += vb1[h];
                    w2[h] += v2[h];
                }
                vb2 = config.momentum * vb2 - lr * delta_out;
                b2 += vb2;
            }
        }

        let mut model = Mlp {
            scaler,
            w1,
            b1,
            w2,
            b2,
            threshold: 0.5,
        };
        let mut scores = vec![0.0; data.len()];
        model.score_batch(data.matrix(), &mut scores);
        let (threshold, _) = best_accuracy_threshold(&scores, data.labels());
        model.threshold = if threshold.is_finite() { threshold } else { 0.5 };
        model
    }

    /// Hidden-layer width.
    pub fn hidden_units(&self) -> usize {
        self.w2.len()
    }

    /// The gradient of the network's score with respect to the *raw* input
    /// features, evaluated at `x`.
    ///
    /// This is the local, exact version of the paper's weight-collapsing
    /// heuristic: collapsing sums `w1·w2` ignoring each hidden unit's
    /// activation regime, while the gradient weights unit `h` by its local
    /// slope `1 - tanh²(z_h)`. Evasion payloads built from the gradient at a
    /// malware centroid transfer much better against non-linear victims.
    pub fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        let z = self.scaler.transform(x);
        let dims = self.scaler.dims();
        let mut grad = vec![0.0; dims];
        for ((w, b), &wout) in self.w1.iter().zip(&self.b1).zip(&self.w2) {
            let pre: f64 = b + w.iter().zip(&z).map(|(wi, xi)| wi * xi).sum::<f64>();
            let slope = 1.0 - pre.tanh() * pre.tanh();
            for (g, &wi) in grad.iter_mut().zip(w) {
                *g += wout * slope * wi;
            }
        }
        for (g, &s) in grad.iter_mut().zip(self.scaler.std()) {
            *g /= s;
        }
        grad
    }

    /// Collapses the network into one per-input weight vector using the
    /// paper's heuristic (§5): the weight of input `j` is
    /// `Σ_i w1[i][j] · w2[i]`, summed over all hidden neurons. Returned in
    /// *raw feature space* (scaling folded in), so evasion strategies can
    /// treat it exactly like an LR weight vector — approximately, since the
    /// true surface is non-linear.
    pub fn collapsed_input_weights(&self) -> Vec<f64> {
        let dims = self.scaler.dims();
        let mut w = vec![0.0; dims];
        for (row, &wout) in self.w1.iter().zip(&self.w2) {
            for (acc, &wi) in w.iter_mut().zip(row) {
                *acc += wi * wout;
            }
        }
        for (acc, &s) in w.iter_mut().zip(self.scaler.std()) {
            *acc /= s;
        }
        w
    }

    /// Internal parts for post-training quantization:
    /// `(scaler, w1, b1, w2, b2, threshold)`.
    pub(crate) fn parts(&self) -> MlpParts<'_> {
        (&self.scaler, &self.w1, &self.b1, &self.w2, self.b2, self.threshold)
    }

    /// Forward pass on an already-standardized row: hidden `tanh` layer
    /// then sigmoid output. Both `score` and `score_batch` funnel through
    /// here, so the two are bit-identical.
    fn score_standardized(&self, z: &[f64]) -> f64 {
        let mut sum = self.b2;
        for ((w, b), &wout) in self.w1.iter().zip(&self.b1).zip(&self.w2) {
            let a = b + kernel::dot(w, z);
            sum += wout * a.tanh();
        }
        sigmoid(sum)
    }
}

impl Classifier for Mlp {
    fn score(&self, x: &[f64]) -> f64 {
        let mut z = Vec::with_capacity(x.len());
        self.scaler.transform_into(x, &mut z);
        self.score_standardized(&z)
    }

    fn score_batch(&self, xs: &FeatureMatrix, out: &mut [f64]) {
        // Batched hidden-layer GEMV: one scratch standardization buffer
        // reused across every row instead of an allocation per row.
        assert_eq!(xs.len(), out.len(), "output length must match row count");
        let mut z = Vec::with_capacity(xs.dims());
        for (slot, row) in out.iter_mut().zip(xs.rows()) {
            self.scaler.transform_into(row, &mut z);
            *slot = self.score_standardized(&z);
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn algorithm(&self) -> &'static str {
        "NN"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            let a = rng.gen::<bool>();
            let b = rng.gen::<bool>();
            let x = f64::from(u8::from(a)) + (rng.gen::<f64>() - 0.5) * 0.3;
            let y = f64::from(u8::from(b)) + (rng.gen::<f64>() - 0.5) * 0.3;
            d.push(vec![x, y], a != b);
        }
        d
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let data = xor_data(400, 1);
        let nn = Mlp::fit(
            &MlpConfig {
                epochs: 200,
                hidden: Some(8),
                ..MlpConfig::default()
            },
            &data,
        );
        let acc = data
            .iter()
            .filter(|(row, label)| nn.predict(row) == *label)
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn default_hidden_width_equals_input_dims() {
        let data = xor_data(50, 2);
        let nn = Mlp::fit(&MlpConfig { epochs: 5, ..MlpConfig::default() }, &data);
        assert_eq!(nn.hidden_units(), 2);
    }

    #[test]
    fn training_is_deterministic() {
        let data = xor_data(100, 3);
        let cfg = MlpConfig { epochs: 20, ..MlpConfig::default() };
        assert_eq!(Mlp::fit(&cfg, &data), Mlp::fit(&cfg, &data));
    }

    #[test]
    fn scores_are_probabilities() {
        let data = xor_data(100, 4);
        let nn = Mlp::fit(&MlpConfig { epochs: 20, ..MlpConfig::default() }, &data);
        for (row, _) in data.iter() {
            let s = nn.score(row);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn collapsed_weights_have_input_dims() {
        let data = xor_data(100, 5);
        let nn = Mlp::fit(&MlpConfig { epochs: 10, ..MlpConfig::default() }, &data);
        assert_eq!(nn.collapsed_input_weights().len(), 2);
    }

    #[test]
    fn collapsed_weights_track_linear_signal() {
        // One informative dimension: collapsed weight should be positive for
        // the malware-increasing feature.
        let mut rng = SmallRng::seed_from_u64(6);
        let mut d = Dataset::new(2);
        for _ in 0..300 {
            let malware = rng.gen::<bool>();
            let x = if malware { 1.0 } else { 0.0 } + (rng.gen::<f64>() - 0.5) * 0.4;
            let noise = rng.gen::<f64>();
            d.push(vec![x, noise], malware);
        }
        let nn = Mlp::fit(&MlpConfig { epochs: 60, ..MlpConfig::default() }, &d);
        let w = nn.collapsed_input_weights();
        assert!(
            w[0] > w[1].abs(),
            "informative weight {} vs noise {}",
            w[0],
            w[1]
        );
    }
}
