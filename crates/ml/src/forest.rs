//! Random forest — the "high-complexity, high-accuracy" classifier the
//! paper's §8.2 discussion contrasts with pools of weak detectors.

use crate::matrix::FeatureMatrix;
use crate::metrics::best_accuracy_threshold;
use crate::model::{Classifier, Dataset};
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Training hyperparameters for [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: u32,
    /// Per-tree CART settings.
    pub tree: TreeConfig,
    /// Bootstrap-sampling seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> ForestConfig {
        ForestConfig {
            trees: 32,
            tree: TreeConfig {
                max_depth: 12,
                min_split: 4,
                min_leaf: 2,
            },
            seed: 0xf0_4e57,
        }
    }
}

/// A bagged ensemble of CART trees; scores are the mean leaf malware
/// fraction across trees.
///
/// Note the contrast the paper draws (§8.2): a random forest is a
/// *deterministic* combination of many trees, so — unlike an RHMD — it can
/// still be reverse-engineered to arbitrary precision.
///
/// # Examples
///
/// ```
/// use rhmd_ml::forest::{ForestConfig, RandomForest};
/// use rhmd_ml::model::{Classifier, Dataset};
///
/// let data = Dataset::from_flat(
///     1,
///     vec![0.1, 0.2, 0.8, 0.9],
///     vec![false, false, true, true],
/// );
/// let forest = RandomForest::fit(&ForestConfig::default(), &data);
/// assert!(forest.predict(&[0.85]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    threshold: f64,
}

impl RandomForest {
    /// Trains `config.trees` CART trees on bootstrap resamples.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.trees` is zero.
    pub fn fit(config: &ForestConfig, data: &Dataset) -> RandomForest {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(config.trees > 0, "forest needs at least one tree");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n = data.len();
        let trees = (0..config.trees)
            .map(|_| {
                let mut sample = Dataset::new(data.dims());
                sample.reserve_rows(n);
                for _ in 0..n {
                    let i = rng.gen_range(0..n);
                    sample.push_row(data.row(i), data.labels()[i]);
                }
                DecisionTree::fit(&config.tree, &sample)
            })
            .collect();
        let mut model = RandomForest {
            trees,
            threshold: 0.5,
        };
        let mut scores = vec![0.0; data.len()];
        model.score_batch(data.matrix(), &mut scores);
        let (threshold, _) = best_accuracy_threshold(&scores, data.labels());
        model.threshold = if threshold.is_finite() { threshold } else { 0.5 };
        model
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// A forest always contains at least one tree.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Classifier for RandomForest {
    fn score(&self, x: &[f64]) -> f64 {
        let total: f64 = self.trees.iter().map(|t| t.score(x)).sum();
        total / self.trees.len() as f64
    }

    fn score_batch(&self, xs: &FeatureMatrix, out: &mut [f64]) {
        // Rows-outer with the same left-to-right tree sum as `score`, so
        // the two paths are bit-identical. Trees-outer would re-stream
        // `out` once per tree for no cache benefit — each tree walk is
        // data-dependent random access either way; batching here saves the
        // per-row virtual dispatch, not the walks.
        assert_eq!(xs.len(), out.len(), "output length must match row count");
        let n = self.trees.len() as f64;
        for (slot, row) in out.iter_mut().zip(xs.rows()) {
            let total: f64 = self.trees.iter().map(|t| t.score(row)).sum();
            *slot = total / n;
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn algorithm(&self) -> &'static str {
        "RF"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            let a = rng.gen::<bool>();
            let b = rng.gen::<bool>();
            d.push(
                vec![
                    f64::from(u8::from(a)) + (rng.gen::<f64>() - 0.5) * 0.3,
                    f64::from(u8::from(b)) + (rng.gen::<f64>() - 0.5) * 0.3,
                ],
                a != b,
            );
        }
        d
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let data = xor_data(400, 1);
        let forest = RandomForest::fit(&ForestConfig::default(), &data);
        let acc = data
            .iter()
            .filter(|(row, label)| forest.predict(row) == *label)
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn forest_beats_single_tree_on_noise() {
        let mut rng = SmallRng::seed_from_u64(2);
        // Signal in dim 0; pure noise in dims 1-3.
        let mut d = Dataset::new(4);
        for _ in 0..300 {
            let malware = rng.gen::<bool>();
            d.push(
                vec![
                    if malware { 0.6 } else { 0.4 } + (rng.gen::<f64>() - 0.5) * 0.5,
                    rng.gen(),
                    rng.gen(),
                    rng.gen(),
                ],
                malware,
            );
        }
        let shallow = TreeConfig {
            max_depth: 12,
            min_split: 4,
            min_leaf: 2,
        };
        let tree = DecisionTree::fit(&shallow, &d);
        let forest = RandomForest::fit(&ForestConfig::default(), &d);
        // Evaluate on fresh data from the same process.
        let mut test = Dataset::new(4);
        for _ in 0..300 {
            let malware = rng.gen::<bool>();
            test.push(
                vec![
                    if malware { 0.6 } else { 0.4 } + (rng.gen::<f64>() - 0.5) * 0.5,
                    rng.gen(),
                    rng.gen(),
                    rng.gen(),
                ],
                malware,
            );
        }
        let acc = |m: &dyn Classifier| {
            test.iter().filter(|(r, l)| m.predict(r) == *l).count() as f64 / test.len() as f64
        };
        assert!(
            acc(&forest) >= acc(&tree) - 0.02,
            "forest {} vs tree {}",
            acc(&forest),
            acc(&tree)
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let data = xor_data(100, 3);
        let a = RandomForest::fit(&ForestConfig::default(), &data);
        let b = RandomForest::fit(&ForestConfig::default(), &data);
        assert_eq!(a, b);
    }

    #[test]
    fn scores_are_leaf_fractions() {
        let data = xor_data(100, 4);
        let forest = RandomForest::fit(&ForestConfig::default(), &data);
        for (row, _) in data.iter() {
            let s = forest.score(row);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(forest.len(), 32);
    }
}
