//! Logistic regression — the paper's low-complexity, hardware-friendly
//! baseline detector (§4).

use crate::kernel;
use crate::matrix::FeatureMatrix;
use crate::metrics::best_accuracy_threshold;
use crate::model::{Classifier, Dataset};
use crate::scale::Standardizer;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrConfig {
    /// Passes over the training set.
    pub epochs: u32,
    /// Initial SGD step size (decays as 1/(1 + epoch)).
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffling seed.
    pub seed: u64,
    /// Reweight samples inversely to class frequency.
    pub balance_classes: bool,
}

impl Default for LrConfig {
    fn default() -> LrConfig {
        LrConfig {
            epochs: 60,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 0x1e57,
            balance_classes: true,
        }
    }
}

/// A trained logistic-regression detector.
///
/// Scores are probabilities in `[0, 1]`; the operating threshold maximizes
/// training accuracy. Standardization is baked in: callers always pass raw
/// feature vectors.
///
/// # Examples
///
/// ```
/// use rhmd_ml::linear::{LogisticRegression, LrConfig};
/// use rhmd_ml::model::{Classifier, Dataset};
///
/// let data = Dataset::from_flat(
///     1,
///     vec![0.0, 0.1, 0.9, 1.0],
///     vec![false, false, true, true],
/// );
/// let lr = LogisticRegression::fit(&LrConfig::default(), &data);
/// assert!(lr.predict(&[0.95]));
/// assert!(!lr.predict(&[0.05]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    scaler: Standardizer,
    weights: Vec<f64>,
    bias: f64,
    threshold: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Trains with SGD on the log-loss.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(config: &LrConfig, data: &Dataset) -> LogisticRegression {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let scaler = Standardizer::fit(data);
        let scaled = scaler.transform_dataset(data);
        let dims = scaled.dims();
        let n = scaled.len();
        let (pos, neg) = (scaled.positives().max(1), scaled.negatives().max(1));
        let (w_pos, w_neg) = if config.balance_classes {
            (n as f64 / (2.0 * pos as f64), n as f64 / (2.0 * neg as f64))
        } else {
            (1.0, 1.0)
        };

        let mut weights = vec![0.0; dims];
        let mut bias = 0.0;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + 0.05 * f64::from(epoch));
            for &i in &order {
                let row = scaled.row(i);
                let y = f64::from(u8::from(scaled.labels()[i]));
                let sample_weight = if scaled.labels()[i] { w_pos } else { w_neg };
                let z: f64 = bias + weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>();
                let err = (sigmoid(z) - y) * sample_weight;
                for (w, &x) in weights.iter_mut().zip(row) {
                    *w -= lr * (err * x + config.l2 * *w);
                }
                bias -= lr * err;
            }
        }

        let mut model = LogisticRegression {
            scaler,
            weights,
            bias,
            threshold: 0.5,
        };
        let mut scores = vec![0.0; data.len()];
        model.score_batch(data.matrix(), &mut scores);
        let (threshold, _) = best_accuracy_threshold(&scores, data.labels());
        model.threshold = if threshold.is_finite() { threshold } else { 0.5 };
        model
    }

    /// The decision weights in *raw feature space*, as `(weights, bias)`.
    ///
    /// This is the vector θ the paper's evasion strategies read: feature `i`
    /// with a negative weight pushes the score toward "benign", so injecting
    /// instructions that raise feature `i` moves malware across the boundary
    /// (paper §5).
    pub fn input_space_weights(&self) -> (Vec<f64>, f64) {
        let mut raw = Vec::with_capacity(self.weights.len());
        let mut bias = self.bias;
        for ((&w, &m), &s) in self
            .weights
            .iter()
            .zip(self.scaler.mean())
            .zip(self.scaler.std())
        {
            raw.push(w / s);
            bias -= w * m / s;
        }
        (raw, bias)
    }

    /// Internal parts for post-training quantization:
    /// `(scaler, weights, bias, threshold)`.
    pub(crate) fn parts(&self) -> (&Standardizer, &[f64], f64, f64) {
        (&self.scaler, &self.weights, self.bias, self.threshold)
    }
}

impl Classifier for LogisticRegression {
    fn score(&self, x: &[f64]) -> f64 {
        let dot = kernel::dot_standardized(&self.weights, x, self.scaler.mean(), self.scaler.std());
        sigmoid(self.bias + dot)
    }

    fn score_batch(&self, xs: &FeatureMatrix, out: &mut [f64]) {
        // One fused standardize-and-dot sweep per row over the flat matrix:
        // no scratch vector, no per-row virtual dispatch. Same kernel as
        // `score`, so the two paths are bit-identical.
        assert_eq!(xs.len(), out.len(), "output length must match row count");
        let (mean, std) = (self.scaler.mean(), self.scaler.std());
        for (slot, row) in out.iter_mut().zip(xs.rows()) {
            *slot = sigmoid(self.bias + kernel::dot_standardized(&self.weights, row, mean, std));
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn algorithm(&self) -> &'static str {
        "LR"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn gaussian_blobs(n: usize, sep: f64, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new(2);
        for i in 0..n {
            let malware = i % 2 == 0;
            let center = if malware { sep } else { -sep };
            let x = center + rng.gen::<f64>() - 0.5;
            let y = center + rng.gen::<f64>() - 0.5;
            d.push(vec![x, y], malware);
        }
        d
    }

    #[test]
    fn separable_blobs_are_learned() {
        let data = gaussian_blobs(200, 1.0, 1);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        let correct = data
            .iter()
            .filter(|(row, label)| lr.predict(row) == *label)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.98);
    }

    #[test]
    fn overlapping_blobs_are_imperfect_but_better_than_chance() {
        let data = gaussian_blobs(400, 0.15, 2);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        let acc = data
            .iter()
            .filter(|(row, label)| lr.predict(row) == *label)
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.6 && acc < 1.0, "acc {acc}");
    }

    #[test]
    fn scores_are_probabilities() {
        let data = gaussian_blobs(100, 1.0, 3);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        for (row, _) in data.iter() {
            let s = lr.score(row);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn input_space_weights_reproduce_scores() {
        let data = gaussian_blobs(100, 0.8, 4);
        let lr = LogisticRegression::fit(&LrConfig::default(), &data);
        let (w, b) = lr.input_space_weights();
        for (row, _) in data.iter() {
            let logit: f64 = b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>();
            assert!((sigmoid(logit) - lr.score(row)).abs() < 1e-9);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = gaussian_blobs(100, 0.5, 5);
        let a = LogisticRegression::fit(&LrConfig::default(), &data);
        let b = LogisticRegression::fit(&LrConfig::default(), &data);
        assert_eq!(a, b);
    }

    #[test]
    fn class_imbalance_is_handled() {
        // 90% benign: an unbalanced fit would predict everything benign.
        let mut rng = SmallRng::seed_from_u64(6);
        let mut d = Dataset::new(1);
        for i in 0..300 {
            let malware = i % 10 == 0;
            let x = if malware { 0.7 } else { 0.0 } + rng.gen::<f64>() * 0.5;
            d.push(vec![x], malware);
        }
        let lr = LogisticRegression::fit(&LrConfig::default(), &d);
        let c = crate::metrics::Confusion::from_predictions(
            &crate::model::predict_all(&lr, &d),
            d.labels(),
        );
        assert!(c.sensitivity() > 0.7, "sensitivity {}", c.sensitivity());
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
