//! Contiguous row-major feature-matrix storage — the flat memory layout
//! behind the scoring hot path.
//!
//! Every layer that used to shuttle `Vec<Vec<f64>>` around (feature
//! projection, dataset storage, the feature cache, batch scoring) now moves
//! one [`FeatureMatrix`]: a single flat `f64` run plus a row width. Rows are
//! exposed as borrowed slices via [`FeatureMatrix::row`] and the
//! [`Rows`] view (backed by `chunks_exact`), so per-row access costs no
//! allocation and batch kernels can sweep the whole backing slice.
//!
//! Storage is either owned (a `Vec<f64>`, the generation path) or a
//! zero-copy window into a shared [`MappedBuffer`] (the corpus-store path:
//! a mapped shard slice *is* a valid matrix, so scoring 10⁵ programs from
//! disk allocates nothing per program). Mutating methods promote a mapped
//! matrix to owned storage first (copy-on-write), so the full mutable API
//! keeps working on views.
//!
//! # Examples
//!
//! ```
//! use rhmd_ml::matrix::FeatureMatrix;
//!
//! let mut m = FeatureMatrix::new(2);
//! m.push_row(&[1.0, 2.0]);
//! m.push_row(&[3.0, 4.0]);
//! assert_eq!(m.row(1), &[3.0, 4.0]);
//! assert_eq!(m.rows().iter().count(), 2);
//! ```

use crate::mmap::MappedBuffer;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// The backing storage of a [`FeatureMatrix`]: owned rows or a zero-copy
/// window into a shared read-only mapping.
#[derive(Clone)]
enum Storage {
    Owned(Vec<f64>),
    Mapped {
        buf: Arc<MappedBuffer>,
        /// Byte offset of the window inside `buf` (8-byte aligned).
        offset: usize,
        /// Number of `f64` values in the window (`rows * dims`).
        len: usize,
    },
}

/// A dense row-major matrix of feature values: `rows × dims` doubles in one
/// contiguous run.
///
/// Unlike a `Vec<Vec<f64>>`, appending a row never re-boxes and iterating
/// rows never chases pointers; the backing slice is available via
/// [`FeatureMatrix::as_slice`] for kernels that want to sweep it flat.
/// `dims == 0` matrices are supported (every row is the empty slice) so the
/// container composes with degenerate feature specs.
///
/// A matrix constructed with [`FeatureMatrix::from_mapped`] borrows its
/// values from a shared [`MappedBuffer`] instead of owning them; cloning
/// such a matrix clones an [`Arc`], and any mutation first copies the window
/// into owned storage.
#[derive(Clone)]
pub struct FeatureMatrix {
    dims: usize,
    rows: usize,
    data: Storage,
}

impl FeatureMatrix {
    /// An empty matrix of `dims`-wide rows.
    pub fn new(dims: usize) -> FeatureMatrix {
        FeatureMatrix {
            dims,
            rows: 0,
            data: Storage::Owned(Vec::new()),
        }
    }

    /// An empty matrix with backing storage reserved for `rows` rows.
    pub fn with_capacity(dims: usize, rows: usize) -> FeatureMatrix {
        FeatureMatrix {
            dims,
            rows: 0,
            data: Storage::Owned(Vec::with_capacity(dims.saturating_mul(rows))),
        }
    }

    /// Wraps an already-flat buffer as a matrix without copying.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of `dims`-wide rows (including
    /// a non-empty buffer with `dims == 0`).
    pub fn from_flat(dims: usize, data: Vec<f64>) -> FeatureMatrix {
        let rows = if dims == 0 {
            assert!(
                data.is_empty(),
                "a dims == 0 matrix cannot carry flat data"
            );
            0
        } else {
            assert_eq!(
                data.len() % dims,
                0,
                "flat length must be a multiple of dims"
            );
            data.len() / dims
        };
        FeatureMatrix {
            dims,
            rows,
            data: Storage::Owned(data),
        }
    }

    /// A zero-copy view of `rows × dims` little-endian `f64`s starting at
    /// `byte_offset` inside a shared mapping. `None` when the window is out
    /// of bounds, misaligned, or raw views are impossible on this target
    /// (big-endian; see [`crate::mmap::NATIVE_F64_VIEWS`]).
    #[must_use]
    pub fn from_mapped(
        buf: Arc<MappedBuffer>,
        byte_offset: usize,
        dims: usize,
        rows: usize,
    ) -> Option<FeatureMatrix> {
        let len = dims.checked_mul(rows)?;
        // Validate once here so every later `as_slice` is infallible.
        buf.f64_slice(byte_offset, len)?;
        Some(FeatureMatrix {
            dims,
            rows,
            data: Storage::Mapped {
                buf,
                offset: byte_offset,
                len,
            },
        })
    }

    /// Whether this matrix is a zero-copy view over a mapped buffer (false
    /// once any mutation promoted it to owned storage).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, Storage::Mapped { .. })
    }

    /// Copy-on-write promotion: makes the storage owned, copying the mapped
    /// window the first time. Owned matrices are untouched.
    fn make_owned(&mut self) -> &mut Vec<f64> {
        if let Storage::Mapped { .. } = self.data {
            self.data = Storage::Owned(self.as_slice().to_vec());
        }
        match &mut self.data {
            Storage::Owned(v) => v,
            Storage::Mapped { .. } => unreachable!("storage was just promoted"),
        }
    }

    /// Appends one row, adopting its width if the matrix is still untyped
    /// (empty with `dims == 0`).
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong dimensionality.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.dims == 0 {
            self.dims = row.len();
        }
        assert_eq!(row.len(), self.dims, "row has wrong dimensionality");
        self.make_owned().extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends a flat run of whole rows, returning how many were appended.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is not a whole number of rows.
    pub fn extend_flat(&mut self, flat: &[f64]) -> usize {
        if self.dims == 0 {
            assert!(
                flat.is_empty(),
                "a dims == 0 matrix cannot carry flat data"
            );
            return 0;
        }
        assert_eq!(
            flat.len() % self.dims,
            0,
            "flat length must be a multiple of dims"
        );
        let appended = flat.len() / self.dims;
        self.make_owned().extend_from_slice(flat);
        self.rows += appended;
        appended
    }

    /// Reserves backing storage for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        let want = additional.saturating_mul(self.dims);
        self.make_owned().reserve(want);
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range ({})", self.rows);
        &self.as_slice()[i * self.dims..(i + 1) * self.dims]
    }

    /// A lightweight view over all rows.
    #[inline]
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            data: self.as_slice(),
            dims: self.dims,
            len: self.rows,
        }
    }

    /// Iterates rows as slices.
    pub fn iter(&self) -> RowsIter<'_> {
        self.rows().iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row width.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The flat row-major backing slice (`len() * dims()` doubles).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        match &self.data {
            Storage::Owned(v) => v,
            Storage::Mapped { buf, offset, len } => buf
                .f64_slice(*offset, *len)
                .expect("mapped window validated at construction"),
        }
    }

    /// Mutable access to the flat backing slice, for in-place transforms.
    /// Promotes a mapped view to owned storage first.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.make_owned()
    }
}

impl Default for FeatureMatrix {
    fn default() -> FeatureMatrix {
        FeatureMatrix::new(0)
    }
}

impl PartialEq for FeatureMatrix {
    fn eq(&self, other: &FeatureMatrix) -> bool {
        // Value semantics: a mapped view equals the owned matrix holding the
        // same rows, which is exactly what the shard round-trip tests assert.
        self.dims == other.dims && self.rows == other.rows && self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for FeatureMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeatureMatrix")
            .field("dims", &self.dims)
            .field("rows", &self.rows)
            .field("data", &self.as_slice())
            .finish()
    }
}

// Manual serde impls mirroring the former `{dims, rows, data}` derive
// output byte-for-byte, so persisted matrices from earlier versions load
// unchanged. Mapped views serialize their values like owned matrices and
// always deserialize as owned.
impl Serialize for FeatureMatrix {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("dims".to_string(), Serialize::serialize(&self.dims)),
            ("rows".to_string(), Serialize::serialize(&self.rows)),
            (
                "data".to_string(),
                serde::Value::Seq(self.as_slice().iter().map(|v| serde::Value::F64(*v)).collect()),
            ),
        ])
    }
}

impl Deserialize for FeatureMatrix {
    fn deserialize(value: &serde::Value) -> Result<FeatureMatrix, serde::Error> {
        let dims: usize = Deserialize::deserialize(value.field("dims")?)?;
        let rows: usize = Deserialize::deserialize(value.field("rows")?)?;
        let data: Vec<f64> = Deserialize::deserialize(value.field("data")?)?;
        if data.len() != dims.saturating_mul(rows) {
            return Err(serde::Error::msg(format!(
                "FeatureMatrix data length {} does not match {rows} rows x {dims} dims",
                data.len()
            )));
        }
        Ok(FeatureMatrix {
            dims,
            rows,
            data: Storage::Owned(data),
        })
    }
}

impl<'a> IntoIterator for &'a FeatureMatrix {
    type Item = &'a [f64];
    type IntoIter = RowsIter<'a>;

    fn into_iter(self) -> RowsIter<'a> {
        self.iter()
    }
}

/// A borrowed view of a [`FeatureMatrix`]'s rows.
///
/// Copyable and cheap: three words. Supports indexing, iteration, and
/// equality against other row views, so call sites written against the old
/// `&[Vec<f64>]` shape keep reading naturally.
#[derive(Clone, Copy)]
pub struct Rows<'a> {
    data: &'a [f64],
    dims: usize,
    len: usize,
}

impl<'a> Rows<'a> {
    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i`, or `None` when out of range. The returned slice borrows the
    /// underlying matrix, not this view.
    pub fn get(&self, i: usize) -> Option<&'a [f64]> {
        if i >= self.len {
            return None;
        }
        Some(&self.data[i * self.dims..(i + 1) * self.dims])
    }

    /// Iterates rows as slices borrowing the underlying matrix.
    pub fn iter(&self) -> RowsIter<'a> {
        RowsIter {
            chunks: if self.dims == 0 {
                [].chunks_exact(1)
            } else {
                self.data.chunks_exact(self.dims)
            },
            empties: if self.dims == 0 { self.len } else { 0 },
        }
    }
}

impl Index<usize> for Rows<'_> {
    type Output = [f64];

    fn index(&self, i: usize) -> &[f64] {
        self.get(i).expect("row index out of range")
    }
}

impl<'a> IntoIterator for Rows<'a> {
    type Item = &'a [f64];
    type IntoIter = RowsIter<'a>;

    fn into_iter(self) -> RowsIter<'a> {
        self.iter()
    }
}

impl PartialEq for Rows<'_> {
    fn eq(&self, other: &Rows<'_>) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl fmt::Debug for Rows<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Iterator over the rows of a [`FeatureMatrix`], yielding `&[f64]` slices.
#[derive(Debug, Clone)]
pub struct RowsIter<'a> {
    chunks: std::slice::ChunksExact<'a, f64>,
    /// Rows still to yield for `dims == 0` matrices (each the empty slice).
    empties: usize,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [f64];

    fn next(&mut self) -> Option<&'a [f64]> {
        if self.empties > 0 {
            self.empties -= 1;
            return Some(&[]);
        }
        self.chunks.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.chunks.len() + self.empties;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_rows() {
        let m = FeatureMatrix::new(3);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.dims(), 3);
        assert_eq!(m.iter().count(), 0);
        assert!(m.as_slice().is_empty());
    }

    #[test]
    fn single_row_round_trips() {
        let mut m = FeatureMatrix::new(0);
        m.push_row(&[1.0, 2.0, 3.0]);
        assert_eq!(m.dims(), 3, "first push adopts the row width");
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.rows()[0], [1.0, 2.0, 3.0]);
        assert_eq!(m.iter().next(), Some(&[1.0, 2.0, 3.0][..]));
    }

    #[test]
    fn from_flat_splits_rows() {
        let m = FeatureMatrix::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dims")]
    fn from_flat_rejects_partial_rows() {
        let _ = FeatureMatrix::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dims == 0")]
    fn from_flat_rejects_data_without_width() {
        let _ = FeatureMatrix::from_flat(0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn push_row_rejects_width_mismatch() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn extend_flat_appends_whole_rows() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        assert_eq!(m.extend_flat(&[3.0, 4.0, 5.0, 6.0]), 2);
        assert_eq!(m.len(), 3);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn zero_dims_rows_are_empty_slices() {
        let mut m = FeatureMatrix::new(0);
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(1), &[] as &[f64]);
        assert_eq!(m.iter().count(), 2);
        assert!(m.iter().all(<[f64]>::is_empty));
    }

    #[test]
    fn rows_view_compares_and_indexes() {
        let a = FeatureMatrix::from_flat(1, vec![1.0, 2.0]);
        let b = FeatureMatrix::from_flat(1, vec![1.0, 2.0]);
        let c = FeatureMatrix::from_flat(1, vec![1.0, 3.0]);
        assert_eq!(a.rows(), b.rows());
        assert_ne!(a.rows(), c.rows());
        assert_eq!(&a.rows()[1], &[2.0]);
        assert_eq!(a.rows().get(2), None);
        assert_eq!(format!("{:?}", a.rows()), "[[1.0], [2.0]]");
    }

    #[test]
    fn iterator_is_exact_size() {
        let m = FeatureMatrix::from_flat(2, vec![0.0; 8]);
        let mut it = m.iter();
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn reserve_rows_does_not_change_contents() {
        let mut m = FeatureMatrix::from_flat(2, vec![1.0, 2.0]);
        m.reserve_rows(100);
        assert_eq!(m.len(), 1);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    fn mapped(values: &[f64], dims: usize) -> Option<FeatureMatrix> {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = Arc::new(MappedBuffer::from_bytes(&bytes));
        FeatureMatrix::from_mapped(buf, 0, dims, values.len() / dims.max(1))
    }

    #[test]
    fn mapped_view_equals_owned_matrix() {
        if !crate::mmap::NATIVE_F64_VIEWS {
            return;
        }
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let view = mapped(&values, 2).unwrap();
        let owned = FeatureMatrix::from_flat(2, values.to_vec());
        assert!(view.is_mapped());
        assert_eq!(view, owned);
        assert_eq!(view.row(1), &[3.0, 4.0]);
        assert_eq!(view.as_slice(), owned.as_slice());
        // Clones share the mapping instead of copying rows.
        let clone = view.clone();
        assert!(clone.is_mapped());
        assert_eq!(clone, owned);
    }

    #[test]
    fn mutation_promotes_mapped_to_owned() {
        if !crate::mmap::NATIVE_F64_VIEWS {
            return;
        }
        let mut view = mapped(&[1.0, 2.0], 2).unwrap();
        let twin = view.clone();
        view.push_row(&[3.0, 4.0]);
        assert!(!view.is_mapped(), "mutation must copy out of the mapping");
        assert_eq!(view.len(), 2);
        assert_eq!(view.row(1), &[3.0, 4.0]);
        // The sibling view still sees the original mapped bytes.
        assert!(twin.is_mapped());
        assert_eq!(twin.as_slice(), &[1.0, 2.0]);
        let mut scaled = twin.clone();
        scaled.as_mut_slice()[0] = 9.0;
        assert_eq!(scaled.row(0), &[9.0, 2.0]);
        assert_eq!(twin.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn from_mapped_rejects_out_of_bounds_windows() {
        let bytes: Vec<u8> = [1.0f64, 2.0].iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = Arc::new(MappedBuffer::from_bytes(&bytes));
        assert!(FeatureMatrix::from_mapped(Arc::clone(&buf), 0, 2, 2).is_none());
        assert!(FeatureMatrix::from_mapped(Arc::clone(&buf), 4, 1, 1).is_none());
    }

    #[test]
    fn serde_output_matches_owned_format_for_views() {
        if !crate::mmap::NATIVE_F64_VIEWS {
            return;
        }
        let values = [0.5, 1.5];
        let view = mapped(&values, 1).unwrap();
        let owned = FeatureMatrix::from_flat(1, values.to_vec());
        assert_eq!(
            serde::Serialize::serialize(&view),
            serde::Serialize::serialize(&owned)
        );
        let back: FeatureMatrix =
            serde::Deserialize::deserialize(&serde::Serialize::serialize(&view)).unwrap();
        assert!(!back.is_mapped());
        assert_eq!(back, owned);
    }
}
