//! Contiguous row-major feature-matrix storage — the flat memory layout
//! behind the scoring hot path.
//!
//! Every layer that used to shuttle `Vec<Vec<f64>>` around (feature
//! projection, dataset storage, the feature cache, batch scoring) now moves
//! one [`FeatureMatrix`]: a single `Vec<f64>` plus a row width. Rows are
//! exposed as borrowed slices via [`FeatureMatrix::row`] and the
//! [`Rows`] view (backed by `chunks_exact`), so per-row access costs no
//! allocation and batch kernels can sweep the whole backing slice.
//!
//! # Examples
//!
//! ```
//! use rhmd_ml::matrix::FeatureMatrix;
//!
//! let mut m = FeatureMatrix::new(2);
//! m.push_row(&[1.0, 2.0]);
//! m.push_row(&[3.0, 4.0]);
//! assert_eq!(m.row(1), &[3.0, 4.0]);
//! assert_eq!(m.rows().iter().count(), 2);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A dense row-major matrix of feature values: `rows × dims` doubles in one
/// contiguous allocation.
///
/// Unlike a `Vec<Vec<f64>>`, appending a row never re-boxes and iterating
/// rows never chases pointers; the backing slice is available via
/// [`FeatureMatrix::as_slice`] for kernels that want to sweep it flat.
/// `dims == 0` matrices are supported (every row is the empty slice) so the
/// container composes with degenerate feature specs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureMatrix {
    dims: usize,
    rows: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// An empty matrix of `dims`-wide rows.
    pub fn new(dims: usize) -> FeatureMatrix {
        FeatureMatrix {
            dims,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// An empty matrix with backing storage reserved for `rows` rows.
    pub fn with_capacity(dims: usize, rows: usize) -> FeatureMatrix {
        FeatureMatrix {
            dims,
            rows: 0,
            data: Vec::with_capacity(dims.saturating_mul(rows)),
        }
    }

    /// Wraps an already-flat buffer as a matrix without copying.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of `dims`-wide rows (including
    /// a non-empty buffer with `dims == 0`).
    pub fn from_flat(dims: usize, data: Vec<f64>) -> FeatureMatrix {
        let rows = if dims == 0 {
            assert!(
                data.is_empty(),
                "a dims == 0 matrix cannot carry flat data"
            );
            0
        } else {
            assert_eq!(
                data.len() % dims,
                0,
                "flat length must be a multiple of dims"
            );
            data.len() / dims
        };
        FeatureMatrix { dims, rows, data }
    }

    /// Appends one row, adopting its width if the matrix is still untyped
    /// (empty with `dims == 0`).
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong dimensionality.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.dims == 0 {
            self.dims = row.len();
        }
        assert_eq!(row.len(), self.dims, "row has wrong dimensionality");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Appends a flat run of whole rows, returning how many were appended.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is not a whole number of rows.
    pub fn extend_flat(&mut self, flat: &[f64]) -> usize {
        if self.dims == 0 {
            assert!(
                flat.is_empty(),
                "a dims == 0 matrix cannot carry flat data"
            );
            return 0;
        }
        assert_eq!(
            flat.len() % self.dims,
            0,
            "flat length must be a multiple of dims"
        );
        let appended = flat.len() / self.dims;
        self.data.extend_from_slice(flat);
        self.rows += appended;
        appended
    }

    /// Reserves backing storage for `additional` more rows.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional.saturating_mul(self.dims));
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range ({})", self.rows);
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// A lightweight view over all rows.
    #[inline]
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            data: &self.data,
            dims: self.dims,
            len: self.rows,
        }
    }

    /// Iterates rows as slices.
    pub fn iter(&self) -> RowsIter<'_> {
        self.rows().iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row width.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The flat row-major backing slice (`len() * dims()` doubles).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat backing slice, for in-place transforms.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl<'a> IntoIterator for &'a FeatureMatrix {
    type Item = &'a [f64];
    type IntoIter = RowsIter<'a>;

    fn into_iter(self) -> RowsIter<'a> {
        self.iter()
    }
}

/// A borrowed view of a [`FeatureMatrix`]'s rows.
///
/// Copyable and cheap: three words. Supports indexing, iteration, and
/// equality against other row views, so call sites written against the old
/// `&[Vec<f64>]` shape keep reading naturally.
#[derive(Clone, Copy)]
pub struct Rows<'a> {
    data: &'a [f64],
    dims: usize,
    len: usize,
}

impl<'a> Rows<'a> {
    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i`, or `None` when out of range. The returned slice borrows the
    /// underlying matrix, not this view.
    pub fn get(&self, i: usize) -> Option<&'a [f64]> {
        if i >= self.len {
            return None;
        }
        Some(&self.data[i * self.dims..(i + 1) * self.dims])
    }

    /// Iterates rows as slices borrowing the underlying matrix.
    pub fn iter(&self) -> RowsIter<'a> {
        RowsIter {
            chunks: if self.dims == 0 {
                [].chunks_exact(1)
            } else {
                self.data.chunks_exact(self.dims)
            },
            empties: if self.dims == 0 { self.len } else { 0 },
        }
    }
}

impl Index<usize> for Rows<'_> {
    type Output = [f64];

    fn index(&self, i: usize) -> &[f64] {
        self.get(i).expect("row index out of range")
    }
}

impl<'a> IntoIterator for Rows<'a> {
    type Item = &'a [f64];
    type IntoIter = RowsIter<'a>;

    fn into_iter(self) -> RowsIter<'a> {
        self.iter()
    }
}

impl PartialEq for Rows<'_> {
    fn eq(&self, other: &Rows<'_>) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl fmt::Debug for Rows<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Iterator over the rows of a [`FeatureMatrix`], yielding `&[f64]` slices.
#[derive(Debug, Clone)]
pub struct RowsIter<'a> {
    chunks: std::slice::ChunksExact<'a, f64>,
    /// Rows still to yield for `dims == 0` matrices (each the empty slice).
    empties: usize,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [f64];

    fn next(&mut self) -> Option<&'a [f64]> {
        if self.empties > 0 {
            self.empties -= 1;
            return Some(&[]);
        }
        self.chunks.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.chunks.len() + self.empties;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_has_no_rows() {
        let m = FeatureMatrix::new(3);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.dims(), 3);
        assert_eq!(m.iter().count(), 0);
        assert!(m.as_slice().is_empty());
    }

    #[test]
    fn single_row_round_trips() {
        let mut m = FeatureMatrix::new(0);
        m.push_row(&[1.0, 2.0, 3.0]);
        assert_eq!(m.dims(), 3, "first push adopts the row width");
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.rows()[0], [1.0, 2.0, 3.0]);
        assert_eq!(m.iter().next(), Some(&[1.0, 2.0, 3.0][..]));
    }

    #[test]
    fn from_flat_splits_rows() {
        let m = FeatureMatrix::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dims")]
    fn from_flat_rejects_partial_rows() {
        let _ = FeatureMatrix::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dims == 0")]
    fn from_flat_rejects_data_without_width() {
        let _ = FeatureMatrix::from_flat(0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn push_row_rejects_width_mismatch() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn extend_flat_appends_whole_rows() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        assert_eq!(m.extend_flat(&[3.0, 4.0, 5.0, 6.0]), 2);
        assert_eq!(m.len(), 3);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn zero_dims_rows_are_empty_slices() {
        let mut m = FeatureMatrix::new(0);
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(1), &[] as &[f64]);
        assert_eq!(m.iter().count(), 2);
        assert!(m.iter().all(<[f64]>::is_empty));
    }

    #[test]
    fn rows_view_compares_and_indexes() {
        let a = FeatureMatrix::from_flat(1, vec![1.0, 2.0]);
        let b = FeatureMatrix::from_flat(1, vec![1.0, 2.0]);
        let c = FeatureMatrix::from_flat(1, vec![1.0, 3.0]);
        assert_eq!(a.rows(), b.rows());
        assert_ne!(a.rows(), c.rows());
        assert_eq!(&a.rows()[1], &[2.0]);
        assert_eq!(a.rows().get(2), None);
        assert_eq!(format!("{:?}", a.rows()), "[[1.0], [2.0]]");
    }

    #[test]
    fn iterator_is_exact_size() {
        let m = FeatureMatrix::from_flat(2, vec![0.0; 8]);
        let mut it = m.iter();
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn reserve_rows_does_not_change_contents() {
        let mut m = FeatureMatrix::from_flat(2, vec![1.0, 2.0]);
        m.reserve_rows(100);
        assert_eq!(m.len(), 1);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }
}
