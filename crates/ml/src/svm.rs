//! Linear support vector machine trained with Pegasos-style stochastic
//! subgradient descent on the hinge loss — the third surrogate family the
//! paper's attacker uses (§4).

use crate::kernel;
use crate::matrix::FeatureMatrix;
use crate::metrics::best_accuracy_threshold;
use crate::model::{Classifier, Dataset};
use crate::scale::Standardizer;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters for [`LinearSvm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Passes over the training set.
    pub epochs: u32,
    /// Regularization strength λ (Pegasos step sizes are 1/(λ·t)).
    pub lambda: f64,
    /// Shuffling seed.
    pub seed: u64,
    /// Reweight samples inversely to class frequency.
    pub balance_classes: bool,
}

impl Default for SvmConfig {
    fn default() -> SvmConfig {
        SvmConfig {
            epochs: 60,
            lambda: 1e-4,
            seed: 0x5f3c,
            balance_classes: true,
        }
    }
}

/// A trained linear SVM.
///
/// Scores are signed margins; the operating threshold maximizes training
/// accuracy.
///
/// # Examples
///
/// ```
/// use rhmd_ml::svm::{LinearSvm, SvmConfig};
/// use rhmd_ml::model::{Classifier, Dataset};
///
/// let data = Dataset::from_flat(
///     1,
///     vec![-1.0, -0.8, 0.8, 1.0],
///     vec![false, false, true, true],
/// );
/// let svm = LinearSvm::fit(&SvmConfig::default(), &data);
/// assert!(svm.predict(&[0.9]));
/// assert!(!svm.predict(&[-0.9]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    scaler: Standardizer,
    weights: Vec<f64>,
    bias: f64,
    threshold: f64,
}

impl LinearSvm {
    /// Trains with the Pegasos subgradient method.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(config: &SvmConfig, data: &Dataset) -> LinearSvm {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let scaler = Standardizer::fit(data);
        let scaled = scaler.transform_dataset(data);
        let dims = scaled.dims();
        let n = scaled.len();
        let (pos, neg) = (scaled.positives().max(1), scaled.negatives().max(1));
        let (wt_pos, wt_neg) = if config.balance_classes {
            (n as f64 / (2.0 * pos as f64), n as f64 / (2.0 * neg as f64))
        } else {
            (1.0, 1.0)
        };

        let mut weights = vec![0.0; dims];
        let mut bias = 0.0;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut t = 0u64;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (config.lambda * t as f64);
                let row = scaled.row(i);
                let y = if scaled.labels()[i] { 1.0 } else { -1.0 };
                let sample_weight = if scaled.labels()[i] { wt_pos } else { wt_neg };
                let margin: f64 =
                    y * (bias + weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>());
                // Regularization shrink.
                let shrink = 1.0 - (eta * config.lambda).min(0.999);
                for w in &mut weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    let step = eta * y * sample_weight;
                    for (w, &x) in weights.iter_mut().zip(row) {
                        *w += step * x;
                    }
                    bias += step * 0.1; // unregularized bias, damped
                }
            }
        }

        let mut model = LinearSvm {
            scaler,
            weights,
            bias,
            threshold: 0.0,
        };
        let mut scores = vec![0.0; data.len()];
        model.score_batch(data.matrix(), &mut scores);
        let (threshold, _) = best_accuracy_threshold(&scores, data.labels());
        model.threshold = if threshold.is_finite() { threshold } else { 0.0 };
        model
    }

    /// Internal parts for post-training quantization:
    /// `(scaler, weights, bias, threshold)`.
    pub(crate) fn parts(&self) -> (&Standardizer, &[f64], f64, f64) {
        (&self.scaler, &self.weights, self.bias, self.threshold)
    }

    /// The decision weights in raw feature space, as `(weights, bias)` —
    /// directly analogous to [`crate::linear::LogisticRegression::input_space_weights`].
    pub fn input_space_weights(&self) -> (Vec<f64>, f64) {
        let mut raw = Vec::with_capacity(self.weights.len());
        let mut bias = self.bias;
        for ((&w, &m), &s) in self
            .weights
            .iter()
            .zip(self.scaler.mean())
            .zip(self.scaler.std())
        {
            raw.push(w / s);
            bias -= w * m / s;
        }
        (raw, bias)
    }
}

impl Classifier for LinearSvm {
    fn score(&self, x: &[f64]) -> f64 {
        self.bias + kernel::dot_standardized(&self.weights, x, self.scaler.mean(), self.scaler.std())
    }

    fn score_batch(&self, xs: &FeatureMatrix, out: &mut [f64]) {
        // Fused standardize-and-margin sweep, same kernel as `score`.
        assert_eq!(xs.len(), out.len(), "output length must match row count");
        let (mean, std) = (self.scaler.mean(), self.scaler.std());
        for (slot, row) in out.iter_mut().zip(xs.rows()) {
            *slot = self.bias + kernel::dot_standardized(&self.weights, row, mean, std);
        }
    }

    fn threshold(&self) -> f64 {
        self.threshold
    }

    fn algorithm(&self) -> &'static str {
        "SVM"
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(n: usize, sep: f64, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut d = Dataset::new(2);
        for i in 0..n {
            let malware = i % 2 == 0;
            let c = if malware { sep } else { -sep };
            d.push(
                vec![c + rng.gen::<f64>() - 0.5, c + rng.gen::<f64>() - 0.5],
                malware,
            );
        }
        d
    }

    #[test]
    fn separable_data_is_learned() {
        let data = blobs(200, 1.0, 1);
        let svm = LinearSvm::fit(&SvmConfig::default(), &data);
        let acc = data
            .iter()
            .filter(|(row, label)| svm.predict(row) == *label)
            .count() as f64
            / data.len() as f64;
        assert!(acc > 0.98, "acc {acc}");
    }

    #[test]
    fn margins_have_correct_sign() {
        let data = blobs(200, 1.5, 2);
        let svm = LinearSvm::fit(&SvmConfig::default(), &data);
        assert!(svm.score(&[2.0, 2.0]) > svm.score(&[-2.0, -2.0]));
    }

    #[test]
    fn training_is_deterministic() {
        let data = blobs(100, 0.5, 3);
        assert_eq!(
            LinearSvm::fit(&SvmConfig::default(), &data),
            LinearSvm::fit(&SvmConfig::default(), &data)
        );
    }

    #[test]
    fn input_space_weights_reproduce_scores() {
        let data = blobs(100, 0.8, 4);
        let svm = LinearSvm::fit(&SvmConfig::default(), &data);
        let (w, b) = svm.input_space_weights();
        for (row, _) in data.iter() {
            let margin: f64 = b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>();
            assert!((margin - svm.score(row)).abs() < 1e-9);
        }
    }
}
