//! Shared scoring kernels: one canonical summation order used by *both*
//! the per-row `score` path and the batched `score_batch` path, so the two
//! are bit-identical by construction.
//!
//! Two implementations of the same contract live here:
//!
//! * [`scalar`] — the reference kernels (unrolled over four independent
//!   accumulators, combined as `((a0 + a1) + (a2 + a3)) + tail`); every
//!   golden number in the repo was produced by these.
//! * [`simd`] — explicit AVX2 lanes for the same sweeps. Lane `k`
//!   accumulates exactly the elements `i ≡ k (mod 4)` that scalar
//!   accumulator `a_k` does, every lane operation is the IEEE-identical
//!   elementwise counterpart of the scalar op (no FMA contraction, no
//!   reciprocal-multiply — the division stays a division), and the final
//!   combine extracts the lanes and adds them in the scalar order. The
//!   SIMD kernels are therefore **bit-identical** to the scalar kernels on
//!   every input, which `tests/prop_simd.rs` pins differentially.
//!
//! The crate-level [`dot`] / [`dot_standardized`] entry points dispatch to
//! [`simd`] when the `simd` cargo feature is enabled and to [`scalar`]
//! otherwise; both implementations are always compiled so the differential
//! harness can compare them regardless of the feature set.

/// Reference kernels — the exact PR-5 scalar sweeps.
pub mod scalar {
    use crate::scale::Standardizer;

    /// Standardizes one value exactly as [`Standardizer::transform_into`]
    /// does: non-finite inputs map to the training mean (zero) and the
    /// result clamps to ±[`Standardizer::CLAMP`].
    #[inline]
    pub fn standardize_one(v: f64, mean: f64, std: f64) -> f64 {
        if v.is_finite() {
            ((v - mean) / std).clamp(-Standardizer::CLAMP, Standardizer::CLAMP)
        } else {
            0.0
        }
    }

    /// Dot product with four independent accumulators.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn dot(w: &[f64], x: &[f64]) -> f64 {
        assert_eq!(w.len(), x.len(), "dot operand length mismatch");
        let split = w.len() - w.len() % 4;
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut i = 0;
        while i < split {
            a0 += w[i] * x[i];
            a1 += w[i + 1] * x[i + 1];
            a2 += w[i + 2] * x[i + 2];
            a3 += w[i + 3] * x[i + 3];
            i += 4;
        }
        let mut tail = 0.0f64;
        while i < w.len() {
            tail += w[i] * x[i];
            i += 1;
        }
        ((a0 + a1) + (a2 + a3)) + tail
    }

    /// Fused standardize-and-dot: `w · standardize(x)` in one sweep, with
    /// the same four-accumulator order as [`dot`] and no intermediate
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if any operand length differs.
    #[inline]
    pub fn dot_standardized(w: &[f64], x: &[f64], mean: &[f64], std: &[f64]) -> f64 {
        assert_eq!(w.len(), x.len(), "dot operand length mismatch");
        assert_eq!(w.len(), mean.len(), "standardizer length mismatch");
        assert_eq!(w.len(), std.len(), "standardizer length mismatch");
        let split = w.len() - w.len() % 4;
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut i = 0;
        while i < split {
            a0 += w[i] * standardize_one(x[i], mean[i], std[i]);
            a1 += w[i + 1] * standardize_one(x[i + 1], mean[i + 1], std[i + 1]);
            a2 += w[i + 2] * standardize_one(x[i + 2], mean[i + 2], std[i + 2]);
            a3 += w[i + 3] * standardize_one(x[i + 3], mean[i + 3], std[i + 3]);
            i += 4;
        }
        let mut tail = 0.0f64;
        while i < w.len() {
            tail += w[i] * standardize_one(x[i], mean[i], std[i]);
            i += 1;
        }
        ((a0 + a1) + (a2 + a3)) + tail
    }
}

pub(crate) use scalar::standardize_one;

/// Explicit-lane kernels with runtime AVX2 dispatch.
///
/// On x86-64 with AVX2 these run four `f64` lanes per step; elsewhere (or
/// without AVX2 at runtime) they fall back to [`scalar`]. Either way the
/// results are bit-identical to [`scalar`] — the lanes mirror the scalar
/// accumulators element for element.
pub mod simd {
    /// Whether the AVX2 lanes are actually used on this machine.
    #[inline]
    pub fn avx2_active() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Dot product; bit-identical to [`super::scalar::dot`].
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn dot(w: &[f64], x: &[f64]) -> f64 {
        assert_eq!(w.len(), x.len(), "dot operand length mismatch");
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just checked.
                return unsafe { avx2::dot(w, x) };
            }
        }
        super::scalar::dot(w, x)
    }

    /// Fused standardize-and-dot; bit-identical to
    /// [`super::scalar::dot_standardized`].
    ///
    /// # Panics
    ///
    /// Panics if any operand length differs.
    #[inline]
    pub fn dot_standardized(w: &[f64], x: &[f64], mean: &[f64], std: &[f64]) -> f64 {
        assert_eq!(w.len(), x.len(), "dot operand length mismatch");
        assert_eq!(w.len(), mean.len(), "standardizer length mismatch");
        assert_eq!(w.len(), std.len(), "standardizer length mismatch");
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just checked.
                return unsafe { avx2::dot_standardized(w, x, mean, std) };
            }
        }
        super::scalar::dot_standardized(w, x, mean, std)
    }

    #[cfg(target_arch = "x86_64")]
    mod avx2 {
        use crate::scale::Standardizer;
        use std::arch::x86_64::{
            __m256d, _mm256_add_pd, _mm256_and_pd, _mm256_castsi256_pd, _mm256_cmp_pd,
            _mm256_div_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd, _mm256_mul_pd,
            _mm256_set1_epi64x, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd,
            _mm256_sub_pd, _CMP_LT_OQ,
        };

        /// Extracts the four lanes and combines them in the scalar
        /// kernels' order: `(a0 + a1) + (a2 + a3)`.
        #[inline(always)]
        unsafe fn combine(acc: __m256d) -> f64 {
            let mut lanes = [0.0f64; 4];
            // SAFETY: `lanes` is a 4-element f64 buffer; unaligned store.
            unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc) };
            (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
        }

        /// # Safety
        ///
        /// Caller must ensure AVX2 is available and `w.len() == x.len()`.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn dot(w: &[f64], x: &[f64]) -> f64 {
            let n = w.len();
            let split = n - n % 4;
            // SAFETY: every load reads 4 f64s at i..i+4 with i+4 <= split
            // <= n, inside both slices.
            unsafe {
                let mut acc = _mm256_setzero_pd();
                let mut i = 0;
                while i < split {
                    let wv = _mm256_loadu_pd(w.as_ptr().add(i));
                    let xv = _mm256_loadu_pd(x.as_ptr().add(i));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, xv));
                    i += 4;
                }
                let mut tail = 0.0f64;
                while i < n {
                    tail += w[i] * x[i];
                    i += 1;
                }
                combine(acc) + tail
            }
        }

        /// # Safety
        ///
        /// Caller must ensure AVX2 is available and all slices share one
        /// length.
        ///
        /// Lane semantics match [`crate::kernel::scalar::standardize_one`]
        /// exactly: the clamp is `max` then `min` (same result as
        /// `f64::clamp` for every non-NaN `z`, and `z` is NaN only when
        /// the input is non-finite), and the finite mask then forces
        /// non-finite inputs to +0.0 — the same +0.0 the scalar branch
        /// returns.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn dot_standardized(
            w: &[f64],
            x: &[f64],
            mean: &[f64],
            std: &[f64],
        ) -> f64 {
            let n = w.len();
            let split = n - n % 4;
            // SAFETY: every load reads 4 f64s at i..i+4 with i+4 <= split
            // <= n, inside all four slices.
            unsafe {
                let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
                let inf = _mm256_set1_pd(f64::INFINITY);
                let hi = _mm256_set1_pd(Standardizer::CLAMP);
                let lo = _mm256_set1_pd(-Standardizer::CLAMP);
                let mut acc = _mm256_setzero_pd();
                let mut i = 0;
                while i < split {
                    let v = _mm256_loadu_pd(x.as_ptr().add(i));
                    let m = _mm256_loadu_pd(mean.as_ptr().add(i));
                    let s = _mm256_loadu_pd(std.as_ptr().add(i));
                    let wv = _mm256_loadu_pd(w.as_ptr().add(i));
                    let z = _mm256_div_pd(_mm256_sub_pd(v, m), s);
                    let z = _mm256_min_pd(_mm256_max_pd(z, lo), hi);
                    // is_finite(v) ⇔ |v| < ∞ (NaN compares false, ordered).
                    let finite = _mm256_cmp_pd::<_CMP_LT_OQ>(_mm256_and_pd(v, abs_mask), inf);
                    let z = _mm256_and_pd(z, finite);
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, z));
                    i += 4;
                }
                let mut tail = 0.0f64;
                while i < n {
                    tail += w[i] * super::super::scalar::standardize_one(x[i], mean[i], std[i]);
                    i += 1;
                }
                combine(acc) + tail
            }
        }
    }
}

/// Dot product with four independent accumulators, dispatched to the SIMD
/// lanes when the `simd` feature is enabled ([`scalar::dot`] otherwise).
/// Bit-identical either way.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot(w: &[f64], x: &[f64]) -> f64 {
    #[cfg(feature = "simd")]
    {
        simd::dot(w, x)
    }
    #[cfg(not(feature = "simd"))]
    {
        scalar::dot(w, x)
    }
}

/// Fused standardize-and-dot: `w · standardize(x)` in one sweep, dispatched
/// like [`dot`]. Bit-identical either way.
///
/// # Panics
///
/// Panics if any operand length differs.
#[inline]
pub fn dot_standardized(w: &[f64], x: &[f64], mean: &[f64], std: &[f64]) -> f64 {
    #[cfg(feature = "simd")]
    {
        simd::dot_standardized(w, x, mean, std)
    }
    #[cfg(not(feature = "simd"))]
    {
        scalar::dot_standardized(w, x, mean, std)
    }
}

/// Dot product of integer-valued quantized weights against dequantized
/// inputs, in the canonical four-accumulator order. Used by the quantized
/// kernels; the `i16` storage keeps quantized weight tensors 4x smaller
/// than `f64` while every product stays exactly representable.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot_i16(qw: &[i16], x: &[f64]) -> f64 {
    assert_eq!(qw.len(), x.len(), "dot operand length mismatch");
    let split = qw.len() - qw.len() % 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i < split {
        a0 += f64::from(qw[i]) * x[i];
        a1 += f64::from(qw[i + 1]) * x[i + 1];
        a2 += f64::from(qw[i + 2]) * x[i + 2];
        a3 += f64::from(qw[i + 3]) * x[i + 3];
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < qw.len() {
        tail += f64::from(qw[i]) * x[i];
        i += 1;
    }
    ((a0 + a1) + (a2 + a3)) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_reference_on_awkward_lengths() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 13] {
            let w: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
            let x: Vec<f64> = (0..n).map(|i| 1.0 - 0.25 * i as f64).collect();
            let reference: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!((dot(&w, &x) - reference).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn fused_matches_standardize_then_dot() {
        let w = [0.3, -1.2, 4.0, 0.0, 2.5];
        let x = [10.0, f64::NAN, -3.0, 1e300, 0.5];
        let mean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let std = [1.0, 2.0, 0.5, 1.0, 4.0];
        let z: Vec<f64> = x
            .iter()
            .zip(&mean)
            .zip(&std)
            .map(|((&v, &m), &s)| standardize_one(v, m, s))
            .collect();
        assert_eq!(dot_standardized(&w, &x, &mean, &std), dot(&w, &z));
    }

    #[test]
    fn dot_is_deterministic_bitwise() {
        let w: Vec<f64> = (0..17).map(|i| (i as f64).sin()).collect();
        let x: Vec<f64> = (0..17).map(|i| (i as f64).cos()).collect();
        assert_eq!(dot(&w, &x).to_bits(), dot(&w, &x).to_bits());
    }

    #[test]
    fn simd_dot_is_bit_identical_to_scalar() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 11, 16, 17, 64, 65] {
            let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.77).sin() * 3.0).collect();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 1.31).cos() * 1e3).collect();
            assert_eq!(
                scalar::dot(&w, &x).to_bits(),
                simd::dot(&w, &x).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn simd_fused_is_bit_identical_to_scalar_on_adversarial_inputs() {
        // NaN, ±∞, out-of-distribution magnitudes, exact-mean values and
        // negative-zero divisions all in one sweep, at a non-lane-multiple
        // length.
        let x = [
            10.0,
            f64::NAN,
            -3.0,
            1e300,
            0.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            2.0,
            -1e-320,
            0.0,
            7.5,
        ];
        let w: Vec<f64> = (0..x.len()).map(|i| (i as f64 - 4.0) * 0.3).collect();
        let mean: Vec<f64> = (0..x.len()).map(|i| i as f64 * 0.5).collect();
        let std: Vec<f64> = (0..x.len()).map(|i| 1e-9 + i as f64).collect();
        assert_eq!(
            scalar::dot_standardized(&w, &x, &mean, &std).to_bits(),
            simd::dot_standardized(&w, &x, &mean, &std).to_bits()
        );
    }

    #[test]
    fn dot_i16_matches_f64_reference() {
        let qw: Vec<i16> = vec![-32768, -127, 0, 1, 42, 32767, 7];
        let x: Vec<f64> = (0..qw.len()).map(|i| (i as f64 - 3.0) * 0.25).collect();
        let wf: Vec<f64> = qw.iter().map(|&q| f64::from(q)).collect();
        assert_eq!(dot_i16(&qw, &x).to_bits(), dot(&wf, &x).to_bits());
    }
}
