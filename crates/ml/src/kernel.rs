//! Shared scoring kernels: one canonical summation order used by *both*
//! the per-row `score` path and the batched `score_batch` path, so the two
//! are bit-identical by construction.
//!
//! The dot products are unrolled over four independent accumulators
//! (combined as `((a0 + a1) + (a2 + a3)) + tail`) so the compiler can
//! vectorize the sweep; every caller — single row or whole matrix — goes
//! through the same functions and therefore reassociates identically.

use crate::scale::Standardizer;

/// Standardizes one value exactly as [`Standardizer::transform_into`] does:
/// non-finite inputs map to the training mean (zero) and the result clamps
/// to ±[`Standardizer::CLAMP`].
#[inline]
pub(crate) fn standardize_one(v: f64, mean: f64, std: f64) -> f64 {
    if v.is_finite() {
        ((v - mean) / std).clamp(-Standardizer::CLAMP, Standardizer::CLAMP)
    } else {
        0.0
    }
}

/// Dot product with four independent accumulators.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub(crate) fn dot(w: &[f64], x: &[f64]) -> f64 {
    assert_eq!(w.len(), x.len(), "dot operand length mismatch");
    let split = w.len() - w.len() % 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i < split {
        a0 += w[i] * x[i];
        a1 += w[i + 1] * x[i + 1];
        a2 += w[i + 2] * x[i + 2];
        a3 += w[i + 3] * x[i + 3];
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < w.len() {
        tail += w[i] * x[i];
        i += 1;
    }
    ((a0 + a1) + (a2 + a3)) + tail
}

/// Fused standardize-and-dot: `w · standardize(x)` in one sweep, with the
/// same four-accumulator order as [`dot`] and no intermediate buffer.
///
/// # Panics
///
/// Panics if any operand length differs.
#[inline]
pub(crate) fn dot_standardized(w: &[f64], x: &[f64], mean: &[f64], std: &[f64]) -> f64 {
    assert_eq!(w.len(), x.len(), "dot operand length mismatch");
    assert_eq!(w.len(), mean.len(), "standardizer length mismatch");
    assert_eq!(w.len(), std.len(), "standardizer length mismatch");
    let split = w.len() - w.len() % 4;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i < split {
        a0 += w[i] * standardize_one(x[i], mean[i], std[i]);
        a1 += w[i + 1] * standardize_one(x[i + 1], mean[i + 1], std[i + 1]);
        a2 += w[i + 2] * standardize_one(x[i + 2], mean[i + 2], std[i + 2]);
        a3 += w[i + 3] * standardize_one(x[i + 3], mean[i + 3], std[i + 3]);
        i += 4;
    }
    let mut tail = 0.0f64;
    while i < w.len() {
        tail += w[i] * standardize_one(x[i], mean[i], std[i]);
        i += 1;
    }
    ((a0 + a1) + (a2 + a3)) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_reference_on_awkward_lengths() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 13] {
            let w: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
            let x: Vec<f64> = (0..n).map(|i| 1.0 - 0.25 * i as f64).collect();
            let reference: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
            assert!((dot(&w, &x) - reference).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn fused_matches_standardize_then_dot() {
        let w = [0.3, -1.2, 4.0, 0.0, 2.5];
        let x = [10.0, f64::NAN, -3.0, 1e300, 0.5];
        let mean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let std = [1.0, 2.0, 0.5, 1.0, 4.0];
        let z: Vec<f64> = x
            .iter()
            .zip(&mean)
            .zip(&std)
            .map(|((&v, &m), &s)| standardize_one(v, m, s))
            .collect();
        assert_eq!(dot_standardized(&w, &x, &mean, &std), dot(&w, &z));
    }

    #[test]
    fn dot_is_deterministic_bitwise() {
        let w: Vec<f64> = (0..17).map(|i| (i as f64).sin()).collect();
        let x: Vec<f64> = (0..17).map(|i| (i as f64).cos()).collect();
        assert_eq!(dot(&w, &x).to_bits(), dot(&w, &x).to_bits());
    }
}
