//! Read-only memory-mapped byte buffers backing zero-copy feature views.
//!
//! The corpus store persists feature matrices as little-endian `f64` rows;
//! a [`MappedBuffer`] maps the shard file and hands out `&[f64]` windows
//! directly over the page cache, so opening a 10⁵-program shard costs pages,
//! not a resident copy. No mmap crate is vendored, so the mapping goes
//! through two hand-declared libc calls (`mmap`/`munmap`), `cfg(unix)`-gated
//! with a heap fallback that reads the file into 8-byte-aligned storage —
//! behaviour is identical either way, only residency differs.
//!
//! Safety rests on three invariants: mappings are `PROT_READ`/`MAP_PRIVATE`
//! (never written, never shared mutably), the pointer/length pair is fixed
//! for the buffer's lifetime, and [`MappedBuffer::f64_slice`] refuses any
//! window that is out of bounds, misaligned, or on a big-endian target
//! (shard bytes are little-endian).

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Whether `&[f64]` views over raw shard bytes are valid on this target
/// (shards store little-endian `f64`; big-endian targets must decode).
pub const NATIVE_F64_VIEWS: bool = cfg!(target_endian = "little");

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// An immutable byte buffer, either memory-mapped from a file or held on the
/// heap (8-byte aligned in both cases, so `f64` views are always legal at
/// aligned offsets).
pub struct MappedBuffer {
    ptr: *const u8,
    len: usize,
    /// Bytes to `munmap` on drop; `0` means heap-backed.
    mapped: usize,
    /// Backing storage of the heap path (`u64` elements force 8-byte
    /// alignment). Empty when the buffer is a real mapping.
    _heap: Vec<u64>,
}

// The buffer is strictly read-only after construction and the mapping (or
// heap allocation) lives exactly as long as the struct, so shared access
// from any thread is sound.
unsafe impl Send for MappedBuffer {}
unsafe impl Sync for MappedBuffer {}

impl MappedBuffer {
    /// Maps `path` read-only, falling back to an aligned heap read when
    /// mapping is unavailable (non-unix targets, exotic filesystems).
    ///
    /// # Errors
    ///
    /// Any I/O error opening or reading the file.
    pub fn map_file(path: &Path) -> io::Result<MappedBuffer> {
        let mut file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                rhmd_obs::incr("store.map");
                return Ok(MappedBuffer {
                    ptr: ptr as *const u8,
                    len,
                    mapped: len,
                    _heap: Vec::new(),
                });
            }
        }
        let mut heap = vec![0u64; len.div_ceil(8)];
        if len > 0 {
            let bytes = unsafe {
                std::slice::from_raw_parts_mut(heap.as_mut_ptr() as *mut u8, len)
            };
            file.read_exact(bytes)?;
        }
        rhmd_obs::incr("store.map_fallback");
        Ok(MappedBuffer::from_heap(heap, len))
    }

    /// A heap-backed buffer holding a copy of `bytes` (tests, in-memory
    /// round trips).
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> MappedBuffer {
        let mut heap = vec![0u64; bytes.len().div_ceil(8)];
        if !bytes.is_empty() {
            let dst = unsafe {
                std::slice::from_raw_parts_mut(heap.as_mut_ptr() as *mut u8, bytes.len())
            };
            dst.copy_from_slice(bytes);
        }
        MappedBuffer::from_heap(heap, bytes.len())
    }

    fn from_heap(heap: Vec<u64>, len: usize) -> MappedBuffer {
        MappedBuffer {
            ptr: heap.as_ptr() as *const u8,
            len,
            mapped: 0,
            _heap: heap,
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the buffer is a real `mmap` (false = heap fallback).
    #[must_use]
    pub fn was_mapped(&self) -> bool {
        self.mapped > 0
    }

    /// The whole buffer as bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// `count` little-endian `f64`s starting at `byte_offset`, as a borrowed
    /// slice over the mapping. `None` when the window is out of bounds, the
    /// offset is not 8-byte aligned, or the target is big-endian (callers
    /// must then decode with [`f64::from_le_bytes`]).
    #[must_use]
    pub fn f64_slice(&self, byte_offset: usize, count: usize) -> Option<&[f64]> {
        if !NATIVE_F64_VIEWS {
            return None;
        }
        let bytes = count.checked_mul(8)?;
        let end = byte_offset.checked_add(bytes)?;
        if end > self.len {
            return None;
        }
        if count == 0 {
            return Some(&[]);
        }
        let ptr = unsafe { self.ptr.add(byte_offset) };
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<f64>()) {
            return None;
        }
        Some(unsafe { std::slice::from_raw_parts(ptr as *const f64, count) })
    }
}

impl Drop for MappedBuffer {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.mapped > 0 {
            unsafe {
                sys::munmap(self.ptr as *mut std::os::raw::c_void, self.mapped);
            }
        }
    }
}

impl std::fmt::Debug for MappedBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedBuffer")
            .field("len", &self.len)
            .field("mapped", &self.was_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("rhmd-mmap-{tag}-{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn map_file_round_trips_bytes() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096 + 13).collect();
        let path = temp_file("roundtrip", &payload);
        let buf = MappedBuffer::map_file(&path).unwrap();
        assert_eq!(buf.len(), payload.len());
        assert_eq!(buf.as_bytes(), payload.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn f64_views_decode_little_endian_rows() {
        let values = [1.5f64, -2.25, 0.0, f64::MIN_POSITIVE];
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = MappedBuffer::from_bytes(&bytes);
        if NATIVE_F64_VIEWS {
            assert_eq!(buf.f64_slice(0, 4).unwrap(), &values);
            assert_eq!(buf.f64_slice(8, 2).unwrap(), &values[1..3]);
        }
        // Out of bounds and misaligned windows are refused, never UB.
        assert!(buf.f64_slice(0, 5).is_none());
        assert!(buf.f64_slice(4, 1).is_none());
        assert!(buf.f64_slice(usize::MAX, 1).is_none());
    }

    #[test]
    fn empty_buffers_are_safe() {
        let path = temp_file("empty", &[]);
        let buf = MappedBuffer::map_file(&path).unwrap();
        assert!(buf.is_empty());
        assert_eq!(buf.as_bytes(), &[] as &[u8]);
        if NATIVE_F64_VIEWS {
            assert_eq!(buf.f64_slice(0, 0).unwrap(), &[] as &[f64]);
        }
        assert!(buf.f64_slice(0, 1).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buffers_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappedBuffer>();
    }
}
