//! Streaming window extraction: the trace→features hot path.
//!
//! The two-phase pipeline ([`crate::pipeline::trace_subwindows`] then
//! [`crate::pipeline::project_windows_into`]) materializes a
//! `Vec<RawWindow>` per program before projecting it. This module folds the
//! whole chain — µarch simulation, subwindow slicing, fault injection,
//! gap-tolerant aggregation, and feature projection — into one pass over
//! the batched instruction stream, writing finished rows directly into
//! caller-owned flat buffers.
//!
//! Everything here is **bit-identical** to the two-phase path:
//!
//! * the internal subwindow cursor advances a [`CoreModel`] in per-run strides using
//!   the memoized structure paths, which evolve cache/TLB state exactly as
//!   the per-event scan does (pinned by unit tests in `rhmd-uarch` and the
//!   property suite in `tests/prop_stream.rs`);
//! * instruction fetches are only batched within one I-cache-line/page
//!   span, so the shared L2 sees misses in the same order as the per-event
//!   path;
//! * runs never cross a subwindow seal, so every miss lands in the same
//!   window as the per-event path;
//! * each stream lane replays [`crate::window::apply_faults`] +
//!   [`crate::window::aggregate_with_gaps`] + projection incrementally with
//!   the same channel order, pending-merge, and trailing-chunk semantics.

use crate::vector::FeatureSpec;
use crate::window::{delta_bin, RawWindow, SUBWINDOW};
use rhmd_trace::exec::{ExecEvent, ExecLimits, ExecSummary, Observer};
use rhmd_trace::flat::{BatchSink, FlatInstr, FlatProgram};
use rhmd_trace::isa::{INSTR_BYTES, OPCODE_COUNT};
use rhmd_trace::Program;
use rhmd_uarch::events::COUNTER_DIMS;
use rhmd_uarch::faults::FaultModel;
use rhmd_uarch::{CoreConfig, CoreModel, DataMemo};

/// Receiver of sealed subwindows emitted by a [`SubwindowCursor`].
trait SubwindowSink {
    fn subwindow(&mut self, window: RawWindow);
}

impl SubwindowSink for Vec<RawWindow> {
    fn subwindow(&mut self, window: RawWindow) {
        self.push(window);
    }
}

impl SubwindowSink for Vec<StreamLane<'_>> {
    fn subwindow(&mut self, window: RawWindow) {
        for lane in self.iter_mut() {
            lane.push(&window);
        }
    }
}

/// Drives a [`CoreModel`] over the batched instruction stream and slices it
/// into [`SUBWINDOW`]-sized [`RawWindow`]s — the streaming replacement for
/// [`crate::window::WindowAccumulator`].
#[derive(Debug)]
struct SubwindowCursor {
    core: CoreModel,
    current: RawWindow,
    last_mem_addr: Option<u64>,
    /// Bytes sharing one I-cache line and one page; fetch-batching span.
    span: u64,
    sealed: u64,
    /// Per-stream D-TLB/D-cache memos, indexed by the flat IR's stream id
    /// (u8-ranged, so 256 covers every stream including scratch). The
    /// core's internal depth-1 memos thrash when streams interleave; these
    /// recover each stream's own locality.
    memos: Vec<DataMemo>,
}

impl SubwindowCursor {
    fn new(config: CoreConfig) -> SubwindowCursor {
        let core = CoreModel::new(config);
        let span = core.fetch_span_bytes();
        SubwindowCursor {
            core,
            current: RawWindow::default(),
            last_mem_addr: None,
            span,
            sealed: 0,
            memos: vec![DataMemo::default(); 256],
        }
    }

    /// Processes one body run. Splits it so no sub-run crosses an I-cache
    /// line/page boundary (keeping L2 access order identical to the
    /// per-event path) or a subwindow seal (keeping miss attribution in the
    /// right window), then advances the core in bulk per sub-run.
    fn body_run(&mut self, pc: u64, instrs: &[FlatInstr], addrs: &[u64], sink: &mut dyn SubwindowSink) {
        let mut i = 0usize;
        let mut pc = pc;
        while i < instrs.len() {
            let window_room = u64::from(SUBWINDOW) - self.current.instructions;
            // Instructions from pc to the end of its line/page span.
            let seg_end = (pc | (self.span - 1)) + 1;
            let fit = if seg_end >= pc + INSTR_BYTES {
                (seg_end - pc - INSTR_BYTES) / INSTR_BYTES + 1
            } else {
                0 // fetch straddles the span boundary (unaligned pc)
            };
            let run = if fit == 0 {
                1
            } else {
                fit.min(window_room).min((instrs.len() - i) as u64) as usize
            };
            if fit == 0 {
                self.core.fetch_one(pc);
            } else {
                self.core.fetch_line_run(pc, run as u64);
            }
            for j in i..i + run {
                let ins = &instrs[j];
                self.current.opcode_counts[ins.opcode as usize] += 1;
                if ins.has_mem() {
                    let addr = addrs[j];
                    if let Some(prev) = self.last_mem_addr {
                        self.current.mem_delta_hist[delta_bin(prev, addr)] += 1;
                    }
                    self.last_mem_addr = Some(addr);
                    self.core.data_access_hinted(
                        addr,
                        ins.size,
                        ins.is_load(),
                        ins.is_store(),
                        &mut self.memos[ins.stream as usize],
                    );
                }
            }
            self.core.add_instructions(run as u64);
            self.current.instructions += run as u64;
            if self.current.instructions == u64::from(SUBWINDOW) {
                self.seal(sink);
            }
            i += run;
            pc += run as u64 * INSTR_BYTES;
        }
    }

    /// Processes one terminator event on the memoized core paths.
    fn terminator(&mut self, ev: &ExecEvent, sink: &mut dyn SubwindowSink) {
        self.core.fetch_one(ev.pc);
        if let Some(branch) = ev.branch {
            self.core.branch_event(ev.pc, &branch);
        }
        if ev.syscall {
            self.core.count_syscall();
        }
        self.core.add_instructions(1);
        self.current.instructions += 1;
        self.current.opcode_counts[ev.opcode.index()] += 1;
        if self.current.instructions == u64::from(SUBWINDOW) {
            self.seal(sink);
        }
    }

    /// Processes one event exactly as [`crate::window::WindowAccumulator`]
    /// does — the per-event observer path.
    fn event_exact(&mut self, ev: &ExecEvent, sink: &mut dyn SubwindowSink) {
        self.core.observe(ev);
        let w = &mut self.current;
        w.instructions += 1;
        w.opcode_counts[ev.opcode.index()] += 1;
        if let Some(mem) = ev.mem {
            if let Some(prev) = self.last_mem_addr {
                w.mem_delta_hist[delta_bin(prev, mem.addr)] += 1;
            }
            self.last_mem_addr = Some(mem.addr);
        }
        if w.instructions == u64::from(SUBWINDOW) {
            self.seal(sink);
        }
    }

    fn seal(&mut self, sink: &mut dyn SubwindowSink) {
        if self.current.instructions > 0 {
            let mut window = std::mem::take(&mut self.current);
            window.counters = self.core.drain_counters();
            self.sealed += 1;
            sink.subwindow(window);
        }
    }

    /// Seals the trailing partial subwindow, if non-empty.
    fn finish(&mut self, sink: &mut dyn SubwindowSink) {
        self.seal(sink);
    }
}

/// Streaming replica of [`crate::window::apply_faults`] for one lane:
/// identical pending-merge, drop, and channel-order corruption semantics
/// (trailing pending reads are discarded at stream end, as there).
#[derive(Debug)]
struct FaultLane {
    model: FaultModel,
    pending: Option<RawWindow>,
    prev: Option<RawWindow>,
    idx: u64,
}

impl FaultLane {
    fn push(&mut self, clean: &RawWindow) -> Option<RawWindow> {
        let window = self.idx;
        self.idx += 1;
        let mut merged = self.pending.take().unwrap_or_default();
        merged.merge(clean);
        if self.model.drops_window(window) {
            self.pending = Some(merged);
            return None;
        }
        let mut read = merged;
        self.model.corrupt_counters(
            window,
            &mut read.counters,
            self.prev.as_ref().map(|p| &p.counters),
        );
        for (i, v) in read.opcode_counts.iter_mut().enumerate() {
            let ch = (COUNTER_DIMS + i) as u64;
            *v = self
                .model
                .corrupt_value(window, ch, *v, self.prev.as_ref().map(|p| p.opcode_counts[i]));
        }
        for (i, v) in read.mem_delta_hist.iter_mut().enumerate() {
            let ch = (COUNTER_DIMS + OPCODE_COUNT + i) as u64;
            *v = self
                .model
                .corrupt_value(window, ch, *v, self.prev.as_ref().map(|p| p.mem_delta_hist[i]));
        }
        self.prev = Some(read.clone());
        Some(read)
    }
}

/// Configuration of one extraction lane: a feature spec plus the
/// aggregation and fault plan it reads subwindows through.
#[derive(Debug, Clone, Copy)]
pub struct LaneSpec<'a> {
    /// The feature spec to project (its period picks the chunk size).
    pub spec: &'a FeatureSpec,
    /// Minimum fill fraction for gap-tolerant aggregation; `1.0` with no
    /// fault model reproduces strict [`crate::window::aggregate`] exactly.
    pub min_fill: f64,
    /// Counter fault plan applied ahead of aggregation, if any.
    pub fault: Option<&'a FaultModel>,
}

impl<'a> LaneSpec<'a> {
    /// A clean, strict-aggregation lane (the store/live sweep shape).
    pub fn clean(spec: &'a FeatureSpec) -> LaneSpec<'a> {
        LaneSpec {
            spec,
            min_fill: 1.0,
            fault: None,
        }
    }
}

/// One live lane: incremental faults → chunking → projection into a
/// caller-owned flat buffer.
#[derive(Debug)]
struct StreamLane<'a> {
    spec: &'a FeatureSpec,
    per: usize,
    min_fill: f64,
    fault: Option<FaultLane>,
    chunk: RawWindow,
    filled: usize,
    rows: usize,
    out: &'a mut Vec<f64>,
}

impl<'a> StreamLane<'a> {
    fn new(lane: &LaneSpec<'a>, out: &'a mut Vec<f64>) -> StreamLane<'a> {
        let period = lane.spec.period;
        assert!(
            period > 0 && period.is_multiple_of(SUBWINDOW),
            "period {period} must be a positive multiple of {SUBWINDOW}"
        );
        StreamLane {
            spec: lane.spec,
            per: (period / SUBWINDOW) as usize,
            min_fill: lane.min_fill,
            fault: lane
                .fault
                .filter(|m| !m.is_identity())
                .map(|m| FaultLane {
                    model: m.clone(),
                    pending: None,
                    prev: None,
                    idx: 0,
                }),
            chunk: RawWindow::default(),
            filled: 0,
            rows: 0,
            out,
        }
    }

    fn push(&mut self, clean: &RawWindow) {
        let read = match &mut self.fault {
            None => {
                self.chunk.merge(clean);
                true
            }
            Some(f) => match f.push(clean) {
                Some(read) => {
                    self.chunk.merge(&read);
                    true
                }
                None => false,
            },
        };
        if read {
            self.filled += 1;
            if self.filled == self.per {
                self.flush();
            }
        }
    }

    fn flush(&mut self) {
        let merged = std::mem::take(&mut self.chunk);
        self.filled = 0;
        let fill = merged.instructions as f64 / f64::from(self.spec.period);
        if merged.instructions > 0 && fill >= self.min_fill {
            self.spec.project_into(&merged, self.out);
            self.rows += 1;
        }
    }

    /// Flushes the trailing partial chunk (matching `chunks()` semantics in
    /// the buffered aggregators).
    fn finish(&mut self) {
        if self.filled > 0 {
            self.flush();
        }
    }
}

/// Result of one streaming extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Rows appended per lane (parallel to the `lanes` argument).
    pub rows: Vec<usize>,
    /// The execution summary.
    pub summary: ExecSummary,
    /// Subwindows sealed during the run (including a trailing partial one).
    pub subwindows: u64,
}

/// The incremental window-extraction observer/batch-sink: one core, many
/// lanes, rows written straight into caller buffers.
#[derive(Debug)]
struct WindowStream<'a> {
    cursor: SubwindowCursor,
    lanes: Vec<StreamLane<'a>>,
}

impl<'a> WindowStream<'a> {
    fn new(config: CoreConfig, lanes: &[LaneSpec<'a>], outs: &'a mut [&mut Vec<f64>]) -> WindowStream<'a> {
        assert_eq!(
            lanes.len(),
            outs.len(),
            "one output buffer per lane is required"
        );
        WindowStream {
            cursor: SubwindowCursor::new(config),
            lanes: lanes
                .iter()
                .zip(outs.iter_mut())
                .map(|(lane, out)| StreamLane::new(lane, out))
                .collect(),
        }
    }

    fn finish(mut self, summary: ExecSummary) -> StreamOutcome {
        self.cursor.finish(&mut self.lanes);
        for lane in &mut self.lanes {
            lane.finish();
        }
        StreamOutcome {
            rows: self.lanes.iter().map(|l| l.rows).collect(),
            summary,
            subwindows: self.cursor.sealed,
        }
    }
}

impl BatchSink for WindowStream<'_> {
    #[inline]
    fn body_run(&mut self, pc: u64, instrs: &[FlatInstr], addrs: &[u64]) {
        self.cursor.body_run(pc, instrs, addrs, &mut self.lanes);
    }

    #[inline]
    fn terminator(&mut self, ev: &ExecEvent) {
        self.cursor.terminator(ev, &mut self.lanes);
    }
}

impl Observer for WindowStream<'_> {
    #[inline]
    fn observe(&mut self, ev: &ExecEvent) {
        self.cursor.event_exact(ev, &mut self.lanes);
    }
}

/// Executes a pre-lowered program once, streaming every lane's rows into
/// its output buffer (appended; existing contents survive).
pub fn stream_features_flat(
    flat: &FlatProgram,
    limits: ExecLimits,
    config: CoreConfig,
    lanes: &[LaneSpec],
    outs: &mut [&mut Vec<f64>],
) -> StreamOutcome {
    rhmd_obs::incr("trace.programs_executed");
    let _span = rhmd_obs::span("trace.exec");
    let mut stream = WindowStream::new(config, lanes, outs);
    let summary =
        rhmd_trace::flat::with_scratch(|scratch| flat.run_batched(limits, &mut stream, scratch));
    let outcome = stream.finish(summary);
    rhmd_obs::add("trace.instructions", summary.instructions);
    rhmd_obs::add("trace.windows", outcome.subwindows);
    outcome
}

/// [`stream_features_flat`] lowering the program first — the one-shot form.
pub fn stream_features_into(
    program: &Program,
    limits: ExecLimits,
    config: CoreConfig,
    lanes: &[LaneSpec],
    outs: &mut [&mut Vec<f64>],
) -> StreamOutcome {
    stream_features_flat(&FlatProgram::lower(program), limits, config, lanes, outs)
}

/// Streaming extraction driven per-event through the [`Observer`] seam
/// (reference interpreter + incremental lanes). Exists to pin the
/// observer-path equivalence; the batched drivers above are the hot path.
pub fn stream_features_observed(
    program: &Program,
    limits: ExecLimits,
    config: CoreConfig,
    lanes: &[LaneSpec],
    outs: &mut [&mut Vec<f64>],
) -> StreamOutcome {
    let mut stream = WindowStream::new(config, lanes, outs);
    let summary =
        rhmd_trace::exec::Executor::new(program, limits).run_reference(&mut stream);
    stream.finish(summary)
}

/// Executes a pre-lowered program once on the batched path and returns its
/// sealed subwindows plus the execution summary — the streaming engine
/// behind [`crate::pipeline::trace_subwindows`].
pub fn collect_subwindows_flat(
    flat: &FlatProgram,
    limits: ExecLimits,
    config: CoreConfig,
) -> (Vec<RawWindow>, ExecSummary) {
    rhmd_obs::incr("trace.programs_executed");
    let _span = rhmd_obs::span("trace.exec");
    struct Collector {
        cursor: SubwindowCursor,
        windows: Vec<RawWindow>,
    }
    impl BatchSink for Collector {
        #[inline]
        fn body_run(&mut self, pc: u64, instrs: &[FlatInstr], addrs: &[u64]) {
            self.cursor.body_run(pc, instrs, addrs, &mut self.windows);
        }
        #[inline]
        fn terminator(&mut self, ev: &ExecEvent) {
            self.cursor.terminator(ev, &mut self.windows);
        }
    }
    let mut collector = Collector {
        cursor: SubwindowCursor::new(config),
        windows: Vec::new(),
    };
    let summary = rhmd_trace::flat::with_scratch(|scratch| {
        flat.run_batched(limits, &mut collector, scratch)
    });
    collector.cursor.finish(&mut collector.windows);
    rhmd_obs::add("trace.instructions", summary.instructions);
    rhmd_obs::add("trace.windows", collector.cursor.sealed);
    (collector.windows, summary)
}

/// [`collect_subwindows_flat`] lowering the program first.
pub fn collect_subwindows(
    program: &Program,
    limits: ExecLimits,
    config: CoreConfig,
) -> (Vec<RawWindow>, ExecSummary) {
    collect_subwindows_flat(&FlatProgram::lower(program), limits, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{project_windows_into, trace_subwindows_reference};
    use crate::vector::FeatureKind;
    use crate::window::{aggregate_with_gaps, apply_faults};
    use rhmd_trace::generate::{benign_profile, malware_profile, BenignClass, MalwareFamily,
                               ProgramGenerator};
    use rhmd_uarch::faults::FaultConfig;

    #[test]
    fn collected_subwindows_match_reference_accumulator() {
        for seed in [0u64, 3, 11] {
            let p = ProgramGenerator::new(malware_profile(MalwareFamily::Ransomware))
                .generate(seed);
            let limits = ExecLimits::instructions(20_500);
            let (streamed, summary) = collect_subwindows(&p, limits, CoreConfig::default());
            let reference = trace_subwindows_reference(&p, limits, CoreConfig::default());
            assert_eq!(streamed, reference, "seed {seed}");
            assert_eq!(
                summary.instructions,
                streamed.iter().map(|w| w.instructions).sum::<u64>()
            );
        }
    }

    #[test]
    fn streaming_lanes_match_two_phase_projection() {
        let p = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(5);
        let limits = ExecLimits::instructions(33_000);
        let spec_a = FeatureSpec::new(FeatureKind::Architectural, 5_000, vec![]);
        let spec_b = FeatureSpec::new(FeatureKind::Memory, 4_000, vec![]);
        let lanes = [LaneSpec::clean(&spec_a), LaneSpec::clean(&spec_b)];
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        let outcome = stream_features_into(
            &p,
            limits,
            CoreConfig::default(),
            &lanes,
            &mut [&mut out_a, &mut out_b],
        );

        let reference = trace_subwindows_reference(&p, limits, CoreConfig::default());
        let (mut ref_a, mut ref_b) = (Vec::new(), Vec::new());
        let ra = project_windows_into(&reference, &spec_a, &mut ref_a);
        let rb = project_windows_into(&reference, &spec_b, &mut ref_b);
        assert_eq!(outcome.rows, vec![ra, rb]);
        assert_eq!(out_a, ref_a);
        assert_eq!(out_b, ref_b);
        assert_eq!(outcome.subwindows, reference.len() as u64);
    }

    #[test]
    fn faulted_lane_matches_buffered_fault_pipeline() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(9);
        let limits = ExecLimits::instructions(24_000);
        let spec = FeatureSpec::new(FeatureKind::Architectural, 3_000, vec![]);
        for config in [
            FaultConfig::dropping(0.3),
            FaultConfig::noise(0.4),
            FaultConfig::bursty(0.2, 3),
        ] {
            let model = FaultModel::new(config, 7);
            let lanes = [LaneSpec {
                spec: &spec,
                min_fill: 0.5,
                fault: Some(&model),
            }];
            let mut out = Vec::new();
            let outcome =
                stream_features_into(&p, limits, CoreConfig::default(), &lanes, &mut [&mut out]);

            let reference = trace_subwindows_reference(&p, limits, CoreConfig::default());
            let faulted = apply_faults(&reference, &model);
            let windows = aggregate_with_gaps(&faulted, spec.period, 0.5);
            let mut ref_out = Vec::new();
            for w in &windows {
                spec.project_into(w, &mut ref_out);
            }
            assert_eq!(outcome.rows, vec![windows.len()]);
            assert_eq!(out, ref_out);
        }
    }

    #[test]
    fn observer_path_matches_batched_path() {
        let p = ProgramGenerator::new(benign_profile(BenignClass::SpecCompute)).generate(2);
        let limits = ExecLimits::instructions(12_345);
        let spec = FeatureSpec::new(FeatureKind::Instructions, 2_000, vec![]);
        let lanes = [LaneSpec::clean(&spec)];
        let mut fast = Vec::new();
        let a = stream_features_into(&p, limits, CoreConfig::default(), &lanes, &mut [&mut fast]);
        let mut slow = Vec::new();
        let b =
            stream_features_observed(&p, limits, CoreConfig::default(), &lanes, &mut [&mut slow]);
        assert_eq!(a, b);
        assert_eq!(fast, slow);
    }
}
