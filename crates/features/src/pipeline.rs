//! End-to-end extraction: program → subwindows → feature vectors.

use crate::vector::FeatureSpec;
use crate::window::{aggregate, RawWindow, WindowAccumulator};
use rhmd_trace::exec::ExecLimits;
use rhmd_trace::Program;
use rhmd_uarch::{CoreConfig, ReferenceCore};

/// Executes `program` once and returns its fine-grained subwindows.
///
/// One call serves every collection period that divides into
/// [`crate::window::SUBWINDOW`] multiples — execute once, aggregate many
/// times. Runs on the batched flat-IR path
/// ([`crate::stream::collect_subwindows`]); bit-identical to
/// [`trace_subwindows_reference`].
pub fn trace_subwindows(
    program: &Program,
    limits: ExecLimits,
    config: CoreConfig,
) -> Vec<RawWindow> {
    let _span = rhmd_obs::span("features.trace");
    crate::stream::collect_subwindows(program, limits, config).0
}

/// [`trace_subwindows`] on the frozen pre-refactor path: the reference
/// interpreter driving a [`WindowAccumulator`] over
/// [`rhmd_uarch::reference`]'s seed-era scan-based structures. Kept as the
/// differential oracle for the batched walk — it shares no µarch code with
/// the optimized path — and as the honest "before" leg of `bench_trace`.
pub fn trace_subwindows_reference(
    program: &Program,
    limits: ExecLimits,
    config: CoreConfig,
) -> Vec<RawWindow> {
    let mut acc = WindowAccumulator::new(ReferenceCore::new(config));
    rhmd_trace::exec::Executor::new(program, limits).run_reference(&mut acc);
    acc.finish()
}

/// Projects pre-traced subwindows onto a spec's vectors at the spec's
/// period.
pub fn project_windows(subwindows: &[RawWindow], spec: &FeatureSpec) -> Vec<Vec<f64>> {
    let _span = rhmd_obs::span("features.project");
    aggregate(subwindows, spec.period)
        .iter()
        .map(|w| spec.project(w))
        .collect()
}

/// [`project_windows`] writing flat row-major values into a caller-owned
/// buffer (appending `windows × spec.dims()` doubles) and returning the
/// number of windows projected — one allocation per program instead of one
/// per window.
pub fn project_windows_into(
    subwindows: &[RawWindow],
    spec: &FeatureSpec,
    out: &mut Vec<f64>,
) -> usize {
    let _span = rhmd_obs::span("features.project");
    let windows = aggregate(subwindows, spec.period);
    out.reserve(windows.len() * spec.dims());
    for w in &windows {
        spec.project_into(w, out);
    }
    windows.len()
}

/// Convenience: trace and project in one call.
///
/// # Examples
///
/// ```
/// use rhmd_features::pipeline::extract;
/// use rhmd_features::vector::{FeatureKind, FeatureSpec};
/// use rhmd_trace::exec::ExecLimits;
/// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
/// use rhmd_uarch::CoreConfig;
///
/// let program = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(0);
/// let spec = FeatureSpec::new(FeatureKind::Memory, 10_000, vec![]);
/// let vectors = extract(&program, &spec, ExecLimits::instructions(50_000), CoreConfig::default());
/// // At most 50k instructions → at most five 10k-instruction windows;
/// // the program may retire fewer if it terminates early.
/// assert!(!vectors.is_empty() && vectors.len() <= 5);
/// assert_eq!(vectors[0].len(), spec.dims());
/// ```
pub fn extract(
    program: &Program,
    spec: &FeatureSpec,
    limits: ExecLimits,
    config: CoreConfig,
) -> Vec<Vec<f64>> {
    project_windows(&trace_subwindows(program, limits, config), spec)
}

/// [`extract`] writing flat row-major values into a caller-owned buffer;
/// returns the number of windows appended. Rides the single-pass streaming
/// path ([`crate::stream::stream_features_into`]) — no intermediate
/// `Vec<RawWindow>` is materialized.
pub fn extract_into(
    program: &Program,
    spec: &FeatureSpec,
    limits: ExecLimits,
    config: CoreConfig,
    out: &mut Vec<f64>,
) -> usize {
    let lanes = [crate::stream::LaneSpec::clean(spec)];
    let outcome = crate::stream::stream_features_into(program, limits, config, &lanes, &mut [out]);
    outcome.rows[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::FeatureKind;
    use rhmd_trace::generate::{malware_profile, MalwareFamily, ProgramGenerator};
    use rhmd_trace::isa::Opcode;

    #[test]
    fn one_trace_serves_many_periods() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Keylogger)).generate(4);
        let limits = ExecLimits {
            max_instructions: 40_000,
            max_original_instructions: u64::MAX,
            max_syscalls: u64::MAX,
            max_call_depth: 128,
        };
        let subs = trace_subwindows(&p, limits, CoreConfig::default());
        let spec5 = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let spec10 = FeatureSpec::new(FeatureKind::Memory, 10_000, vec![]);
        assert_eq!(project_windows(&subs, &spec5).len(), 8);
        assert_eq!(project_windows(&subs, &spec10).len(), 4);
    }

    #[test]
    fn extraction_is_deterministic() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Worm)).generate(0);
        let spec = FeatureSpec::new(FeatureKind::Instructions, 5_000, vec![Opcode::Xor, Opcode::Add]);
        let a = extract(&p, &spec, ExecLimits::instructions(20_000), CoreConfig::default());
        let b = extract(&p, &spec, ExecLimits::instructions(20_000), CoreConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn flat_projection_matches_per_window_projection() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Keylogger)).generate(7);
        let subs = trace_subwindows(&p, ExecLimits::instructions(30_000), CoreConfig::default());
        let spec = FeatureSpec::new(FeatureKind::Instructions, 5_000, vec![Opcode::Xor, Opcode::Add]);
        let nested = project_windows(&subs, &spec);
        let mut flat = vec![42.0]; // pre-existing contents must survive
        let n = project_windows_into(&subs, &spec, &mut flat);
        assert_eq!(n, nested.len());
        assert_eq!(flat[0], 42.0);
        let expected: Vec<f64> = nested.iter().flatten().copied().collect();
        assert_eq!(&flat[1..], expected.as_slice());
    }

    #[test]
    fn vectors_have_spec_dims() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(2);
        for kind in FeatureKind::ALL {
            let spec = FeatureSpec::new(kind, 5_000, vec![Opcode::Xor]);
            let vs = extract(&p, &spec, ExecLimits::instructions(10_000), CoreConfig::default());
            assert!(vs.iter().all(|v| v.len() == spec.dims()));
        }
    }
}
