//! End-to-end extraction: program → subwindows → feature vectors.

use crate::vector::FeatureSpec;
use crate::window::{aggregate, RawWindow, WindowAccumulator};
use rhmd_trace::exec::ExecLimits;
use rhmd_trace::Program;
use rhmd_uarch::{CoreConfig, CoreModel};

/// Executes `program` once and returns its fine-grained subwindows.
///
/// One call serves every collection period that divides into
/// [`crate::window::SUBWINDOW`] multiples — execute once, aggregate many
/// times.
pub fn trace_subwindows(
    program: &Program,
    limits: ExecLimits,
    config: CoreConfig,
) -> Vec<RawWindow> {
    let _span = rhmd_obs::span("features.trace");
    let mut acc = WindowAccumulator::new(CoreModel::new(config));
    program.execute(limits, &mut acc);
    acc.finish()
}

/// Projects pre-traced subwindows onto a spec's vectors at the spec's
/// period.
pub fn project_windows(subwindows: &[RawWindow], spec: &FeatureSpec) -> Vec<Vec<f64>> {
    let _span = rhmd_obs::span("features.project");
    aggregate(subwindows, spec.period)
        .iter()
        .map(|w| spec.project(w))
        .collect()
}

/// Convenience: trace and project in one call.
///
/// # Examples
///
/// ```
/// use rhmd_features::pipeline::extract;
/// use rhmd_features::vector::{FeatureKind, FeatureSpec};
/// use rhmd_trace::exec::ExecLimits;
/// use rhmd_trace::generate::{benign_profile, BenignClass, ProgramGenerator};
/// use rhmd_uarch::CoreConfig;
///
/// let program = ProgramGenerator::new(benign_profile(BenignClass::Browser)).generate(0);
/// let spec = FeatureSpec::new(FeatureKind::Memory, 10_000, vec![]);
/// let vectors = extract(&program, &spec, ExecLimits::instructions(50_000), CoreConfig::default());
/// // At most 50k instructions → at most five 10k-instruction windows;
/// // the program may retire fewer if it terminates early.
/// assert!(!vectors.is_empty() && vectors.len() <= 5);
/// assert_eq!(vectors[0].len(), spec.dims());
/// ```
pub fn extract(
    program: &Program,
    spec: &FeatureSpec,
    limits: ExecLimits,
    config: CoreConfig,
) -> Vec<Vec<f64>> {
    project_windows(&trace_subwindows(program, limits, config), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::FeatureKind;
    use rhmd_trace::generate::{malware_profile, MalwareFamily, ProgramGenerator};
    use rhmd_trace::isa::Opcode;

    #[test]
    fn one_trace_serves_many_periods() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Keylogger)).generate(4);
        let limits = ExecLimits {
            max_instructions: 40_000,
            max_original_instructions: u64::MAX,
            max_syscalls: u64::MAX,
            max_call_depth: 128,
        };
        let subs = trace_subwindows(&p, limits, CoreConfig::default());
        let spec5 = FeatureSpec::new(FeatureKind::Memory, 5_000, vec![]);
        let spec10 = FeatureSpec::new(FeatureKind::Memory, 10_000, vec![]);
        assert_eq!(project_windows(&subs, &spec5).len(), 8);
        assert_eq!(project_windows(&subs, &spec10).len(), 4);
    }

    #[test]
    fn extraction_is_deterministic() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Worm)).generate(0);
        let spec = FeatureSpec::new(FeatureKind::Instructions, 5_000, vec![Opcode::Xor, Opcode::Add]);
        let a = extract(&p, &spec, ExecLimits::instructions(20_000), CoreConfig::default());
        let b = extract(&p, &spec, ExecLimits::instructions(20_000), CoreConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn vectors_have_spec_dims() {
        let p = ProgramGenerator::new(malware_profile(MalwareFamily::Spambot)).generate(2);
        for kind in FeatureKind::ALL {
            let spec = FeatureSpec::new(kind, 5_000, vec![Opcode::Xor]);
            let vs = extract(&p, &spec, ExecLimits::instructions(10_000), CoreConfig::default());
            assert!(vs.iter().all(|v| v.len() == spec.dims()));
        }
    }
}
